"""Crash-only external session/checkpoint store for microreboot recovery.

"Microreboot — A Technique for Cheap Recovery" (PAPERS.md) requires that
important state live *outside* the rebooted component, in a dedicated
crash-only store, so a partial restart loses nothing.  This module models
that store for the Mercury station:

* **sessions** — the ``ses``/``str`` pair's established sync session.
  Externalised when the handshake completes; restored on a ``micro``
  restart (the component skips the resync and its peer keeps running);
  deliberately *dropped* on a cold restart, because discarding state is
  exactly how a cold restart cures corruption.
* **checkpoints** — small component-state snapshots (``fedr``'s tuned
  frequency, ``pbcom``'s negotiated link) restored on a ``replay``
  restart so startup work shrinks to the configured replay fraction.
* **message logs** — a bounded per-component log of inbound bus traffic
  (the bus-client tap), replayed after a ``replay`` restart reconnects.

The store is modeled as a separate always-up storelet (its own failure
modes are out of scope here, as in the microreboot paper's
session-state store): plain dicts and lists, no RNG, no event emission,
``deepcopy``-safe — so warmed-station snapshots capture it exactly.
Writes are atomic replacements and reads validate nothing beyond
presence, which is what makes it crash-only: a component can die at any
instant without leaving the store half-written.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.types import SimTime


class SessionStore:
    """External crash-only state store shared by a station's components."""

    def __init__(self, log_limit: int = 32) -> None:
        #: Bound on each component's replay log (the "bounded message-log
        #: replay" window).
        self.log_limit = log_limit
        self._sessions: Dict[str, Tuple[SimTime, dict]] = {}
        self._checkpoints: Dict[str, Tuple[SimTime, dict]] = {}
        self._logs: Dict[str, List[str]] = {}
        #: The instant a component last restored its session, consulted by
        #: the resync coupling to spare the peer.
        self._restored_at: Dict[str, SimTime] = {}
        # Counters for reports and the strategy comparison.
        self.sessions_saved = 0
        self.sessions_restored = 0
        self.sessions_lost = 0
        self.checkpoints_taken = 0
        self.checkpoints_restored = 0
        self.messages_logged = 0
        self.messages_replayed = 0

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------

    def save_session(self, component: str, now: SimTime, payload: dict) -> None:
        """Externalise ``component``'s session (atomic replace)."""
        self._sessions[component] = (now, dict(payload))
        self.sessions_saved += 1

    def load_session(self, component: str) -> Optional[dict]:
        """The externalised session, or ``None``."""
        hit = self._sessions.get(component)
        return dict(hit[1]) if hit is not None else None

    def session_age(self, component: str, now: SimTime) -> Optional[SimTime]:
        hit = self._sessions.get(component)
        return (now - hit[0]) if hit is not None else None

    def has_session(self, component: str) -> bool:
        return component in self._sessions

    def mark_restored(self, component: str, now: SimTime) -> None:
        """Record a successful session restore (resync-coupling evidence)."""
        self._restored_at[component] = now
        self.sessions_restored += 1

    def restored_at(self, component: str) -> Optional[SimTime]:
        return self._restored_at.get(component)

    def drop_session(self, component: str) -> bool:
        """Discard the session (cold restart); returns whether one existed."""
        self._restored_at.pop(component, None)
        if self._sessions.pop(component, None) is not None:
            self.sessions_lost += 1
            return True
        return False

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def save_checkpoint(self, component: str, now: SimTime, payload: dict) -> None:
        self._checkpoints[component] = (now, dict(payload))
        self.checkpoints_taken += 1

    def load_checkpoint(self, component: str) -> Optional[dict]:
        hit = self._checkpoints.get(component)
        return dict(hit[1]) if hit is not None else None

    def checkpoint_age(self, component: str, now: SimTime) -> Optional[SimTime]:
        hit = self._checkpoints.get(component)
        return (now - hit[0]) if hit is not None else None

    def has_checkpoint(self, component: str) -> bool:
        return component in self._checkpoints

    def drop_checkpoint(self, component: str) -> bool:
        return self._checkpoints.pop(component, None) is not None

    # ------------------------------------------------------------------
    # message logs (the bus-client tap)
    # ------------------------------------------------------------------

    def log_message(self, component: str, raw: str) -> None:
        """Append one inbound wire message to the bounded replay log."""
        log = self._logs.setdefault(component, [])
        log.append(raw)
        if len(log) > self.log_limit:
            del log[: len(log) - self.log_limit]
        self.messages_logged += 1

    def has_log(self, component: str) -> bool:
        return bool(self._logs.get(component))

    def replay_log(self, component: str) -> List[str]:
        """The logged messages, oldest first (does not clear the log)."""
        entries = list(self._logs.get(component, ()))
        self.messages_replayed += len(entries)
        return entries

    def drop_log(self, component: str) -> bool:
        return bool(self._logs.pop(component, None))

    # ------------------------------------------------------------------
    # cold-restart semantics
    # ------------------------------------------------------------------

    def drop_all(self, component: str) -> bool:
        """Cold restart: discard every kind of externalised state.

        Returns whether a *session* was lost (the user-visible loss the
        strategy comparison counts).
        """
        lost = self.drop_session(component)
        self.drop_checkpoint(component)
        self.drop_log(component)
        return lost

    def counters(self) -> Dict[str, int]:
        """Counter snapshot for reports."""
        return {
            "sessions_saved": self.sessions_saved,
            "sessions_restored": self.sessions_restored,
            "sessions_lost": self.sessions_lost,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoints_restored": self.checkpoints_restored,
            "messages_logged": self.messages_logged,
            "messages_replayed": self.messages_replayed,
        }
