"""Adversarial fault schedules as composable, seed-reproducible objects.

A :class:`Scenario` is a *recipe*; calling :meth:`Scenario.build` with a
named RNG stream and the station's component list produces a concrete
:class:`ScenarioPlan` — a sorted tuple of timed injections plus the
correlated-failure groups to arm.  Build is the only place randomness
enters, and the RNG is a kernel-derived named stream, so the same (seed,
scenario, tree) triple always yields the same plan, byte for byte.

The catalogue covers the four adversarial shapes the chaos engine ships:

``cascade``
    A shared-fate :class:`~repro.faults.correlation.CorrelationGroup` over
    ses/str/rtu — one injected crash fells the whole domain, forcing the
    supervisor to unwind a multi-component pile-up.
``storm``
    Faults arriving *during* recovery: the slow radio proxy is killed
    first, then other components are shot while its ~20 s restart is still
    in flight (including a second hit on a component mid-own-restart).
``flapping``
    A flaky supervisor: FD and REC are killed around an active station
    fault, exercising the mutual-recovery special case while real recovery
    work is pending.
``mixed``
    Transient crashes interleaved with a persistent joint-cure failure
    (§4.4's [fedr, pbcom] shape), so singleton restarts re-manifest and
    escalation has to climb the tree.
``lossy``
    Real crashes under a lossy, spiky network: the fault fabric drops and
    delays bus traffic while components die, stressing the adaptive
    detector's false-positive discipline (timed :class:`NetOp` operations,
    ``station_overrides`` switching the detector to the adaptive policy).
``partition``
    Timed bidirectional partitions (fd↔mbus, then ses↔mbus) around real
    crashes: every component looks dead through a cut link, so the
    detector's partition suspicion must hold declarations until the fabric
    heals.
``zombie-fleet``
    Fail-slow failures only: two zombies (answer pings, drop work) and a
    hang, unmasked by end-to-end health probes rather than liveness pings.
``store-outage``
    The session store itself crashes and hangs around real component
    faults (timed :class:`StoreOp` windows plus torn/corrupt write
    probabilities): stateful strategies must detect the outage within
    the timeout ladder and fall back to plain cold restarts.
``rogue-oracle-crash``
    REC — hosting the oracle — is shot moments after ordering recovery:
    stale pre-crash plans must be fenced, FD's watchdog restarts REC
    crash-only, and the fresh incarnation reconciles half-done episodes
    and rebuilds the oracle's estimates from the store.

Scenarios targeting components a given tree generation does not run (fd/rec
under the abstract supervisor, fedrcom after the split) degrade gracefully:
the engine counts those injections as *skipped* rather than failing.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Injection:
    """One timed fault: fail ``component`` at plan-relative time ``at``.

    ``cure_set`` of None means a plain crash (cured by restarting the
    component alone); otherwise the failure re-manifests until a restart
    batch covers the whole set.
    """

    at: float
    component: str
    cure_set: Optional[Tuple[str, ...]] = None
    kind: str = "chaos"


@dataclass(frozen=True)
class NetOp:
    """One timed network-fabric operation at plan-relative time ``at``.

    ``kind`` is ``"degrade"`` (lossy link: drops, delay spikes, duplicates)
    or ``"partition"`` (bidirectional silence).  ``a``/``b`` name the link's
    component endpoints; ``"*"`` degrades the default profile applied to
    every link (partitions must name both ends).  A ``duration`` makes the
    operation self-healing; ``None`` leaves it in force until the engine
    clears the fabric at drain time.
    """

    at: float
    kind: str = "degrade"
    a: str = "*"
    b: str = "*"
    duration: Optional[float] = None
    drop: float = 0.0
    spike_probability: float = 0.0
    spike_seconds: Tuple[float, float] = (0.05, 0.25)
    duplicate_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("degrade", "partition"):
            raise ValueError(f"unknown net op kind {self.kind!r}")
        if self.kind == "partition":
            if "*" in (self.a, self.b):
                raise ValueError("partitions must name both link endpoints")
            if self.duration is None or self.duration <= 0:
                raise ValueError("partitions need a positive duration")


@dataclass(frozen=True)
class StoreOp:
    """One timed session-store outage at plan-relative time ``at``.

    ``kind`` is ``"crash"`` (the storelet dies: operations fail fast after
    the retry ladder's backoff gaps) or ``"hang"`` (it stops answering:
    every attempt burns its full per-op timeout too).  The window heals
    itself after ``duration`` seconds.
    """

    at: float
    kind: str = "crash"
    duration: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "hang"):
            raise ValueError(f"unknown store op kind {self.kind!r}")
        if self.duration <= 0.0:
            raise ValueError(f"store outages need a positive duration: {self!r}")


@dataclass(frozen=True)
class GroupSpec:
    """A shared-fate correlation group to arm for the scenario's duration."""

    members: Tuple[str, ...]
    induce_probability: float = 1.0
    induced_delay: float = 0.3


@dataclass(frozen=True)
class ScenarioPlan:
    """A concrete schedule: injections sorted by time, groups, horizon.

    ``horizon`` is how long past the trial's start the engine keeps the
    simulation running before draining to quiescence — late injections and
    their recovery tails must fit inside it.
    """

    injections: Tuple[Injection, ...]
    groups: Tuple[GroupSpec, ...] = ()
    horizon: float = 60.0
    #: Timed network-fabric operations, interleaved with the injections.
    net_ops: Tuple[NetOp, ...] = ()
    #: Timed session-store outages (crash/hang windows).
    store_ops: Tuple[StoreOp, ...] = ()


#: Builds a plan from a dedicated RNG and the station's component tuple.
PlanBuilder = Callable[[random.Random, Tuple[str, ...]], ScenarioPlan]


@dataclass(frozen=True)
class Scenario:
    """A named, composable chaos recipe.

    ``station_overrides`` are :class:`~repro.mercury.config.StationConfig`
    field overrides the engine applies before building the station (e.g.
    switching the detector to the adaptive timeout policy, enabling
    end-to-end probes); a tuple of pairs so the recipe stays hashable.
    ``uses_network`` declares that the recipe scripts the fault fabric, so
    the engine must build the station with a
    :class:`~repro.transport.network.NetworkFaultModel` attached.
    ``uses_store`` declares that the recipe injects session-store faults:
    the engine attaches a
    :class:`~repro.faults.store_faults.StoreFaultModel` post-boot,
    configured from ``store_faults`` (field/value pairs, kept as a tuple
    of pairs so the recipe stays hashable).  ``default_strategy`` names a
    recovery-strategy registry entry the engine uses when the caller did
    not pick one — recipes that exercise the crash-only recovery plane
    need a stateful strategy (and thus a store) to mean anything.
    """

    name: str
    description: str
    builder: PlanBuilder = field(compare=False)
    station_overrides: Tuple[Tuple[str, object], ...] = ()
    uses_network: bool = False
    uses_store: bool = False
    default_strategy: Optional[str] = None
    store_faults: Tuple[Tuple[str, float], ...] = ()

    def build(self, rng: random.Random, components: Sequence[str]) -> ScenarioPlan:
        """Materialise the plan for one station (deterministic in ``rng``)."""
        plan = self.builder(rng, tuple(components))
        injections = tuple(sorted(plan.injections, key=lambda i: (i.at, i.component)))
        for injection in injections:
            if injection.at < 0.0:
                raise ValueError(f"injection before trial start: {injection!r}")
        net_ops = tuple(sorted(plan.net_ops, key=lambda op: (op.at, op.a, op.b)))
        for op in net_ops:
            if op.at < 0.0:
                raise ValueError(f"net op before trial start: {op!r}")
        if net_ops and not self.uses_network:
            raise ValueError(
                f"scenario {self.name!r} plans net ops but does not declare "
                f"uses_network=True"
            )
        store_ops = tuple(sorted(plan.store_ops, key=lambda op: (op.at, op.kind)))
        for op in store_ops:
            if op.at < 0.0:
                raise ValueError(f"store op before trial start: {op!r}")
        if store_ops and not self.uses_store:
            raise ValueError(
                f"scenario {self.name!r} plans store ops but does not declare "
                f"uses_store=True"
            )
        return ScenarioPlan(
            injections=injections,
            groups=plan.groups,
            horizon=plan.horizon,
            net_ops=net_ops,
            store_ops=store_ops,
        )


def compose(name: str, scenarios: Sequence[Scenario], gap: float = 20.0) -> Scenario:
    """Sequence several scenarios into one (each offset past the previous).

    Child plans are built from child-derived RNGs in order, so composition
    is itself seed-reproducible; groups are the union (first occurrence
    wins on duplicates).
    """
    if not scenarios:
        raise ValueError("compose needs at least one scenario")

    def build(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
        injections = []
        groups = []
        net_ops = []
        store_ops = []
        seen_groups = set()
        offset = 0.0
        for scenario in scenarios:
            child_rng = random.Random(rng.random())
            plan = scenario.build(child_rng, components)
            for injection in plan.injections:
                injections.append(
                    Injection(
                        at=offset + injection.at,
                        component=injection.component,
                        cure_set=injection.cure_set,
                        kind=injection.kind,
                    )
                )
            for op in plan.net_ops:
                net_ops.append(dataclasses.replace(op, at=offset + op.at))
            for op in plan.store_ops:
                store_ops.append(dataclasses.replace(op, at=offset + op.at))
            for group in plan.groups:
                if group.members not in seen_groups:
                    seen_groups.add(group.members)
                    groups.append(group)
            offset += plan.horizon + gap
        return ScenarioPlan(
            injections=tuple(injections),
            groups=tuple(groups),
            horizon=offset,
            net_ops=tuple(net_ops),
            store_ops=tuple(store_ops),
        )

    # Overrides union with first occurrence winning (like groups) — children
    # are sequenced, and the station is built once for the whole composition.
    overrides = []
    seen_keys = set()
    for scenario in scenarios:
        for key, value in scenario.station_overrides:
            if key not in seen_keys:
                seen_keys.add(key)
                overrides.append((key, value))
    store_faults = []
    seen_fault_keys = set()
    default_strategy = None
    for scenario in scenarios:
        for key, value in scenario.store_faults:
            if key not in seen_fault_keys:
                seen_fault_keys.add(key)
                store_faults.append((key, value))
        if default_strategy is None and scenario.default_strategy is not None:
            default_strategy = scenario.default_strategy
    description = " then ".join(s.name for s in scenarios)
    return Scenario(
        name=name,
        description=f"composition: {description}",
        builder=build,
        station_overrides=tuple(overrides),
        uses_network=any(s.uses_network for s in scenarios),
        uses_store=any(s.uses_store for s in scenarios),
        default_strategy=default_strategy,
        store_faults=tuple(store_faults),
    )


# ----------------------------------------------------------------------
# the catalogue
# ----------------------------------------------------------------------


def _radio_proxy(components: Tuple[str, ...]) -> str:
    return "fedrcom" if "fedrcom" in components else "pbcom"


def _build_cascade(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    first = rng.uniform(5.0, 10.0)
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="rtu"),
            Injection(at=first + rng.uniform(30.0, 40.0), component="ses"),
        ),
        groups=(
            GroupSpec(
                members=("ses", "str", "rtu"),
                induce_probability=1.0,
                induced_delay=rng.uniform(0.2, 0.4),
            ),
        ),
        horizon=120.0,
    )


def _build_storm(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    proxy = _radio_proxy(components)
    first = rng.uniform(5.0, 10.0)
    # The proxy restart runs ~20 s; everything below lands inside it (and
    # the second rtu hit typically lands inside rtu's *own* recovery).
    return ScenarioPlan(
        injections=(
            Injection(at=first, component=proxy),
            Injection(at=first + rng.uniform(3.0, 6.0), component="rtu"),
            Injection(at=first + rng.uniform(8.0, 12.0), component="ses"),
            Injection(at=first + rng.uniform(14.0, 18.0), component="rtu"),
        ),
        horizon=180.0,
    )


def _build_flapping(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    first = rng.uniform(5.0, 10.0)
    # FD dies before it can report the rtu fault; REC dies a little later,
    # mid-recovery.  The watchdog pair must rebuild itself around the
    # pending station failure, then handle a second fault cleanly.
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="rtu"),
            Injection(at=first + rng.uniform(0.2, 0.6), component="fd", kind="flap"),
            Injection(at=first + rng.uniform(6.0, 10.0), component="rec", kind="flap"),
            Injection(at=first + rng.uniform(25.0, 30.0), component="str"),
        ),
        horizon=120.0,
    )


def _build_mixed(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    if "pbcom" in components:
        persistent = Injection(
            at=rng.uniform(20.0, 25.0),
            component="pbcom",
            cure_set=("fedr", "pbcom"),
            kind="persistent",
        )
    else:
        persistent = Injection(
            at=rng.uniform(20.0, 25.0),
            component="ses",
            cure_set=("ses", "str"),
            kind="persistent",
        )
    first = rng.uniform(3.0, 6.0)
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="rtu", kind="transient"),
            persistent,
            Injection(at=persistent.at + rng.uniform(35.0, 45.0), component="str",
                      kind="transient"),
        ),
        horizon=150.0,
    )


def _build_lossy(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    start = rng.uniform(2.0, 4.0)
    window = rng.uniform(45.0, 60.0)
    # Real crashes land *inside* the lossy window, so the detector must
    # find them through the noise without declaring healthy components.
    return ScenarioPlan(
        injections=(
            Injection(at=start + rng.uniform(6.0, 10.0), component="rtu"),
            Injection(at=start + rng.uniform(25.0, 32.0), component="ses"),
        ),
        net_ops=(
            NetOp(
                at=start,
                kind="degrade",
                duration=window,
                drop=0.12,
                spike_probability=0.15,
                spike_seconds=(0.05, 0.3),
                duplicate_probability=0.03,
            ),
        ),
        horizon=start + window + 60.0,
    )


def _build_partition(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    first = rng.uniform(6.0, 9.0)
    second = first + rng.uniform(30.0, 35.0)
    # Cutting fd off the bus blinds it to *every* component at once — the
    # signature partition suspicion must recognise and sit out.  The rtu
    # crash during the cut is detected only after the heal; the late str
    # crash checks the detector recovered its normal reflexes.
    return ScenarioPlan(
        injections=(
            Injection(at=first + rng.uniform(3.0, 6.0), component="rtu"),
            Injection(at=first + rng.uniform(55.0, 60.0), component="str"),
        ),
        net_ops=(
            NetOp(at=first, kind="partition", a="fd", b="mbus",
                  duration=rng.uniform(8.0, 12.0)),
            NetOp(at=second, kind="partition", a="ses", b="mbus",
                  duration=rng.uniform(4.0, 6.0)),
        ),
        horizon=150.0,
    )


def _build_zombie_fleet(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    first = rng.uniform(4.0, 7.0)
    second = first + rng.uniform(4.0, 8.0)
    third = second + rng.uniform(12.0, 16.0)
    # Zombies keep answering liveness pings, so only the end-to-end probes
    # (enabled via station_overrides) unmask them; the hang is visible to
    # plain pings and checks the two paths do not double-report.
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="ses", kind="zombie"),
            Injection(at=second, component="rtu", kind="zombie"),
            Injection(at=third, component="str", kind="hang"),
        ),
        horizon=120.0,
    )


def _build_store_outage(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    first = rng.uniform(5.0, 8.0)
    # The store crashes just before the ses fault's recovery decision, so
    # the stateful strategy's probe fails and it must fall back to a plain
    # cold restart instead of deadlocking on the dead store.  A later hang
    # window exercises the slower per-op-timeout path against the str
    # fault, and the final rtu fault lands with the store healthy again —
    # the stateful path must come back cleanly.  Torn/corrupt write
    # probabilities run throughout, so checksum quarantine sees traffic.
    crash_at = first - rng.uniform(1.0, 2.0)
    second = first + rng.uniform(30.0, 35.0)
    hang_at = second - rng.uniform(1.0, 2.0)
    third = second + rng.uniform(30.0, 35.0)
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="ses"),
            Injection(at=second, component="str"),
            Injection(at=third, component="rtu"),
        ),
        store_ops=(
            StoreOp(at=crash_at, kind="crash", duration=rng.uniform(8.0, 12.0)),
            StoreOp(at=hang_at, kind="hang", duration=rng.uniform(8.0, 12.0)),
        ),
        horizon=150.0,
    )


def _build_rogue_oracle_crash(
    rng: random.Random, components: Tuple[str, ...]
) -> ScenarioPlan:
    first = rng.uniform(5.0, 8.0)
    # REC (hosting the oracle) is shot moments after it ordered recovery
    # for the rtu fault: its in-flight plan must be fenced, FD's watchdog
    # must restart it, and the fresh incarnation has to reconcile the
    # half-done episode and rebuild the oracle from the store.  The later
    # ses and str faults check the rebuilt supervisor recovers normally —
    # including a second REC kill while *that* recovery is pending.
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="rtu"),
            Injection(at=first + rng.uniform(1.6, 2.4), component="rec", kind="flap"),
            Injection(at=first + rng.uniform(25.0, 30.0), component="ses"),
            Injection(
                at=first + rng.uniform(26.0, 28.0), component="rec", kind="flap"
            ),
            Injection(at=first + rng.uniform(55.0, 60.0), component="str"),
        ),
        horizon=150.0,
    )


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "cascade",
            "correlated multi-component cascade (shared-fate ses/str/rtu group)",
            _build_cascade,
        ),
        Scenario(
            "storm",
            "fault-during-restart storm around the slow radio proxy",
            _build_storm,
        ),
        Scenario(
            "flapping",
            "FD/REC flapping while station recovery work is pending",
            _build_flapping,
        ),
        Scenario(
            "mixed",
            "transient crashes interleaved with a persistent joint-cure failure",
            _build_mixed,
        ),
        Scenario(
            "lossy",
            "real crashes under a dropping, spiky, duplicating network",
            _build_lossy,
            # The scenario stresses the detector; a residual false positive
            # must not dribble into budget give-ups (that is the ablation
            # bench's subject, measured, not a chaos invariant).
            station_overrides=(
                ("timeout_policy", "adaptive"),
                ("restart_budget", 50),
            ),
            uses_network=True,
        ),
        Scenario(
            "partition",
            "timed bus partitions around real crashes (suspicion must hold fire)",
            _build_partition,
            station_overrides=(("timeout_policy", "adaptive"),),
            uses_network=True,
        ),
        Scenario(
            "zombie-fleet",
            "fail-slow zombies and a hang, unmasked by end-to-end probes",
            _build_zombie_fleet,
            station_overrides=(
                ("timeout_policy", "adaptive"),
                ("probe_period", 2.0),
            ),
        ),
        Scenario(
            "store-outage",
            "session-store crash/hang windows mid-recovery force strategy fallback",
            _build_store_outage,
            uses_store=True,
            default_strategy="microreboot",
            store_faults=(
                ("torn_write_probability", 0.05),
                ("corrupt_write_probability", 0.03),
            ),
        ),
        Scenario(
            "rogue-oracle-crash",
            "REC/oracle shot mid-recovery: stale plans fenced, view rebuilt from store",
            _build_rogue_oracle_crash,
            uses_store=True,
            default_strategy="microreboot",
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a catalogue scenario; raises ``KeyError`` with the choices."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} (have: {', '.join(sorted(SCENARIOS))})"
        ) from None
