"""Adversarial fault schedules as composable, seed-reproducible objects.

A :class:`Scenario` is a *recipe*; calling :meth:`Scenario.build` with a
named RNG stream and the station's component list produces a concrete
:class:`ScenarioPlan` — a sorted tuple of timed injections plus the
correlated-failure groups to arm.  Build is the only place randomness
enters, and the RNG is a kernel-derived named stream, so the same (seed,
scenario, tree) triple always yields the same plan, byte for byte.

The catalogue covers the four adversarial shapes the chaos engine ships:

``cascade``
    A shared-fate :class:`~repro.faults.correlation.CorrelationGroup` over
    ses/str/rtu — one injected crash fells the whole domain, forcing the
    supervisor to unwind a multi-component pile-up.
``storm``
    Faults arriving *during* recovery: the slow radio proxy is killed
    first, then other components are shot while its ~20 s restart is still
    in flight (including a second hit on a component mid-own-restart).
``flapping``
    A flaky supervisor: FD and REC are killed around an active station
    fault, exercising the mutual-recovery special case while real recovery
    work is pending.
``mixed``
    Transient crashes interleaved with a persistent joint-cure failure
    (§4.4's [fedr, pbcom] shape), so singleton restarts re-manifest and
    escalation has to climb the tree.

Scenarios targeting components a given tree generation does not run (fd/rec
under the abstract supervisor, fedrcom after the split) degrade gracefully:
the engine counts those injections as *skipped* rather than failing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Injection:
    """One timed fault: fail ``component`` at plan-relative time ``at``.

    ``cure_set`` of None means a plain crash (cured by restarting the
    component alone); otherwise the failure re-manifests until a restart
    batch covers the whole set.
    """

    at: float
    component: str
    cure_set: Optional[Tuple[str, ...]] = None
    kind: str = "chaos"


@dataclass(frozen=True)
class GroupSpec:
    """A shared-fate correlation group to arm for the scenario's duration."""

    members: Tuple[str, ...]
    induce_probability: float = 1.0
    induced_delay: float = 0.3


@dataclass(frozen=True)
class ScenarioPlan:
    """A concrete schedule: injections sorted by time, groups, horizon.

    ``horizon`` is how long past the trial's start the engine keeps the
    simulation running before draining to quiescence — late injections and
    their recovery tails must fit inside it.
    """

    injections: Tuple[Injection, ...]
    groups: Tuple[GroupSpec, ...] = ()
    horizon: float = 60.0


#: Builds a plan from a dedicated RNG and the station's component tuple.
PlanBuilder = Callable[[random.Random, Tuple[str, ...]], ScenarioPlan]


@dataclass(frozen=True)
class Scenario:
    """A named, composable chaos recipe."""

    name: str
    description: str
    builder: PlanBuilder = field(compare=False)

    def build(self, rng: random.Random, components: Sequence[str]) -> ScenarioPlan:
        """Materialise the plan for one station (deterministic in ``rng``)."""
        plan = self.builder(rng, tuple(components))
        injections = tuple(sorted(plan.injections, key=lambda i: (i.at, i.component)))
        for injection in injections:
            if injection.at < 0.0:
                raise ValueError(f"injection before trial start: {injection!r}")
        return ScenarioPlan(
            injections=injections, groups=plan.groups, horizon=plan.horizon
        )


def compose(name: str, scenarios: Sequence[Scenario], gap: float = 20.0) -> Scenario:
    """Sequence several scenarios into one (each offset past the previous).

    Child plans are built from child-derived RNGs in order, so composition
    is itself seed-reproducible; groups are the union (first occurrence
    wins on duplicates).
    """
    if not scenarios:
        raise ValueError("compose needs at least one scenario")

    def build(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
        injections = []
        groups = []
        seen_groups = set()
        offset = 0.0
        for scenario in scenarios:
            child_rng = random.Random(rng.random())
            plan = scenario.build(child_rng, components)
            for injection in plan.injections:
                injections.append(
                    Injection(
                        at=offset + injection.at,
                        component=injection.component,
                        cure_set=injection.cure_set,
                        kind=injection.kind,
                    )
                )
            for group in plan.groups:
                if group.members not in seen_groups:
                    seen_groups.add(group.members)
                    groups.append(group)
            offset += plan.horizon + gap
        return ScenarioPlan(
            injections=tuple(injections), groups=tuple(groups), horizon=offset
        )

    description = " then ".join(s.name for s in scenarios)
    return Scenario(name=name, description=f"composition: {description}", builder=build)


# ----------------------------------------------------------------------
# the catalogue
# ----------------------------------------------------------------------


def _radio_proxy(components: Tuple[str, ...]) -> str:
    return "fedrcom" if "fedrcom" in components else "pbcom"


def _build_cascade(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    first = rng.uniform(5.0, 10.0)
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="rtu"),
            Injection(at=first + rng.uniform(30.0, 40.0), component="ses"),
        ),
        groups=(
            GroupSpec(
                members=("ses", "str", "rtu"),
                induce_probability=1.0,
                induced_delay=rng.uniform(0.2, 0.4),
            ),
        ),
        horizon=120.0,
    )


def _build_storm(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    proxy = _radio_proxy(components)
    first = rng.uniform(5.0, 10.0)
    # The proxy restart runs ~20 s; everything below lands inside it (and
    # the second rtu hit typically lands inside rtu's *own* recovery).
    return ScenarioPlan(
        injections=(
            Injection(at=first, component=proxy),
            Injection(at=first + rng.uniform(3.0, 6.0), component="rtu"),
            Injection(at=first + rng.uniform(8.0, 12.0), component="ses"),
            Injection(at=first + rng.uniform(14.0, 18.0), component="rtu"),
        ),
        horizon=180.0,
    )


def _build_flapping(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    first = rng.uniform(5.0, 10.0)
    # FD dies before it can report the rtu fault; REC dies a little later,
    # mid-recovery.  The watchdog pair must rebuild itself around the
    # pending station failure, then handle a second fault cleanly.
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="rtu"),
            Injection(at=first + rng.uniform(0.2, 0.6), component="fd", kind="flap"),
            Injection(at=first + rng.uniform(6.0, 10.0), component="rec", kind="flap"),
            Injection(at=first + rng.uniform(25.0, 30.0), component="str"),
        ),
        horizon=120.0,
    )


def _build_mixed(rng: random.Random, components: Tuple[str, ...]) -> ScenarioPlan:
    if "pbcom" in components:
        persistent = Injection(
            at=rng.uniform(20.0, 25.0),
            component="pbcom",
            cure_set=("fedr", "pbcom"),
            kind="persistent",
        )
    else:
        persistent = Injection(
            at=rng.uniform(20.0, 25.0),
            component="ses",
            cure_set=("ses", "str"),
            kind="persistent",
        )
    first = rng.uniform(3.0, 6.0)
    return ScenarioPlan(
        injections=(
            Injection(at=first, component="rtu", kind="transient"),
            persistent,
            Injection(at=persistent.at + rng.uniform(35.0, 45.0), component="str",
                      kind="transient"),
        ),
        horizon=150.0,
    )


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "cascade",
            "correlated multi-component cascade (shared-fate ses/str/rtu group)",
            _build_cascade,
        ),
        Scenario(
            "storm",
            "fault-during-restart storm around the slow radio proxy",
            _build_storm,
        ),
        Scenario(
            "flapping",
            "FD/REC flapping while station recovery work is pending",
            _build_flapping,
        ),
        Scenario(
            "mixed",
            "transient crashes interleaved with a persistent joint-cure failure",
            _build_mixed,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a catalogue scenario; raises ``KeyError`` with the choices."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} (have: {', '.join(sorted(SCENARIOS))})"
        ) from None
