"""Live invariant checking over the observability event stream.

:class:`InvariantChecker` is a trace :class:`~repro.obs.sinks.Sink`: it
receives every emitted record as the simulation runs and asserts the
recovery machinery's safety/liveness contract *per episode*, not just in
aggregate.  The checks (each named, so reports and regression tests can
pin them):

``stuck-restart``
    No restart action runs forever: every ``restart_ordered`` must reach
    its ``restart_complete`` within ``max_restart_duration`` (generous
    enough for one watchdog re-kick of the slowest component), and none may
    still be open when the run finalises.

``trigger-containment``
    A restart ordered for a failure in component *c* must actually bounce
    *c* — the ordered cell's batch contains the trigger.  This is the check
    that catches a rogue/faulty oracle restarting outside the failed
    subtree (the seeded-bug regression).

``oracle-subtree``
    The recoverer never wanders off the oracle's recommendation: every
    ordered cell lies on the path from the oracle's original cell to the
    root (escalation climbs; it never hops sideways).

``batch-mismatch``
    The ordered component batch is exactly what the tree says the cell
    restarts — the recoverer executes the tree, it does not freelance.

``span-accounting``
    Per-episode availability accounting is additive: detection + decision +
    restart phases equal total recovery, and no phase is negative.

``injection-no-downtime``
    An injected *crash* failure on a running component takes it down at the
    injection instant (the fault model is not cosmetic).  Fail-slow kinds
    (``hang``/``zombie``) are exempt by definition: the process stays up,
    degraded, until the supervisor restarts it.

``undeclared-restart``
    Every failure-triggered restart order for a station component follows a
    detector declaration of that component — the supervisor never restarts
    a component nobody declared failed.  (Proactive restarts and the FD/REC
    watchdog pair, whose triggers are not tree components, are exempt.)

``unmatched-retraction``
    Every detector retraction matches a prior declaration of the same
    component: retractions can never outnumber declarations.

``unterminated-failure`` / ``component-down-at-end``
    Liveness at finalise: every injected failure was cured or its component
    operator-escalated, and every component is back up (escalated ones
    exempt — they are the operator's problem by contract).

``no-recovery-deadlock-on-store-failure``
    A stateful recovery strategy (microreboot / checkpoint-replay) ordered
    while the session store is inside an outage window must have announced
    its fallback to plain restart (``strategy_fallback`` from the same
    supervisor at the same instant) — recovery never proceeds statefully
    against a dead store.

``stale-plan-fencing``
    Once a supervisor has been restarted (``supervisor_restarted``), its
    dead incarnation's in-flight restart order is void: a
    ``restart_complete`` or ``bisect_probe`` from that supervisor with no
    live order means a pre-crash plan executed past the fence.

The checker embeds an :class:`~repro.obs.spans.EpisodeTracker` for the
span-level checks, so its episode list doubles as the chaos engine's MTTR
sample source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.tree import RestartTree
from repro.faults.failure import FAIL_SLOW_KINDS
from repro.obs import events as ev
from repro.obs.sinks import Sink
from repro.obs.spans import EpisodeTracker, RecoveryEpisode
from repro.types import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.trace import TraceRecord


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with enough context to reproduce it."""

    invariant: str
    time: SimTime
    subject: str
    detail: str

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form (campaign payloads, reports)."""
        return {
            "invariant": self.invariant,
            "time": self.time,
            "subject": self.subject,
            "detail": self.detail,
        }


@dataclass
class _OpenRestart:
    ordered_at: SimTime
    cell: str
    components: frozenset


class InvariantChecker(Sink):
    """Folds the live event stream into invariant verdicts."""

    #: Tolerance for span additivity (float summation of exact anchors).
    SPAN_EPS = 1e-6

    def __init__(
        self,
        tree: RestartTree,
        max_restart_duration: float = 180.0,
    ) -> None:
        self.tree = tree
        self.max_restart_duration = max_restart_duration
        self.violations: List[Violation] = []
        #: Episode spans, also consumed by the engine for MTTR samples.
        self.tracker = EpisodeTracker(on_complete=self._check_episode)
        #: One restart action in flight per supervisor source.
        self._open_restarts: Dict[str, _OpenRestart] = {}
        #: Active (injected, uncured) failures: id -> (component, time).
        self._active_failures: Dict[int, tuple] = {}
        #: Components handed to the operator (liveness checks exempt them).
        self._escalated: set = set()
        #: component -> down-since time (None/absent = up).
        self._down_since: Dict[str, Optional[SimTime]] = {}
        #: Injections onto an up component that still owe a down transition:
        #: component -> (injected_at, failure_id).
        self._pending_injections: Dict[str, tuple] = {}
        #: Per-component declaration counts (never decremented — a restart
        #: for a component declared long ago is still a declared restart).
        self._declarations: Dict[str, int] = {}
        #: Per-component retraction counts, matched against declarations.
        self._retractions: Dict[str, int] = {}
        #: Session-store outage window: down-since time (None = healthy).
        self._store_down_since: Optional[SimTime] = None
        #: supervisor source -> instant of its last announced fallback.
        self._fallback_at: Dict[str, SimTime] = {}
        #: supervisor source -> number of crash-only restarts observed.
        self._fenced_sources: Dict[str, int] = {}
        self._finalized = False
        self._dispatch = {
            ev.PROCESS_FAILED: self._on_down,
            ev.PROCESS_STOPPED: self._on_down,
            ev.PROCESS_READY: self._on_up,
            ev.FAILURE_INJECTED: self._on_injected,
            ev.FAILURE_CURED: self._on_cured,
            ev.OPERATOR_ESCALATION: self._on_escalation,
            ev.RESTART_ORDERED: self._on_restart_ordered,
            ev.RESTART_COMPLETE: self._on_restart_complete,
            ev.DETECTION: self._on_detection,
            ev.DETECTION_RETRACTED: self._on_retraction,
            ev.STORE_CRASHED: self._on_store_crashed,
            ev.STORE_RECOVERED: self._on_store_recovered,
            ev.STRATEGY_FALLBACK: self._on_strategy_fallback,
            ev.SUPERVISOR_RESTARTED: self._on_supervisor_restarted,
            ev.BISECT_PROBE: self._on_bisect_probe,
        }

    # -- sink interface ---------------------------------------------------

    def accept(self, record: "TraceRecord") -> None:
        self.tracker.accept(record)
        handler = self._dispatch.get(record.kind)
        if handler is not None:
            handler(record.time, record.source, record.data)

    def close(self) -> None:
        self.tracker.flush()

    # -- reporting --------------------------------------------------------

    @property
    def ok(self) -> bool:
        """Whether no invariant has been violated so far."""
        return not self.violations

    def violation_payloads(self) -> List[Dict[str, Any]]:
        """All violations as JSON-safe dicts, in detection order."""
        return [violation.to_payload() for violation in self.violations]

    def _flag(self, invariant: str, time: SimTime, subject: str, detail: str) -> None:
        self.violations.append(Violation(invariant, time, subject, detail))

    # -- event handlers ---------------------------------------------------

    def _on_down(self, time: SimTime, source: str, data: Dict[str, Any]) -> None:
        name = data["name"]
        self._down_since[name] = time
        pending = self._pending_injections.pop(name, None)
        if pending is not None and time - pending[0] > self.SPAN_EPS:
            self._flag(
                "injection-no-downtime",
                time,
                f"{name}#{pending[1]}",
                f"component only went down at {time:.3f}, "
                f"{time - pending[0]:.3f}s after the injection",
            )

    def _on_up(self, time: SimTime, source: str, data: Dict[str, Any]) -> None:
        self._down_since[data["name"]] = None

    def _on_injected(self, time: SimTime, source: str, data: Dict[str, Any]) -> None:
        component = data["component"]
        failure_id = data["failure_id"]
        self._active_failures[failure_id] = (component, time)
        # The kill lands synchronously with the injection: the component's
        # down record follows at this same instant.  A component already
        # down (or mid-restart) legally absorbs the injection without a new
        # transition, so only arm the check when it was up.  Fail-slow
        # kinds degrade the process in place — no down transition is owed.
        if data.get("failure_kind") in FAIL_SLOW_KINDS:
            return
        if self._down_since.get(component) is None:
            self._pending_injections[component] = (time, failure_id)

    def _on_cured(self, time: SimTime, source: str, data: Dict[str, Any]) -> None:
        self._active_failures.pop(data["failure_id"], None)

    def _on_escalation(self, time: SimTime, source: str, data: Dict[str, Any]) -> None:
        self._escalated.add(data["component"])

    def _on_detection(self, time: SimTime, source: str, data: Dict[str, Any]) -> None:
        component = data["component"]
        self._declarations[component] = self._declarations.get(component, 0) + 1

    def _on_retraction(self, time: SimTime, source: str, data: Dict[str, Any]) -> None:
        component = data["component"]
        count = self._retractions.get(component, 0) + 1
        self._retractions[component] = count
        if count > self._declarations.get(component, 0):
            self._flag(
                "unmatched-retraction",
                time,
                component,
                f"retraction #{count} exceeds the "
                f"{self._declarations.get(component, 0)} declaration(s) seen",
            )

    def _on_store_crashed(
        self, time: SimTime, source: str, data: Dict[str, Any]
    ) -> None:
        self._store_down_since = time

    def _on_store_recovered(
        self, time: SimTime, source: str, data: Dict[str, Any]
    ) -> None:
        self._store_down_since = None

    def _on_strategy_fallback(
        self, time: SimTime, source: str, data: Dict[str, Any]
    ) -> None:
        self._fallback_at[source] = time

    def _on_supervisor_restarted(
        self, time: SimTime, source: str, data: Dict[str, Any]
    ) -> None:
        # The dead incarnation's in-flight order is void: drop it so the
        # fresh supervisor's re-order is not misread as a stuck restart,
        # and arm the fence — any completion from this source without a
        # live order from here on is a stale pre-crash plan executing.
        self._open_restarts.pop(source, None)
        self._fenced_sources[source] = self._fenced_sources.get(source, 0) + 1

    def _on_bisect_probe(
        self, time: SimTime, source: str, data: Dict[str, Any]
    ) -> None:
        if source in self._fenced_sources and source not in self._open_restarts:
            self._flag(
                "stale-plan-fencing",
                time,
                source,
                f"bisect probe from {source} with no live restart order after "
                f"its supervisor restart — a pre-crash plan is still running",
            )

    def _on_restart_ordered(
        self, time: SimTime, source: str, data: Dict[str, Any]
    ) -> None:
        cell = data["cell"]
        if (
            self._store_down_since is not None
            and data.get("strategy") in ("microreboot", "checkpoint-replay")
            and self._fallback_at.get(source) != time
        ):
            self._flag(
                "no-recovery-deadlock-on-store-failure",
                time,
                cell,
                f"{source} ordered stateful strategy "
                f"{data.get('strategy')!r} while the session store has been "
                f"down since {self._store_down_since:.3f} without announcing "
                f"a fallback to plain restart",
            )
        components = frozenset(data.get("components", ()))
        trigger = data.get("trigger")
        oracle_cell = data.get("oracle_cell")

        previous = self._open_restarts.get(source)
        if previous is not None:
            self._flag(
                "stuck-restart",
                time,
                previous.cell,
                f"{source} ordered {cell} while restart of {previous.cell} "
                f"(ordered at {previous.ordered_at:.3f}) never completed",
            )
        self._open_restarts[source] = _OpenRestart(time, cell, components)

        if not self.tree.has_cell(cell):
            self._flag(
                "batch-mismatch", time, cell,
                f"ordered cell {cell!r} does not exist in tree {self.tree.name!r}",
            )
            return
        expected = self.tree.components_restarted_by(cell)
        strategy = data.get("strategy")
        if strategy is not None:
            # A non-restart strategy may legitimately bounce a subset of the
            # cell's group (microreboot's partial batch); it must still stay
            # inside the group, be non-empty, and cover the trigger.
            if not components or not components <= expected:
                self._flag(
                    "batch-mismatch",
                    time,
                    cell,
                    f"strategy {strategy!r} batch {sorted(components)} is not "
                    f"a non-empty subset of tree batch {sorted(expected)} "
                    f"for cell {cell!r}",
                )
            elif trigger in expected and trigger not in components:
                self._flag(
                    "batch-mismatch",
                    time,
                    cell,
                    f"strategy {strategy!r} batch {sorted(components)} omits "
                    f"the failed component {trigger!r}",
                )
        elif components != expected:
            self._flag(
                "batch-mismatch",
                time,
                cell,
                f"ordered batch {sorted(components)} != tree batch "
                f"{sorted(expected)} for cell {cell!r}",
            )
        if trigger in self.tree.components and trigger not in expected:
            self._flag(
                "trigger-containment",
                time,
                trigger,
                f"restart of cell {cell!r} (batch {sorted(expected)}) does "
                f"not cover the failed component {trigger!r}",
            )
        if (
            trigger in self.tree.components
            and not self._declarations.get(trigger)
        ):
            self._flag(
                "undeclared-restart",
                time,
                trigger,
                f"restart of cell {cell!r} triggered by {trigger!r}, which "
                f"no detector ever declared failed",
            )
        if (
            oracle_cell is not None
            and self.tree.has_cell(oracle_cell)
            and not self.tree.is_ancestor(cell, oracle_cell)
        ):
            self._flag(
                "oracle-subtree",
                time,
                cell,
                f"ordered cell {cell!r} is not on the escalation path of the "
                f"oracle's recommendation {oracle_cell!r}",
            )

    def _on_restart_complete(
        self, time: SimTime, source: str, data: Dict[str, Any]
    ) -> None:
        open_restart = self._open_restarts.pop(source, None)
        if open_restart is None:
            if source in self._fenced_sources:
                self._flag(
                    "stale-plan-fencing",
                    time,
                    source,
                    f"restart_complete from {source} with no live order after "
                    f"its supervisor restart — a pre-crash plan executed past "
                    f"the fence",
                )
            return
        duration = time - open_restart.ordered_at
        if duration > self.max_restart_duration:
            self._flag(
                "stuck-restart",
                time,
                open_restart.cell,
                f"restart of {open_restart.cell} took {duration:.1f}s "
                f"(> {self.max_restart_duration:.0f}s)",
            )

    # -- per-episode span checks -----------------------------------------

    def _check_episode(self, episode: RecoveryEpisode) -> None:
        if episode.kind != "failure" or not episode.is_complete:
            return
        subject = f"{episode.component}#{episode.failure_id}"
        phases = (
            ("detection", episode.detection_latency),
            ("decision", episode.decision_latency),
            ("restart", episode.restart_duration),
            ("total", episode.total_recovery),
        )
        for name, duration in phases:
            if duration is not None and duration < -self.SPAN_EPS:
                self._flag(
                    "span-accounting",
                    episode.recovery_end or 0.0,
                    subject,
                    f"negative {name} phase: {duration:.6f}s",
                )
        parts = [d for _, d in phases[:3] if d is not None]
        total = episode.total_recovery
        if len(parts) == 3 and total is not None:
            if abs(sum(parts) - total) > self.SPAN_EPS:
                self._flag(
                    "span-accounting",
                    episode.recovery_end or 0.0,
                    subject,
                    f"phases sum to {sum(parts):.6f}s but total recovery is "
                    f"{total:.6f}s",
                )

    # -- finalisation ------------------------------------------------------

    def finalize(self, now: SimTime) -> List[Violation]:
        """End-of-run sweep: liveness checks that only make sense at the end.

        Idempotent; returns the full violation list for convenience.
        """
        if self._finalized:
            return self.violations
        self._finalized = True
        self.tracker.flush()

        for source, open_restart in sorted(self._open_restarts.items()):
            if now - open_restart.ordered_at > self.max_restart_duration:
                self._flag(
                    "stuck-restart",
                    now,
                    open_restart.cell,
                    f"restart of {open_restart.cell} (ordered by {source} at "
                    f"{open_restart.ordered_at:.3f}) still open at end of run",
                )
        for component in sorted(self._pending_injections):
            injected_at, failure_id = self._pending_injections[component]
            self._flag(
                "injection-no-downtime",
                now,
                f"{component}#{failure_id}",
                f"injection at {injected_at:.3f} never took the component down",
            )
        for failure_id in sorted(self._active_failures):
            component, injected_at = self._active_failures[failure_id]
            if component in self._escalated:
                continue
            self._flag(
                "unterminated-failure",
                now,
                f"{component}#{failure_id}",
                f"failure injected at {injected_at:.3f} neither cured nor "
                f"operator-escalated by end of run",
            )
        for component in sorted(self._down_since):
            down_since = self._down_since[component]
            if down_since is None or component in self._escalated:
                continue
            self._flag(
                "component-down-at-end",
                now,
                component,
                f"still down at end of run (since {down_since:.3f})",
            )
        return self.violations
