"""Deterministic chaos campaigns: adversarial schedules + invariant checks.

The paper's evaluation kills one component at a time; real stations fail
uglier — correlated cascades, faults landing *during* recovery, a flaky
supervisor pair.  This package throws those workloads at the simulated
station and checks, live off the event stream, that the recovery machinery
keeps its promises no matter what.

* :mod:`repro.chaos.scenarios` — composable, seed-reproducible
  :class:`~repro.chaos.scenarios.Scenario` objects (the adversarial
  schedules);
* :mod:`repro.chaos.invariants` — the
  :class:`~repro.chaos.invariants.InvariantChecker` sink asserting
  per-episode safety/liveness properties;
* :mod:`repro.chaos.engine` — :func:`~repro.chaos.engine.run_chaos`, the
  trial loop gluing a scenario to a station, plus the campaign payloads the
  parallel runner caches.
"""

from repro.chaos.engine import ChaosResult, run_chaos
from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.scenarios import SCENARIOS, Scenario, ScenarioPlan, get_scenario

__all__ = [
    "ChaosResult",
    "InvariantChecker",
    "SCENARIOS",
    "Scenario",
    "ScenarioPlan",
    "Violation",
    "get_scenario",
    "run_chaos",
]
