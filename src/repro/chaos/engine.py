"""The chaos trial loop: glue a scenario to a station, check, and account.

:func:`run_chaos` is the per-(scenario, tree) work unit.  It builds one
station, arms the scenario's correlation groups, then per trial: waits for
quiescence, replays the scenario plan's timed injections, runs out the
plan's horizon, and drains the wreckage.  An
:class:`~repro.chaos.invariants.InvariantChecker` rides the event stream
for the whole run; its episode tracker doubles as the MTTR sample source.

Everything that feeds the returned :class:`ChaosResult` is derived from the
simulation clock and kernel-seeded RNG streams, so a (tree, scenario, seed)
triple reproduces bit-identically — which is what lets the parallel
campaign runner cache chaos cells content-addressed and lets
``make check-determinism`` byte-compare two runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.tree import RestartTree
from repro.errors import ExperimentError
from repro.experiments.metrics import RecoveryStats
from repro.experiments.snapshot import station_shape, warmed_station
from repro.faults.correlation import CorrelationGroup
from repro.mercury.config import PAPER_CONFIG, StationConfig
from repro.mercury.station import MercuryStation, OracleSpec
from repro.obs import events as ev
from repro.obs.sinks import MetricsSink, PhaseSnapshot, Sink
from repro.chaos.invariants import InvariantChecker
from repro.chaos.scenarios import Injection, NetOp, Scenario, StoreOp, get_scenario
from repro.faults.store_faults import StoreFaultModel


@dataclass
class ChaosResult:
    """Outcome of one chaos campaign cell (one scenario on one tree)."""

    tree_name: str
    scenario: str
    trials: int
    #: Injections actually fired vs. dropped because the target component
    #: (or a cure-set member) does not exist in this tree generation.
    injected: int
    skipped: int
    #: Completed failure-recovery episodes (MTTR sample count).
    episodes: int
    mttr_samples: List[float] = field(default_factory=list)
    cured: int = 0
    escalations: int = 0
    #: Times the drain phase had to fall back to an operator whole-station
    #: restart because the supervisor could not reach quiescence alone.
    operator_interventions: int = 0
    #: Detector accuracy accounting: declarations whose component was in
    #: fact healthy, and reports the detector itself retracted.
    false_positives: int = 0
    retractions: int = 0
    #: Network-fabric accounting (zero for scenarios without net ops).
    net_dropped: int = 0
    net_duplicated: int = 0
    #: Crash-only recovery-plane accounting (zero for scenarios without
    #: store ops or supervisor kills).
    store_outages: int = 0
    store_fallbacks: int = 0
    plans_fenced: int = 0
    supervisor_restarts: int = 0
    records_quarantined: int = 0
    violations: List[Dict[str, Any]] = field(default_factory=list)
    phases: PhaseSnapshot = field(default_factory=dict)

    @property
    def stats(self) -> RecoveryStats:
        """Aggregate MTTR statistics over the completed episodes."""
        return RecoveryStats.from_samples(self.mttr_samples)

    @property
    def ok(self) -> bool:
        """Whether the run finished with zero invariant violations."""
        return not self.violations

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe form for campaign caching and reports."""
        return {
            "tree": self.tree_name,
            "scenario": self.scenario,
            "trials": self.trials,
            "injected": self.injected,
            "skipped": self.skipped,
            "episodes": self.episodes,
            "mttr_samples": list(self.mttr_samples),
            "cured": self.cured,
            "escalations": self.escalations,
            "operator_interventions": self.operator_interventions,
            "false_positives": self.false_positives,
            "retractions": self.retractions,
            "net_dropped": self.net_dropped,
            "net_duplicated": self.net_duplicated,
            "store_outages": self.store_outages,
            "store_fallbacks": self.store_fallbacks,
            "plans_fenced": self.plans_fenced,
            "supervisor_restarts": self.supervisor_restarts,
            "records_quarantined": self.records_quarantined,
            "violations": list(self.violations),
            "phases": self.phases,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "ChaosResult":
        return ChaosResult(
            tree_name=payload["tree"],
            scenario=payload["scenario"],
            trials=payload["trials"],
            injected=payload["injected"],
            skipped=payload["skipped"],
            episodes=payload["episodes"],
            mttr_samples=list(payload["mttr_samples"]),
            cured=payload["cured"],
            escalations=payload["escalations"],
            operator_interventions=payload["operator_interventions"],
            false_positives=payload.get("false_positives", 0),
            retractions=payload.get("retractions", 0),
            net_dropped=payload.get("net_dropped", 0),
            net_duplicated=payload.get("net_duplicated", 0),
            store_outages=payload.get("store_outages", 0),
            store_fallbacks=payload.get("store_fallbacks", 0),
            plans_fenced=payload.get("plans_fenced", 0),
            supervisor_restarts=payload.get("supervisor_restarts", 0),
            records_quarantined=payload.get("records_quarantined", 0),
            violations=list(payload["violations"]),
            phases=payload["phases"],
        )


def _fire(
    station: MercuryStation, injection: Injection, components: frozenset
) -> bool:
    """Inject one planned fault; False when the station cannot host it.

    Targets are looked up in the process manager, not the tree: the
    flapping scenario shoots the FD/REC supervisor pair, which exists only
    under the full supervisor and is never a tree component.  Joint cure
    sets, by contrast, are satisfied by tree restart batches, so all their
    members must be station components.
    """
    if station.manager.maybe_get(injection.component) is None:
        return False
    if injection.cure_set is not None:
        cure_set = frozenset(injection.cure_set)
        if not cure_set <= components:
            return False
        station.injector.inject_joint(
            injection.component, cure_set, kind=injection.kind
        )
    else:
        station.injector.inject_simple(injection.component, kind=injection.kind)
    return True


def _apply_net(station: MercuryStation, op: NetOp) -> None:
    """Script one fabric operation (the station was built with net faults)."""
    faults = station.network.faults
    if faults is None:  # pragma: no cover - Scenario.build validates this
        raise ExperimentError(
            "scenario plans net ops but the station has no fault model"
        )
    if op.kind == "partition":
        faults.partition(op.a, op.b, op.duration)
    else:
        faults.degrade(
            op.a,
            op.b,
            duration=op.duration,
            drop=op.drop,
            spike_probability=op.spike_probability,
            spike_seconds=op.spike_seconds,
            duplicate_probability=op.duplicate_probability,
        )


def _apply_store(station: MercuryStation, op: StoreOp) -> None:
    """Script one session-store outage window."""
    store = station.session_store
    model = store.faults if store is not None else None
    if model is None:  # pragma: no cover - run_chaos attaches it up front
        raise ExperimentError(
            "scenario plans store ops but the station has no store fault model"
        )
    if op.kind == "hang":
        model.hang(op.duration)
    else:
        model.crash(op.duration)


def run_chaos(
    tree: RestartTree,
    scenario: Union[str, Scenario],
    trials: int = 1,
    seed: int = 0,
    oracle: OracleSpec = "perfect",
    oracle_error_rate: float = 0.3,
    config: StationConfig = PAPER_CONFIG,
    supervisor: str = "full",
    sinks: Sequence[Sink] = (),
    max_restart_duration: float = 180.0,
    quiesce_timeout: float = 600.0,
    snapshot: Optional[bool] = None,
    strategy: Optional[str] = None,
) -> ChaosResult:
    """Run ``trials`` episodes of ``scenario`` against one tree.

    Each trial rebuilds the plan from the scenario's dedicated RNG stream,
    so trials vary their timings while the whole run stays a pure function
    of ``seed``.  The station keeps its aging/resync couplings armed —
    chaos wants the correlated machinery live, unlike the isolated Table 2
    recovery measurements.

    Station setup goes through the warmed-station snapshot cache: the
    invariant checker and sinks attach after the (deterministic, clean)
    boot, so they observe exactly the chaos portion of the run in both the
    snapshot and fresh-boot modes.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if scenario.station_overrides:
        config = config.with_overrides(**dict(scenario.station_overrides))
    if strategy is None and scenario.default_strategy is not None:
        # Recipes exercising the crash-only recovery plane need a stateful
        # strategy (and its session store) unless the caller picked one.
        strategy = scenario.default_strategy

    def build(boot_seed: int) -> MercuryStation:
        return MercuryStation(
            tree=tree,
            config=config,
            seed=boot_seed,
            oracle=oracle,
            oracle_error_rate=oracle_error_rate,
            supervisor=supervisor,
            trace_capacity=50_000,
            net_faults=scenario.uses_network,
            strategy=strategy,
        )

    if isinstance(oracle, str):
        oracle_part = oracle
    else:
        oracle_part = f"instance:{type(oracle).__name__}"
        snapshot = False
    shape_params = dict(
        oracle=oracle_part,
        oracle_error_rate=oracle_error_rate,
        supervisor=supervisor,
        net_faults=scenario.uses_network,
    )
    if strategy is not None:
        # Only strategy-enabled stations carry the extra key, so every
        # classic shape (and its boot seed) is byte-identical to before the
        # strategy registry existed.
        shape_params["strategy"] = strategy
    shape = station_shape("chaos", tree, config, **shape_params)
    station = warmed_station(shape, build, MercuryStation.boot, seed, snapshot)
    if scenario.uses_store:
        # Attached post-boot (like sinks), so warmed-station templates and
        # classic boot traces stay byte-identical.
        if station.session_store is None:
            raise ExperimentError(
                f"scenario {scenario.name!r} injects store faults but the "
                f"station has no session store (pick a recovery strategy)"
            )
        station.session_store.attach_faults(
            StoreFaultModel(station.kernel, **dict(scenario.store_faults))
        )
    checker = InvariantChecker(tree, max_restart_duration=max_restart_duration)
    metrics = MetricsSink()
    station.kernel.trace.add_sink(checker)
    station.kernel.trace.add_sink(metrics)
    for sink in sinks:
        station.kernel.trace.add_sink(sink)
    components = frozenset(station.station_components)
    plan_rng = station.kernel.rngs.stream(f"chaos.{scenario.name}")
    groups: Dict[Tuple[str, ...], CorrelationGroup] = {}
    injected = 0
    skipped = 0
    operator_interventions = 0

    for _ in range(trials):
        station.run_until_quiescent(timeout=quiesce_timeout)
        plan = scenario.build(plan_rng, station.station_components)

        for spec in plan.groups:
            members = tuple(m for m in spec.members if m in components)
            if len(members) < 2:
                continue  # group does not exist in this tree generation
            group = groups.get(members)
            if group is None:
                groups[members] = CorrelationGroup(
                    station.injector,
                    members,
                    induce_probability=spec.induce_probability,
                    induced_delay=spec.induced_delay,
                )
            else:
                group.induce_probability = spec.induce_probability
                group.induced_delay = spec.induced_delay

        base = station.kernel.now
        # One merged timeline: fabric and store operations interleave with
        # injections in plan order (ops first at equal instants, so a
        # same-time crash already experiences the degraded link / dead
        # store).
        timeline = sorted(
            [(op.at, 0, op) for op in plan.net_ops]
            + [(op.at, 1, op) for op in plan.store_ops]
            + [(injection.at, 2, injection) for injection in plan.injections],
            key=lambda item: (item[0], item[1]),
        )
        for at, _, item in timeline:
            target = base + at
            if target > station.kernel.now:
                station.run_for(target - station.kernel.now)
            if isinstance(item, NetOp):
                _apply_net(station, item)
            elif isinstance(item, StoreOp):
                _apply_store(station, item)
            elif _fire(station, item, components):
                injected += 1
            else:
                skipped += 1
        horizon_end = base + plan.horizon
        if horizon_end > station.kernel.now:
            station.run_for(horizon_end - station.kernel.now)

        # Drain: the supervisor gets a full quiescence window on its own;
        # if it cannot converge (budget exhausted, escalated failure), an
        # "operator" bounces the whole station — the paper's last resort.
        # The fabric is cleared first: chaos ends at the horizon, and
        # quiescence is judged on a healthy network.
        if station.network.faults is not None:
            station.network.faults.clear()
        for group in groups.values():
            group.enabled = False
        try:
            station.run_until_quiescent(timeout=quiesce_timeout)
        except ExperimentError:
            operator_interventions += 1
            station.manager.restart(station.station_components)
            station.run_until_quiescent(timeout=quiesce_timeout)
        finally:
            for group in groups.values():
                group.enabled = True
                group.rearm()

    for group in groups.values():
        group.enabled = False
    checker.finalize(station.kernel.now)
    for sink in sinks:
        sink.close()

    mttr_samples = [
        episode.total_recovery
        for episode in checker.tracker.episodes
        if episode.kind == "failure"
        and episode.is_complete
        and episode.total_recovery is not None
    ]
    faults = station.network.faults
    return ChaosResult(
        tree_name=tree.name,
        scenario=scenario.name,
        trials=trials,
        injected=injected,
        skipped=skipped,
        episodes=len(mttr_samples),
        mttr_samples=mttr_samples,
        cured=metrics.count(ev.FAILURE_CURED),
        escalations=metrics.count(ev.OPERATOR_ESCALATION),
        operator_interventions=operator_interventions,
        false_positives=metrics.count(ev.DETECTION_FALSE_POSITIVE),
        retractions=metrics.count(ev.DETECTION_RETRACTED),
        net_dropped=faults.messages_dropped if faults is not None else 0,
        net_duplicated=faults.messages_duplicated if faults is not None else 0,
        store_outages=metrics.count(ev.STORE_CRASHED),
        store_fallbacks=metrics.count(ev.STRATEGY_FALLBACK),
        plans_fenced=metrics.count(ev.PLAN_FENCED),
        supervisor_restarts=metrics.count(ev.SUPERVISOR_RESTARTED),
        records_quarantined=metrics.count(ev.STORE_RECORD_QUARANTINED),
        violations=checker.violation_payloads(),
        phases=metrics.phase_snapshot(),
    )
