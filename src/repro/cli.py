"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro.cli recovery --tree V --component rtu --trials 20
    python -m repro.cli table2 --trials 40 --jobs 4
    python -m repro.cli table4 --trials 40 --jobs 4 --cache-dir .repro-cache
    python -m repro.cli trees
    python -m repro.cli availability --days 3 --jobs 2
    python -m repro.cli passes --days 7 --tree I --tree V

Every subcommand prints the same paper-layout tables the benches produce;
the CLI is a thin veneer over :mod:`repro.experiments`.  Campaign-style
subcommands (``table2``, ``table4``, ``availability``) accept ``--jobs N``
to fan cells across worker processes and ``--cache-dir`` to reuse the
content-addressed result cache — results are bit-identical for any jobs
value.  ``--profile`` wraps any subcommand in :mod:`cProfile` (most useful
with ``--jobs 1``, since workers run in separate processes).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.core.recovery_strategies import strategy_names
from repro.core.render import render_tree
from repro.experiments.availability import measure_availability_suite
from repro.experiments.passes_experiment import run_pass_campaign
from repro.experiments.recovery import measure_recovery, measure_recovery_row
from repro.experiments.report import format_phase_breakdown, format_table
from repro.experiments.runner import run_recovery_matrix
from repro.chaos.scenarios import SCENARIOS
from repro.experiments.strategy_compare import FAILURE_KINDS
from repro.mercury.trees import TREE_BUILDERS

#: The Table 4 layout: (tree, oracle) rows and the component columns.
TABLE4_ROWS = [
    ("I", "perfect"),
    ("II", "perfect"),
    ("III", "perfect"),
    ("IV", "perfect"),
    ("IV", "faulty"),
    ("V", "faulty"),
]
TABLE4_COLUMNS = ["mbus", "ses", "str", "rtu", "fedr", "pbcom", "fedrcom"]


def table4_cure_set(tree_label: str, oracle: str, component: str):
    """§4.4's rule: faulty-oracle pbcom failures need the joint restart."""
    if oracle == "faulty" and component == "pbcom":
        return ("fedr", "pbcom")
    return None


def _tree_argument(parser: argparse.ArgumentParser, multiple: bool = False) -> None:
    kwargs = dict(choices=sorted(TREE_BUILDERS), default=None)
    if multiple:
        parser.add_argument(
            "--tree", action="append", help="tree label (repeatable)", **kwargs
        )
    else:
        parser.add_argument("--tree", help="tree label", **kwargs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Recursive-restartability reproduction experiments",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for campaign fan-out (0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the content-addressed campaign result cache",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the subcommand under cProfile and print the top 20 "
        "cumulative entries (use with --jobs 1 to see simulation internals)",
    )
    # The same flags are accepted after the subcommand (`repro table2
    # --jobs 4`); SUPPRESS defaults so they only override the root values
    # when explicitly given.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    common.add_argument("--jobs", type=int, default=argparse.SUPPRESS)
    common.add_argument("--cache-dir", default=argparse.SUPPRESS)
    common.add_argument("--profile", action="store_true", default=argparse.SUPPRESS)
    subparsers = parser.add_subparsers(dest="command", required=True)

    trees = subparsers.add_parser(
        "trees", help="render the restart trees I-V", parents=[common]
    )

    recovery = subparsers.add_parser(
        "recovery",
        help="kill-and-measure one component (Table 2/4 cell)",
        parents=[common],
    )
    _tree_argument(recovery)
    recovery.add_argument("--component", required=True)
    recovery.add_argument("--trials", type=int, default=20)
    recovery.add_argument(
        "--oracle", choices=["perfect", "naive", "faulty", "learning"],
        default="perfect",
    )
    recovery.add_argument("--error-rate", type=float, default=0.3)
    recovery.add_argument(
        "--cure", nargs="*", default=None,
        help="minimal cure set (defaults to the component alone)",
    )
    recovery.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="stream every trace event of the run to a JSONL file "
        "(inspect with `repro trace FILE`)",
    )

    table2 = subparsers.add_parser(
        "table2", help="regenerate Table 2", parents=[common]
    )
    table2.add_argument("--trials", type=int, default=20)

    table4 = subparsers.add_parser(
        "table4",
        help="regenerate the full Table 4 MTTR matrix",
        parents=[common],
    )
    table4.add_argument("--trials", type=int, default=20)

    availability = subparsers.add_parser(
        "availability",
        help="steady-state availability per tree",
        parents=[common],
    )
    availability.add_argument("--days", type=float, default=3.0)
    availability.add_argument(
        "--phases", action="store_true",
        help="also print the per-component recovery-phase breakdown "
        "(detection / decision / restart latency) for each tree",
    )
    _tree_argument(availability, multiple=True)

    passes = subparsers.add_parser(
        "passes", help="satellite-pass data-loss campaign (§5.2)", parents=[common]
    )
    passes.add_argument("--days", type=float, default=7.0)
    _tree_argument(passes, multiple=True)

    chaos = subparsers.add_parser(
        "chaos",
        help="adversarial chaos campaigns with live invariant checking",
        parents=[common],
    )
    chaos.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS), default=None,
        help="scenario name (repeatable; default: the full catalogue)",
    )
    _tree_argument(chaos, multiple=True)
    chaos.add_argument("--trials", type=int, default=1)
    chaos.add_argument(
        "--oracle", choices=["perfect", "naive", "faulty", "learning"],
        default="perfect",
    )
    chaos.add_argument("--error-rate", type=float, default=0.3)
    chaos.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="stream every trace event to a JSONL file; requires exactly "
        "one scenario and one tree (inspect with `repro trace FILE`)",
    )
    chaos.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the full per-cell results as sorted JSON",
    )

    strategy = subparsers.add_parser(
        "strategy-compare",
        help="recovery-strategy matrix: strategy x failure kind x tree",
        parents=[common],
    )
    strategy.add_argument(
        "--strategy", action="append", choices=sorted(strategy_names()),
        default=None,
        help="strategy name (repeatable; default: the full registry)",
    )
    strategy.add_argument(
        "--kind", action="append", choices=sorted(FAILURE_KINDS), default=None,
        help="injected failure kind (repeatable; default: "
        + " ".join(FAILURE_KINDS) + ")",
    )
    _tree_argument(strategy, multiple=True)
    strategy.add_argument("--trials", type=int, default=3)
    strategy.add_argument(
        "--user-effects", action="store_true",
        help="also run a user-traffic workload cell per matrix cell and "
        "join the goodput / user-visible-loss columns into the table",
    )
    strategy.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the full per-cell results as sorted JSON",
    )

    workload = subparsers.add_parser(
        "workload",
        help="user-traffic cells: goodput and user-visible loss per "
        "strategy x failure kind x tree",
        parents=[common],
    )
    workload.add_argument(
        "--strategy", action="append",
        choices=sorted(strategy_names()) + ["classic"],
        default=None,
        help="strategy name, or 'classic' for the restart-only baseline "
        "(repeatable; default: classic restart microreboot)",
    )
    workload.add_argument(
        "--kind", action="append", choices=sorted(FAILURE_KINDS), default=None,
        help="injected failure kind (repeatable; default: crash)",
    )
    _tree_argument(workload, multiple=True)
    workload.add_argument(
        "--failures", type=int, default=3,
        help="faults injected per cell (default: 3)",
    )
    workload.add_argument(
        "--rate", type=float, default=None, metavar="SESSIONS_PER_S",
        help="offered session arrival rate (default: 40)",
    )
    workload.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the full per-cell results as sorted JSON",
    )

    ablation = subparsers.add_parser(
        "detection-ablation",
        help="detection accuracy vs MTTR: drop rate x timeout policy sweep",
        parents=[common],
    )
    _tree_argument(ablation)
    ablation.add_argument(
        "--drop", action="append", type=float, default=None, metavar="RATE",
        help="message drop rate (repeatable; default: 0.0 0.05 0.15)",
    )
    ablation.add_argument(
        "--policy", action="append", choices=["fixed", "adaptive"],
        default=None,
        help="reply-timeout policy (repeatable; default: both)",
    )
    ablation.add_argument(
        "--failures", type=int, default=3,
        help="crashes injected per cell under loss (default: 3)",
    )

    fleet = subparsers.add_parser(
        "fleet",
        help="fleet-scale campaign: MTTR/availability/session loss vs "
        "fleet size under independent and correlated failures",
        parents=[common],
    )
    _tree_argument(fleet)
    fleet.add_argument(
        "--size", action="append", type=int, default=None, metavar="N",
        help="fleet size (repeatable; default: 16 64)",
    )
    fleet.add_argument(
        "--horizon", type=float, default=600.0, metavar="SECONDS",
        help="measured window per fleet (default: 600)",
    )
    fleet.add_argument(
        "--wave-interval", action="append", type=float, default=None,
        metavar="SECONDS",
        help="mean seconds between correlated ground-segment fault waves "
        "(repeatable; 0 = independent failures only; default: 0 150)",
    )
    fleet.add_argument(
        "--wave-drop", type=float, default=0.2, metavar="P",
        help="wave-coupled uplink drop probability (default: 0.2)",
    )
    fleet.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="kernel shards per fleet (default: REPRO_FLEET_SHARDS or 1; "
        "results are bit-identical for any value)",
    )
    fleet.add_argument(
        "--request-rate", type=float, default=0.0, metavar="SESSIONS_PER_S",
        help="per-station user-session arrival rate; 0 disables the "
        "workload plane (default: 0)",
    )
    fleet.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the full per-cell results as sorted JSON",
    )

    trace = subparsers.add_parser(
        "trace",
        help="dump/filter a JSONL event trace (see `recovery --trace-out`)",
        parents=[common],
    )
    trace.add_argument("path", help="JSONL trace file written by a JsonlSink")
    trace.add_argument(
        "--kind", action="append", default=None,
        help="keep only this event kind (repeatable)",
    )
    trace.add_argument(
        "--source", action="append", default=None,
        help="keep only this emitting source (repeatable)",
    )
    trace.add_argument(
        "--since", type=float, default=None,
        help="keep only events at or after this simulated time (s)",
    )
    trace.add_argument(
        "--until", type=float, default=None,
        help="keep only events at or before this simulated time (s)",
    )
    trace.add_argument(
        "--limit", type=int, default=None,
        help="print at most the first N matching events",
    )

    return parser


def cmd_trees(args: argparse.Namespace) -> int:
    for label in ("I", "II", "II'", "III", "IV", "V"):
        print(render_tree(TREE_BUILDERS[label]()))
        print()
    return 0


def cmd_recovery(args: argparse.Namespace) -> int:
    label = args.tree or "V"
    tree = TREE_BUILDERS[label]()
    if args.component not in tree.components:
        print(
            f"error: component {args.component!r} not in tree {label} "
            f"(has {sorted(tree.components)})",
            file=sys.stderr,
        )
        return 2
    sinks = []
    if args.trace_out:
        from repro.obs.sinks import JsonlSink

        sinks.append(JsonlSink(args.trace_out))
    result = measure_recovery(
        tree,
        args.component,
        trials=args.trials,
        seed=args.seed,
        oracle=args.oracle,
        oracle_error_rate=args.error_rate,
        cure_set=args.cure,
        sinks=sinks,
    )
    stats = result.stats
    print(
        f"tree {label}, {result.oracle} oracle, {args.component} "
        f"(cure set {sorted(result.cure_set)}): "
        f"mean {stats.mean:.2f}s  std {stats.std:.2f}s  "
        f"min {stats.minimum:.2f}s  max {stats.maximum:.2f}s  n={stats.n}"
    )
    if result.phases:
        print()
        print(format_phase_breakdown(result.phases))
    for sink in sinks:
        sink.close()
        print(f"trace: {sink.written} events -> {args.trace_out}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    components = ["mbus", "ses", "str", "rtu", "fedrcom"]
    rows = []
    for label in ("I", "II"):
        results = measure_recovery_row(
            TREE_BUILDERS[label](),
            components,
            trials=args.trials,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )
        row: List[object] = [label] + [result.mean for result in results]
        rows.append(row)
    print(format_table(["tree"] + components, rows, title="Table 2 (measured)"))
    return 0


def cmd_table4(args: argparse.Namespace) -> int:
    matrix = run_recovery_matrix(
        TABLE4_ROWS,
        TABLE4_COLUMNS,
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cure_set_for=table4_cure_set,
    )
    rows = []
    for label, oracle in TABLE4_ROWS:
        row: List[object] = [f"{label}/{oracle}"]
        for component in TABLE4_COLUMNS:
            result = matrix.get((label, oracle, component))
            row.append(result.mean if result is not None else None)
        rows.append(row)
    print(
        format_table(
            ["tree/oracle"] + TABLE4_COLUMNS, rows, title="Table 4 (measured)"
        )
    )
    return 0


def cmd_availability(args: argparse.Namespace) -> int:
    labels = args.tree or ["I", "V"]
    suite = measure_availability_suite(
        labels,
        horizon_s=args.days * 86400.0,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    rows = []
    for label in labels:
        result = suite[label]
        rows.append(
            [
                label,
                f"{result.availability:.5f}",
                result.outages,
                f"{result.mean_outage_s:.1f}" if result.mean_outage_s else "—",
            ]
        )
    print(
        format_table(
            ["tree", "availability", "outages", "mean outage (s)"],
            rows,
            title=f"Availability over {args.days:g} days",
        )
    )
    if getattr(args, "phases", False):
        for label in labels:
            result = suite[label]
            if not result.phase_breakdown:
                continue
            print()
            print(
                format_phase_breakdown(
                    result.phase_breakdown,
                    title=f"Tree {label}: per-phase recovery breakdown",
                )
            )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.runner import campaign_seed, run_chaos_suite

    scenarios = args.scenario or sorted(SCENARIOS)
    labels = args.tree or ["I", "II", "III", "IV", "V"]
    if args.trace_out:
        if len(scenarios) != 1 or len(labels) != 1:
            print(
                "error: --trace-out needs exactly one --scenario and one "
                "--tree (the trace is a single station's event stream)",
                file=sys.stderr,
            )
            return 2
        from repro.chaos.engine import run_chaos
        from repro.obs.sinks import JsonlSink

        scenario, label = scenarios[0], labels[0]
        sink = JsonlSink(args.trace_out)
        # Same per-cell seed derivation as the campaign path, so a traced
        # rerun reproduces a cached campaign cell bit for bit.
        result = run_chaos(
            TREE_BUILDERS[label](),
            scenario,
            trials=args.trials,
            seed=campaign_seed(args.seed, "chaos", scenario, label),
            oracle=args.oracle,
            oracle_error_rate=args.error_rate,
            sinks=[sink],
        )
        print(f"trace: {sink.written} events -> {args.trace_out}")
        suite = {(scenario, label): result}
    else:
        suite = run_chaos_suite(
            scenarios,
            labels,
            trials=args.trials,
            seed=args.seed,
            oracle=args.oracle,
            oracle_error_rate=args.error_rate,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )

    def mean_mttr(scenario: str, label: str) -> Optional[float]:
        result = suite[(scenario, label)]
        return result.stats.mean if result.mttr_samples else None

    rows: List[List[object]] = []
    for scenario in scenarios:
        rows.append([scenario] + [mean_mttr(scenario, label) for label in labels])
    print(
        format_table(
            ["scenario"] + [f"tree {label}" for label in labels],
            rows,
            title=f"Chaos campaigns: mean MTTR (s), {args.trials} trial(s)/cell",
        )
    )
    if "I" in labels and len(labels) > 1:
        ratio_rows: List[List[object]] = []
        for scenario in scenarios:
            base = mean_mttr(scenario, "I")
            row: List[object] = [scenario]
            for label in labels:
                value = mean_mttr(scenario, label)
                row.append(
                    f"{base / value:.2f}x" if base and value else None
                )
            ratio_rows.append(row)
        print()
        print(
            format_table(
                ["scenario"] + [f"tree {label}" for label in labels],
                ratio_rows,
                title="Recovery speed-up vs tree I (higher is better)",
            )
        )
    print()
    for scenario in scenarios:
        injected = sum(suite[(scenario, label)].injected for label in labels)
        skipped = sum(suite[(scenario, label)].skipped for label in labels)
        episodes = sum(suite[(scenario, label)].episodes for label in labels)
        escalations = sum(suite[(scenario, label)].escalations for label in labels)
        interventions = sum(
            suite[(scenario, label)].operator_interventions for label in labels
        )
        print(
            f"{scenario}: {injected} injected ({skipped} skipped), "
            f"{episodes} episodes, {escalations} escalations, "
            f"{interventions} operator interventions"
        )

    violations = [
        (scenario, label, violation)
        for (scenario, label), result in sorted(suite.items())
        for violation in result.violations
    ]
    if violations:
        print()
        print(f"INVARIANT VIOLATIONS: {len(violations)}")
        for scenario, label, violation in violations[:20]:
            print(
                f"  [{scenario}/tree {label}] {violation['invariant']} "
                f"@{violation['time']:.3f}s {violation['subject']}: "
                f"{violation['detail']}"
            )
        if len(violations) > 20:
            print(f"  ... and {len(violations) - 20} more")
    else:
        print()
        print("invariants: all OK")

    if args.report:
        import json

        payload = {
            f"{scenario}/{label}": suite[(scenario, label)].to_payload()
            for scenario in scenarios
            for label in labels
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"report -> {args.report}")
    return 1 if violations else 0


def cmd_strategy_compare(args: argparse.Namespace) -> int:
    from repro.experiments.strategy_compare import (
        DEFAULT_TREES,
        run_strategy_suite,
    )

    strategies = args.strategy or sorted(strategy_names())
    kinds = args.kind or list(FAILURE_KINDS)
    labels = args.tree or list(DEFAULT_TREES)
    suite = run_strategy_suite(
        strategies,
        kinds,
        labels,
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    effects_suite = None
    if getattr(args, "user_effects", False):
        from repro.experiments.workload import run_workload_suite

        effects_suite = run_workload_suite(
            strategies,
            kinds,
            labels,
            failures=args.trials,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        )

    for label in labels:
        rows: List[List[object]] = []
        for strategy in strategies:
            for kind in kinds:
                cell = suite[(strategy, kind, label)]
                stats = cell.stats
                row: List[object] = [
                    strategy,
                    kind,
                    f"{stats.mean:.3f}",
                    f"{stats.maximum:.3f}",
                    cell.sessions_lost,
                    cell.sessions_restored,
                    cell.checkpoints_restored,
                    cell.messages_replayed,
                    len(cell.violations),
                ]
                if effects_suite is not None:
                    effects = effects_suite[(strategy, kind, label)].user_effects
                    row += [
                        f"{effects.goodput_rps:.1f}",
                        effects.lost_requests,
                        f"{100 * effects.session_loss_ratio:.2f}%",
                    ]
                rows.append(row)
        headers = [
            "strategy", "kind", "mean MTTR (s)", "max (s)",
            "ses lost", "restored", "ckpt", "replayed", "viol",
        ]
        if effects_suite is not None:
            headers += ["goodput", "req lost", "user loss"]
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Recovery strategies, tree {label}, "
                    f"{args.trials} trial(s)/cell"
                ),
            )
        )
        print()

    violations = [
        (key, violation)
        for key, cell in sorted(suite.items())
        for violation in cell.violations
    ]
    if violations:
        print(f"INVARIANT VIOLATIONS: {len(violations)}")
        for (strategy, kind, label), violation in violations[:20]:
            print(
                f"  [{strategy}/{kind}/tree {label}] {violation['invariant']} "
                f"@{violation['time']:.3f}s {violation['subject']}: "
                f"{violation['detail']}"
            )
        if len(violations) > 20:
            print(f"  ... and {len(violations) - 20} more")
    else:
        print("invariants: all OK")

    if args.report:
        import json

        payload = {
            f"{strategy}/{kind}/{label}": suite[(strategy, kind, label)].to_payload()
            for strategy in strategies
            for kind in kinds
            for label in labels
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"report -> {args.report}")
    return 1 if violations else 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.experiments.workload import (
        DEFAULT_SESSION_RATE,
        DEFAULT_TREES,
        format_workload_report,
        run_workload_suite,
    )

    # "classic" is the restart-only baseline station (no session store),
    # spelled "" inside the experiment layer.
    raw = args.strategy or ["classic", "restart", "microreboot"]
    strategies = ["" if name == "classic" else name for name in raw]
    kinds = args.kind or ["crash"]
    labels = args.tree or list(DEFAULT_TREES)
    rate = args.rate if args.rate is not None else DEFAULT_SESSION_RATE
    suite = run_workload_suite(
        strategies,
        kinds,
        labels,
        failures=args.failures,
        seed=args.seed,
        session_rate=rate,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    print(
        f"User-traffic cells: {rate:g} sessions/s, "
        f"{args.failures} fault(s)/cell\n"
    )
    print(format_workload_report(suite))

    violations = [
        (key, violation)
        for key, cell in sorted(suite.items())
        for violation in cell.violations
    ]
    if violations:
        print(f"\nINVARIANT VIOLATIONS: {len(violations)}")
        for (strategy, kind, label), violation in violations[:20]:
            print(
                f"  [{strategy or 'classic'}/{kind}/tree {label}] "
                f"{violation['invariant']} @{violation['time']:.3f}s "
                f"{violation['subject']}: {violation['detail']}"
            )
    else:
        print("\ninvariants: all OK")

    if args.report:
        import json

        payload = {
            f"{strategy or 'classic'}/{kind}/{label}":
                suite[(strategy, kind, label)].to_payload()
            for strategy in strategies
            for kind in kinds
            for label in labels
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"report -> {args.report}")
    return 1 if violations else 0


def cmd_detection_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.detection_ablation import run_detection_ablation

    label = args.tree or "V"
    drop_rates = tuple(args.drop) if args.drop else (0.0, 0.05, 0.15)
    policies = tuple(args.policy) if args.policy else ("fixed", "adaptive")
    results = run_detection_ablation(
        TREE_BUILDERS[label](),
        drop_rates=drop_rates,
        policies=policies,
        failures=args.failures,
        seed=args.seed,
    )
    rows: List[List[object]] = []
    for drop in drop_rates:
        for policy in policies:
            cell = results[(drop, policy)]
            rows.append(
                [
                    f"{drop:.2f}",
                    policy,
                    cell.false_positives,
                    cell.retractions,
                    cell.detections,
                    f"{cell.mean_detection_latency:.3f}"
                    if cell.detections else "—",
                    cell.late_detections,
                    f"{cell.mttr.mean:.3f}" if cell.mttr_samples else "—",
                    cell.escalations,
                    cell.operator_interventions,
                ]
            )
    print(
        format_table(
            [
                "drop", "policy", "FP", "retracted", "detected",
                "mean det (s)", "late", "mean MTTR (s)", "escal", "operator",
            ],
            rows,
            title=(
                f"Detection accuracy vs MTTR, tree {label}, "
                f"{args.failures} failure(s)/cell"
            ),
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.sinks import read_jsonl

    try:
        records = read_jsonl(args.path)
        shown = 0
        for record in records:
            if args.kind and record.get("kind") not in args.kind:
                continue
            if args.source and record.get("source") not in args.source:
                continue
            time = float(record.get("t", 0.0))
            if args.since is not None and time < args.since:
                continue
            if args.until is not None and time > args.until:
                continue
            payload = " ".join(
                f"{k}={v!r}" for k, v in sorted(record.get("data", {}).items())
            )
            severity = record.get("severity", "info")
            line = (
                f"[{time:12.6f}] {severity:7} {record.get('source', ''):18} "
                f"{record.get('kind', '')} {payload}"
            )
            print(line.rstrip())
            shown += 1
            if args.limit is not None and shown >= args.limit:
                break
    except OSError as error:
        print(f"error: cannot read trace {args.path!r}: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: malformed trace {args.path!r}: {error}", file=sys.stderr)
        return 2
    return 0


def cmd_passes(args: argparse.Namespace) -> int:
    labels = args.tree or ["I", "V"]
    rows = []
    for label in labels:
        result = run_pass_campaign(
            TREE_BUILDERS[label](), days=args.days, seed=args.seed
        )
        summary = result.summary
        rows.append(
            [
                label,
                summary.passes,
                f"{100 * summary.loss_fraction:.2f}%",
                summary.broken_links,
                summary.whole_passes_lost,
            ]
        )
    print(
        format_table(
            ["tree", "passes", "data lost", "links broken", "whole passes lost"],
            rows,
            title=f"Pass campaign over {args.days:g} days (§5.2)",
        )
    )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.experiments.fleet import run_fleet_suite

    sizes = args.size or [16, 64]
    intervals = args.wave_interval if args.wave_interval is not None else [0.0, 150.0]
    if args.shards is not None:
        # Sharding is an execution knob (bit-identical results), threaded
        # through the environment so it can never enter a cell spec.
        os.environ["REPRO_FLEET_SHARDS"] = str(args.shards)
    suite = run_fleet_suite(
        sizes,
        tree=args.tree or "V",
        horizon_s=args.horizon,
        seed=args.seed,
        wave_intervals=intervals,
        wave_drop=args.wave_drop,
        request_rate=args.request_rate,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    with_effects = args.request_rate > 0
    rows = []
    for size in sizes:
        for interval in intervals:
            result = suite[(size, interval)]
            regime = "independent" if interval == 0 else f"wave/{interval:g}s"
            row = [
                size,
                regime,
                f"{result.availability:.5f}",
                f"{result.mean_mttr:.2f}" if result.mean_mttr else "—",
                result.outages,
                result.sessions_lost,
                result.ground.get("waves", 0),
                "yes" if result.ok else "NO",
            ]
            if with_effects:
                from repro.workload.effects import UserEffects

                payload = result.user_effects
                if payload is None:
                    row += ["—", "—", "—"]
                else:
                    effects = UserEffects.from_payload(payload)
                    row += [
                        f"{effects.goodput_rps:.1f}",
                        effects.lost_requests,
                        f"{100 * effects.session_loss_ratio:.2f}%",
                    ]
            rows.append(row)
    headers = [
        "stations", "failures", "availability", "MTTR (s)",
        "outages", "sessions lost", "waves", "invariants",
    ]
    if with_effects:
        headers += ["goodput", "req lost", "user loss"]
    print(
        format_table(
            headers,
            rows,
            title=f"Fleet campaign, tree {args.tree or 'V'}, "
            f"{args.horizon:g}s horizon",
        )
    )
    if args.report:
        import json

        payload = {
            f"{size}:{interval:g}": result.to_payload()
            for (size, interval), result in suite.items()
        }
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\nfull results written to {args.report}")
    broken = [key for key, result in suite.items() if not result.ok]
    if broken:
        cells = ", ".join(f"size={s} wave={w:g}" for s, w in sorted(broken))
        print(f"\nINVARIANT VIOLATIONS in: {cells}", file=sys.stderr)
        return 1
    return 0


COMMANDS = {
    "trees": cmd_trees,
    "recovery": cmd_recovery,
    "table2": cmd_table2,
    "table4": cmd_table4,
    "availability": cmd_availability,
    "passes": cmd_passes,
    "chaos": cmd_chaos,
    "strategy-compare": cmd_strategy_compare,
    "workload": cmd_workload,
    "detection-ablation": cmd_detection_ablation,
    "fleet": cmd_fleet,
    "trace": cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir and os.path.exists(cache_dir) and not os.path.isdir(cache_dir):
        print(
            f"error: --cache-dir {cache_dir!r} exists and is not a directory",
            file=sys.stderr,
        )
        return 2
    command = COMMANDS[args.command]
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        code = profiler.runcall(command, args)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)
        return code
    return command(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
