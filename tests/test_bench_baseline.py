"""The bench artifact's baseline stays flat across chained runs.

``tools/bench.py --baseline PREV --output NEXT`` embeds the previous
artifact so one file records a before/after pair.  The bug class under
test: embedding the previous *file* verbatim nests recursively — run N
carries run N-1 carrying run N-2 ... — growing the artifact without bound
and burying the one comparison that matters.  The contract is depth-1:
the embedded baseline holds only the previous run's own ``generated`` /
``host`` / ``metrics``, never its own ``baseline``.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

import bench  # noqa: E402


@pytest.fixture
def fast_bench(monkeypatch):
    """Stub the actual measurements: these tests are about the artifact."""
    monkeypatch.setattr(bench, "bench_kernel_events", lambda **kw: 1_000_000.0)
    monkeypatch.setattr(bench, "bench_bus_roundtrips", lambda **kw: 100_000.0)
    monkeypatch.setattr(bench, "bench_bus_mixed", lambda **kw: 50_000.0)
    monkeypatch.setattr(bench, "bench_station_boot", lambda **kw: 0.01)
    monkeypatch.setattr(bench, "bench_station_snapshot", lambda **kw: 0.002)
    monkeypatch.setattr(bench, "bench_fleet", lambda **kw: (20.0, 200_000.0))
    monkeypatch.setattr(bench, "bench_fleet_setup", lambda **kw: (0.008, 0.002))
    monkeypatch.setattr(bench, "bench_workload", lambda **kw: 5_000.0)


def _run(args):
    assert bench.main(args) == 0


def test_three_chained_runs_stay_depth_one(fast_bench, tmp_path, capsys):
    paths = [str(tmp_path / f"BENCH_{i}.json") for i in (1, 2, 3)]
    _run(["--output", paths[0]])
    _run(["--baseline", paths[0], "--output", paths[1]])
    _run(["--baseline", paths[1], "--output", paths[2]])

    with open(paths[2], "r", encoding="utf-8") as fh:
        third = json.load(fh)
    baseline = third["baseline"]
    assert set(baseline) == {"generated", "host", "metrics"}
    assert "baseline" not in baseline  # depth-1, not recursive
    # The carried metrics are the *previous* run's own numbers.
    with open(paths[1], "r", encoding="utf-8") as fh:
        second = json.load(fh)
    assert baseline["metrics"] == second["metrics"]


def test_first_run_has_no_baseline_key(fast_bench, tmp_path, capsys):
    out = str(tmp_path / "BENCH_1.json")
    _run(["--output", out])
    with open(out, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    assert "baseline" not in payload
    assert set(payload) == {"generated", "host", "metrics"}


def test_metrics_cover_every_hot_path(fast_bench, tmp_path, capsys):
    out = str(tmp_path / "BENCH.json")
    _run(["--output", out])
    with open(out, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    assert set(payload["metrics"]) == {
        "kernel_events_per_sec",
        "bus_roundtrips_per_sec",
        "bus_mixed_msgs_per_sec",
        "station_boot_seconds",
        "station_snapshot_restore_seconds",
        "fleet_stations_per_sec",
        "fleet_events_per_sec",
        "fleet_station_boot_seconds",
        "fleet_station_setup_seconds",
        "workload_requests_per_sec",
    }


def test_smoke_gates_per_metric(fast_bench, tmp_path, capsys):
    baseline_path = str(tmp_path / "BENCH.json")
    _run(["--output", baseline_path])
    # Parity run: every metric within budget.
    assert bench.main(["--smoke", "--baseline", baseline_path]) == 0
    # Regress one gated metric past its budget; the others stay at parity.
    # (Direct assignment: the fast_bench monkeypatch still restores the
    # real function at teardown.)
    bench.bench_bus_mixed = lambda **kw: 50_000.0 * 0.5  # 50% drop > 20% budget
    monkey_env = os.environ.pop("REPRO_BENCH_SMOKE_SKIP", None)
    try:
        assert bench.main(["--smoke", "--baseline", baseline_path]) == 1
        out = capsys.readouterr().out
        assert "bus_mixed_msgs_per_sec" in out and "FAIL" in out
    finally:
        if monkey_env is not None:
            os.environ["REPRO_BENCH_SMOKE_SKIP"] = monkey_env


def test_smoke_skip_ignores_timing_but_not_breakage(fast_bench, tmp_path, capsys, monkeypatch):
    baseline_path = str(tmp_path / "BENCH.json")
    _run(["--output", baseline_path])
    monkeypatch.setenv("REPRO_BENCH_SMOKE_SKIP", "1")
    # A pure timing regression is reported but ignored under the skip knob.
    monkeypatch.setattr(bench, "bench_bus_mixed", lambda **kw: 50_000.0 * 0.5)
    assert bench.main(["--smoke", "--baseline", baseline_path]) == 0
    assert "REGRESSION ignored" in capsys.readouterr().out
    # A *broken* benchmark still fails: the skip knob is for noisy clocks,
    # not for masking errors.
    def boom(**kw):
        raise RuntimeError("bench exploded")
    monkeypatch.setattr(bench, "bench_workload", boom)
    assert bench.main(["--smoke", "--baseline", baseline_path]) == 1
    out = capsys.readouterr().out
    assert "ERROR" in out and "not skippable" in out


def test_smoke_missing_baseline_metric_fails(fast_bench, tmp_path, capsys, monkeypatch):
    baseline_path = str(tmp_path / "BENCH.json")
    _run(["--output", baseline_path])
    with open(baseline_path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    del payload["metrics"]["workload_requests_per_sec"]
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    monkeypatch.setenv("REPRO_BENCH_SMOKE_SKIP", "1")
    assert bench.main(["--smoke", "--baseline", baseline_path]) == 1
    out = capsys.readouterr().out
    assert "MISSING from baseline" in out
