"""Tests for the shared enums and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import OracleGuess, ProcessState, Severity, Signal


def test_process_state_terminal_classification():
    assert ProcessState.FAILED.is_terminal
    assert ProcessState.STOPPED.is_terminal
    assert not ProcessState.RUNNING.is_terminal
    assert not ProcessState.STARTING.is_terminal
    assert not ProcessState.NEW.is_terminal


def test_process_state_alive_only_when_running():
    alive = [state for state in ProcessState if state.is_alive]
    assert alive == [ProcessState.RUNNING]


def test_signal_values_match_posix_names():
    assert str(Signal.KILL) == "SIGKILL"
    assert str(Signal.TERM) == "SIGTERM"


def test_oracle_guess_labels():
    assert str(OracleGuess.TOO_LOW) == "guess-too-low"
    assert str(OracleGuess.TOO_HIGH) == "guess-too-high"
    assert str(OracleGuess.MINIMAL) == "minimal"


def test_severity_str():
    assert str(Severity.WARNING) == "warning"


def test_every_library_error_derives_from_repro_error():
    exception_types = [
        obj
        for obj in vars(errors).values()
        if isinstance(obj, type) and issubclass(obj, Exception)
    ]
    for exception_type in exception_types:
        assert issubclass(exception_type, errors.ReproError), exception_type


def test_invalid_transition_error_carries_context():
    error = errors.InvalidTransitionError("fedr", "running", "starting")
    assert error.process_name == "fedr"
    assert error.current_state == "running"
    assert error.requested_state == "starting"
    assert "fedr" in str(error)


def test_restart_budget_exceeded_carries_context():
    error = errors.RestartBudgetExceeded("R_rtu", attempts=7, budget=6)
    assert error.cell_id == "R_rtu"
    assert error.attempts == 7
    assert error.budget == 6
    assert "escalating to operator" in str(error)


def test_xml_parse_error_position_default():
    assert errors.XmlParseError("oops").position == -1
    assert errors.XmlParseError("oops", 12).position == 12


def test_catching_the_family_root():
    with pytest.raises(errors.ReproError):
        raise errors.ChannelClosedError("closed")
    with pytest.raises(errors.TransportError):
        raise errors.AddressInUseError("in use")
    with pytest.raises(errors.TreeError):
        raise errors.UnknownCellError("missing")
