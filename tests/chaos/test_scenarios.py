"""Tests for the chaos scenario catalogue and plan building."""

import random

import pytest

from repro.chaos.scenarios import (
    SCENARIOS,
    Injection,
    Scenario,
    ScenarioPlan,
    compose,
    get_scenario,
)

NON_SPLIT = ("mbus", "fedrcom", "ses", "str", "rtu")
SPLIT = ("mbus", "fedr", "pbcom", "ses", "str", "rtu")


def test_catalogue_names():
    assert set(SCENARIOS) == {
        "cascade", "storm", "flapping", "mixed",
        "lossy", "partition", "zombie-fleet",
        "store-outage", "rogue-oracle-crash",
    }
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.description


def test_get_scenario_unknown_lists_choices():
    with pytest.raises(KeyError, match="cascade"):
        get_scenario("nope")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("components", [NON_SPLIT, SPLIT])
def test_plans_are_valid_for_both_generations(name, components):
    plan = SCENARIOS[name].build(random.Random(9), components)
    assert plan.injections
    assert plan.horizon > 0
    times = [injection.at for injection in plan.injections]
    assert times == sorted(times)  # build() sorts
    assert all(at >= 0.0 for at in times)
    assert max(times) < plan.horizon  # recovery tail fits inside the horizon
    for group in plan.groups:
        assert len(group.members) >= 2


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_same_rng_same_plan(name):
    scenario = SCENARIOS[name]
    assert scenario.build(random.Random(7), SPLIT) == scenario.build(
        random.Random(7), SPLIT
    )
    assert scenario.build(random.Random(7), SPLIT) != scenario.build(
        random.Random(8), SPLIT
    )


def test_storm_targets_the_radio_proxy():
    split_targets = {
        i.component for i in SCENARIOS["storm"].build(random.Random(1), SPLIT).injections
    }
    non_split_targets = {
        i.component
        for i in SCENARIOS["storm"].build(random.Random(1), NON_SPLIT).injections
    }
    assert "pbcom" in split_targets and "fedrcom" not in split_targets
    assert "fedrcom" in non_split_targets and "pbcom" not in non_split_targets


def test_mixed_uses_tree_appropriate_cure_set():
    split_plan = SCENARIOS["mixed"].build(random.Random(1), SPLIT)
    joint = [i for i in split_plan.injections if i.cure_set is not None]
    assert joint and joint[0].cure_set == ("fedr", "pbcom")
    non_split_plan = SCENARIOS["mixed"].build(random.Random(1), NON_SPLIT)
    joint = [i for i in non_split_plan.injections if i.cure_set is not None]
    assert joint and joint[0].cure_set == ("ses", "str")


def test_build_rejects_negative_times():
    bad = Scenario(
        "bad",
        "injects before the trial starts",
        lambda rng, components: ScenarioPlan(
            injections=(Injection(at=-1.0, component="rtu"),)
        ),
    )
    with pytest.raises(ValueError, match="before trial start"):
        bad.build(random.Random(1), SPLIT)


def test_compose_offsets_and_dedupes():
    combo = compose("combo", [SCENARIOS["cascade"], SCENARIOS["cascade"]], gap=20.0)
    plan = combo.build(random.Random(3), SPLIT)
    single = SCENARIOS["cascade"].build(random.Random(3), SPLIT)
    assert len(plan.injections) == 2 * len(single.injections)
    # Second copy's injections all land after the first copy's horizon.
    second_half = plan.injections[len(single.injections) :]
    assert all(i.at >= single.horizon + 20.0 for i in second_half)
    # The shared-fate group appears once, not twice.
    assert len(plan.groups) == 1
    assert plan.horizon == 2 * (single.horizon + 20.0)


def test_compose_is_deterministic():
    combo = compose("combo", [SCENARIOS["storm"], SCENARIOS["mixed"]])
    assert combo.build(random.Random(5), SPLIT) == combo.build(random.Random(5), SPLIT)


def test_compose_rejects_empty():
    with pytest.raises(ValueError):
        compose("empty", [])


# ----------------------------------------------------------------------
# network ops (the lossy fault fabric riding on scenario plans)
# ----------------------------------------------------------------------

from repro.chaos.scenarios import NetOp


def test_netop_validation():
    with pytest.raises(ValueError, match="kind"):
        NetOp(at=0.0, kind="teleport")
    with pytest.raises(ValueError, match="name both"):
        NetOp(at=0.0, kind="partition", a="fd", b="*", duration=5.0)
    with pytest.raises(ValueError, match="duration"):
        NetOp(at=0.0, kind="partition", a="fd", b="mbus")


def test_net_ops_require_uses_network_flag():
    bad = Scenario(
        "bad-net",
        "plans net ops without declaring a network",
        lambda rng, components: ScenarioPlan(
            injections=(Injection(at=1.0, component="rtu"),),
            net_ops=(NetOp(at=0.5, drop=0.5),),
        ),
    )
    with pytest.raises(ValueError, match="uses_network"):
        bad.build(random.Random(1), SPLIT)


def test_lossy_scenario_declares_its_needs():
    scenario = SCENARIOS["lossy"]
    assert scenario.uses_network
    overrides = dict(scenario.station_overrides)
    assert overrides["timeout_policy"] == "adaptive"
    plan = scenario.build(random.Random(2), SPLIT)
    assert plan.net_ops and plan.net_ops[0].kind == "degrade"
    assert all(op.at >= 0 for op in plan.net_ops)


def test_partition_scenario_names_both_endpoints():
    plan = SCENARIOS["partition"].build(random.Random(2), SPLIT)
    partitions = [op for op in plan.net_ops if op.kind == "partition"]
    assert partitions
    assert all(op.a != "*" and op.b != "*" for op in partitions)
    assert all(op.duration and op.duration > 0 for op in partitions)


def test_zombie_fleet_is_pure_fail_slow():
    plan = SCENARIOS["zombie-fleet"].build(random.Random(2), SPLIT)
    assert not SCENARIOS["zombie-fleet"].uses_network
    kinds = {injection.kind for injection in plan.injections}
    assert kinds <= {"hang", "zombie"}


def test_compose_offsets_net_ops_and_unions_overrides():
    combo = compose("net-combo", [SCENARIOS["lossy"], SCENARIOS["lossy"]], gap=10.0)
    assert combo.uses_network
    assert dict(combo.station_overrides)["timeout_policy"] == "adaptive"
    plan = combo.build(random.Random(4), SPLIT)
    single = SCENARIOS["lossy"].build(random.Random(4), SPLIT)
    assert len(plan.net_ops) == 2 * len(single.net_ops)
    second_half = plan.net_ops[len(single.net_ops):]
    assert all(op.at >= single.horizon + 10.0 for op in second_half)
