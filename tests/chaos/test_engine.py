"""Tests for the chaos trial loop, determinism, and campaign integration."""

import json

import pytest

from repro.chaos.engine import ChaosResult, run_chaos
from repro.chaos.scenarios import Injection, Scenario, ScenarioPlan
from repro.experiments.runner import run_chaos_suite
from repro.mercury.config import PAPER_CONFIG
from repro.mercury.trees import TREE_BUILDERS
from repro.obs.sinks import JsonlSink


def payload_json(result):
    return json.dumps(result.to_payload(), sort_keys=True)


def test_cascade_on_tree_v_recovers_cleanly():
    result = run_chaos(TREE_BUILDERS["V"](), "cascade", trials=1, seed=42)
    assert result.ok
    assert result.injected == 2 and result.skipped == 0
    # The shared-fate group fells str (and re-fells peers), so there are
    # more episodes than direct injections.
    assert result.episodes > result.injected
    assert len(result.mttr_samples) == result.episodes
    assert all(sample > 0 for sample in result.mttr_samples)
    assert result.cured >= result.episodes
    assert result.stats.n == result.episodes


def test_scenario_accepts_instances_and_unknown_names_raise():
    with pytest.raises(KeyError):
        run_chaos(TREE_BUILDERS["V"](), "nope")


def test_same_seed_is_byte_identical(tmp_path):
    traces = []
    payloads = []
    for run in (1, 2):
        path = tmp_path / f"run{run}.jsonl"
        result = run_chaos(
            TREE_BUILDERS["V"](), "cascade", trials=1, seed=42,
            sinks=[JsonlSink(str(path))],
        )
        traces.append(path.read_bytes())
        payloads.append(payload_json(result))
    assert traces[0] == traces[1]
    assert payloads[0] == payloads[1]
    assert traces[0]  # non-empty: the sink actually streamed events


def test_different_seeds_differ():
    a = run_chaos(TREE_BUILDERS["V"](), "cascade", trials=1, seed=1)
    b = run_chaos(TREE_BUILDERS["V"](), "cascade", trials=1, seed=2)
    assert a.mttr_samples != b.mttr_samples


def test_multi_trial_run_accumulates():
    result = run_chaos(TREE_BUILDERS["V"](), "storm", trials=2, seed=5)
    assert result.ok
    assert result.trials == 2
    assert result.injected == 8  # 4 storm injections per trial


def test_payload_roundtrip():
    result = run_chaos(TREE_BUILDERS["IV"](), "mixed", trials=1, seed=9)
    clone = ChaosResult.from_payload(
        json.loads(json.dumps(result.to_payload()))
    )
    assert payload_json(clone) == payload_json(result)


def test_flapping_hits_the_supervisor_pair():
    result = run_chaos(TREE_BUILDERS["V"](), "flapping", trials=1, seed=3)
    assert result.ok
    assert result.skipped == 0  # fd/rec exist under the full supervisor
    abstract = run_chaos(
        TREE_BUILDERS["V"](), "flapping", trials=1, seed=3, supervisor="abstract"
    )
    assert abstract.ok
    assert abstract.skipped == 2  # no fd/rec processes to shoot


def test_operator_intervention_path():
    """With a one-restart budget and a naive oracle, a joint-cure failure
    exhausts the supervisor; the engine's operator fallback restores the
    station and the run still terminates cleanly."""
    stubborn = Scenario(
        "stubborn",
        "one persistent joint failure under a starved budget",
        lambda rng, components: ScenarioPlan(
            injections=(
                Injection(at=5.0, component="pbcom", cure_set=("fedr", "pbcom"),
                          kind="persistent"),
            ),
            horizon=40.0,
        ),
    )
    # Tree III restarts pbcom alone for a pbcom failure (no consolidated
    # [fedr, pbcom] cell), so the naive recommendation cannot cure it and
    # the one-restart budget blocks escalation.
    result = run_chaos(
        TREE_BUILDERS["III"](),
        stubborn,
        trials=1,
        seed=4,
        oracle="naive",
        config=PAPER_CONFIG.with_overrides(restart_budget=1),
    )
    assert result.operator_interventions == 1
    assert result.escalations >= 1


def test_suite_serial_equals_parallel(tmp_path):
    kwargs = dict(trials=1, seed=6)
    serial = run_chaos_suite(["cascade"], ["I", "V"], jobs=1, **kwargs)
    parallel = run_chaos_suite(["cascade"], ["I", "V"], jobs=2, **kwargs)
    assert set(serial) == {("cascade", "I"), ("cascade", "V")}
    for key in serial:
        assert payload_json(serial[key]) == payload_json(parallel[key])


def test_suite_cache_roundtrip(tmp_path):
    cache = str(tmp_path / "cache")
    first = run_chaos_suite(["mixed"], ["V"], trials=1, seed=8, cache_dir=cache)
    cached = run_chaos_suite(["mixed"], ["V"], trials=1, seed=8, cache_dir=cache)
    assert payload_json(first[("mixed", "V")]) == payload_json(cached[("mixed", "V")])
    # A different seed must miss the cache, not replay the old result.
    other = run_chaos_suite(["mixed"], ["V"], trials=1, seed=9, cache_dir=cache)
    assert payload_json(other[("mixed", "V")]) != payload_json(first[("mixed", "V")])


def test_suite_seeds_are_cell_independent():
    wide = run_chaos_suite(["cascade", "mixed"], ["V"], trials=1, seed=6)
    narrow = run_chaos_suite(["mixed"], ["V"], trials=1, seed=6)
    assert payload_json(wide[("mixed", "V")]) == payload_json(narrow[("mixed", "V")])


# ----------------------------------------------------------------------
# the network-faulted and fail-slow scenarios
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scenario", ["lossy", "partition", "zombie-fleet"])
def test_new_scenarios_run_clean_and_replay(scenario):
    result = run_chaos(TREE_BUILDERS["V"](), scenario, trials=1, seed=7)
    assert result.ok, result.violations
    assert result.violations == []
    replay = run_chaos(TREE_BUILDERS["V"](), scenario, trials=1, seed=7)
    assert payload_json(replay) == payload_json(result)


def test_lossy_exercises_the_fabric_and_the_guard():
    result = run_chaos(TREE_BUILDERS["V"](), "lossy", trials=1, seed=7)
    assert result.net_dropped > 0
    assert result.net_duplicated > 0
    # The adaptive detector both erred and corrected itself under loss.
    assert result.false_positives > 0
    assert result.retractions > 0


def test_zombie_fleet_detects_without_a_network():
    result = run_chaos(TREE_BUILDERS["V"](), "zombie-fleet", trials=1, seed=7)
    assert result.ok
    assert result.net_dropped == 0
    assert result.episodes >= 3  # every fail-slow injection was unmasked


def test_payload_roundtrip_carries_accuracy_counters():
    result = run_chaos(TREE_BUILDERS["V"](), "lossy", trials=1, seed=7)
    clone = ChaosResult.from_payload(json.loads(json.dumps(result.to_payload())))
    assert clone.false_positives == result.false_positives
    assert clone.retractions == result.retractions
    assert clone.net_dropped == result.net_dropped
    assert clone.net_duplicated == result.net_duplicated


def test_old_payloads_without_accuracy_counters_still_load():
    result = run_chaos(TREE_BUILDERS["IV"](), "mixed", trials=1, seed=9)
    payload = result.to_payload()
    for key in ("false_positives", "retractions", "net_dropped", "net_duplicated"):
        payload.pop(key)
    clone = ChaosResult.from_payload(payload)
    assert clone.false_positives == 0 and clone.net_dropped == 0
