"""Tests for the live invariant checker (synthetic streams + seeded bug)."""

import pytest

from repro.chaos.invariants import InvariantChecker
from repro.core.oracle import Oracle
from repro.mercury.station import MercuryStation
from repro.mercury.trees import TREE_BUILDERS
from repro.obs import events as ev
from repro.sim.trace import TraceRecord


def record(time, kind, source="rec", **data):
    return TraceRecord(time=time, source=source, kind=kind, data=data)


@pytest.fixture
def tree():
    return TREE_BUILDERS["V"]()


@pytest.fixture
def checker(tree):
    return InvariantChecker(tree, max_restart_duration=100.0)


def feed(checker, *records):
    for item in records:
        checker.accept(item)


def order(tree, cell, t=10.0, **extra):
    return record(
        t,
        ev.RESTART_ORDERED,
        cell=cell,
        components=tuple(sorted(tree.components_restarted_by(cell))),
        **extra,
    )


def invariants_of(checker):
    return [violation.invariant for violation in checker.violations]


def test_clean_restart_cycle_has_no_violations(tree, checker):
    cell = tree.cell_of_component("rtu")
    feed(
        checker,
        record(5.0, ev.FAILURE_INJECTED, source="faults", component="rtu",
               failure_id=1, cure_set=("rtu",), failure_kind="chaos"),
        record(5.0, ev.PROCESS_FAILED, source="proc.rtu", name="rtu"),
        record(5.5, ev.DETECTION, source="fd", component="rtu"),
        order(tree, cell, t=6.0, trigger="rtu", oracle_cell=cell),
        record(9.0, ev.PROCESS_READY, source="proc.rtu", name="rtu"),
        record(9.0, ev.FAILURE_CURED, source="faults", component="rtu",
               failure_id=1),
        record(9.1, ev.RESTART_COMPLETE, source="rec", cell=cell,
               components=("rtu",)),
    )
    checker.finalize(20.0)
    assert checker.ok
    assert checker.violations == []


def test_batch_mismatch_flagged(tree, checker):
    cell = tree.cell_of_component("rtu")
    feed(
        checker,
        record(6.0, ev.RESTART_ORDERED, cell=cell, components=("rtu", "ses")),
    )
    assert "batch-mismatch" in invariants_of(checker)


def test_unknown_cell_flagged(checker):
    feed(checker, record(6.0, ev.RESTART_ORDERED, cell="no-such-cell",
                         components=("rtu",)))
    assert "batch-mismatch" in invariants_of(checker)


def test_trigger_outside_batch_flagged(tree, checker):
    wrong = tree.cell_of_component("ses")
    assert "rtu" not in tree.components_restarted_by(wrong)  # precondition
    feed(checker, order(tree, wrong, trigger="rtu"))
    assert "trigger-containment" in invariants_of(checker)


def test_ordered_cell_off_oracle_path_flagged(tree, checker):
    recommended = tree.cell_of_component("rtu")
    sideways = tree.cell_of_component("ses")
    assert not tree.is_ancestor(sideways, recommended)  # precondition
    feed(checker, order(tree, sideways, trigger="ses", oracle_cell=recommended))
    assert "oracle-subtree" in invariants_of(checker)


def test_escalation_along_oracle_path_is_legal(tree, checker):
    recommended = tree.cell_of_component("rtu")
    feed(
        checker,
        order(tree, recommended, t=6.0, trigger="rtu", oracle_cell=recommended),
        record(7.0, ev.RESTART_COMPLETE, cell=recommended,
               components=tuple(sorted(tree.components_restarted_by(recommended)))),
        order(tree, tree.root.cell_id, t=12.0, trigger="rtu",
              oracle_cell=recommended),
    )
    assert "oracle-subtree" not in invariants_of(checker)


def test_overlapping_orders_from_one_source_flagged(tree, checker):
    cell = tree.cell_of_component("rtu")
    feed(
        checker,
        order(tree, cell, t=6.0),
        order(tree, cell, t=8.0),  # previous restart never completed
    )
    assert "stuck-restart" in invariants_of(checker)


def test_slow_restart_flagged(tree, checker):
    cell = tree.cell_of_component("rtu")
    feed(
        checker,
        order(tree, cell, t=6.0),
        record(200.0, ev.RESTART_COMPLETE, cell=cell,
               components=tuple(sorted(tree.components_restarted_by(cell)))),
    )
    assert "stuck-restart" in invariants_of(checker)


def test_open_restart_at_finalize_flagged(tree, checker):
    feed(checker, order(tree, tree.cell_of_component("rtu"), t=6.0))
    checker.finalize(500.0)
    assert "stuck-restart" in invariants_of(checker)


def test_delayed_downtime_flagged(checker):
    feed(
        checker,
        record(5.0, ev.FAILURE_INJECTED, source="faults", component="rtu",
               failure_id=1, cure_set=("rtu",), failure_kind="chaos"),
        record(7.5, ev.PROCESS_FAILED, source="proc.rtu", name="rtu"),
    )
    assert "injection-no-downtime" in invariants_of(checker)


def test_injection_without_downtime_flagged_at_finalize(checker):
    feed(
        checker,
        record(5.0, ev.FAILURE_INJECTED, source="faults", component="rtu",
               failure_id=1, cure_set=("rtu",), failure_kind="chaos"),
    )
    checker.finalize(50.0)
    assert "injection-no-downtime" in invariants_of(checker)


def test_injection_onto_down_component_is_legal(checker):
    feed(
        checker,
        record(4.0, ev.PROCESS_FAILED, source="proc.rtu", name="rtu"),
        record(5.0, ev.FAILURE_INJECTED, source="faults", component="rtu",
               failure_id=1, cure_set=("rtu",), failure_kind="chaos"),
        record(9.0, ev.PROCESS_READY, source="proc.rtu", name="rtu"),
        record(9.0, ev.FAILURE_CURED, source="faults", component="rtu",
               failure_id=1),
    )
    checker.finalize(20.0)
    assert "injection-no-downtime" not in invariants_of(checker)


def test_unterminated_failure_flagged(checker):
    feed(
        checker,
        record(5.0, ev.FAILURE_INJECTED, source="faults", component="rtu",
               failure_id=1, cure_set=("rtu",), failure_kind="chaos"),
        record(5.0, ev.PROCESS_FAILED, source="proc.rtu", name="rtu"),
    )
    checker.finalize(100.0)
    found = invariants_of(checker)
    assert "unterminated-failure" in found
    assert "component-down-at-end" in found


def test_escalated_component_exempt_from_liveness(checker):
    feed(
        checker,
        record(5.0, ev.FAILURE_INJECTED, source="faults", component="rtu",
               failure_id=1, cure_set=("rtu",), failure_kind="chaos"),
        record(5.0, ev.PROCESS_FAILED, source="proc.rtu", name="rtu"),
        record(60.0, ev.OPERATOR_ESCALATION, component="rtu",
               reason="budget exhausted"),
    )
    checker.finalize(100.0)
    found = invariants_of(checker)
    assert "unterminated-failure" not in found
    assert "component-down-at-end" not in found


def test_finalize_is_idempotent(checker):
    feed(
        checker,
        record(5.0, ev.FAILURE_INJECTED, source="faults", component="rtu",
               failure_id=1, cure_set=("rtu",), failure_kind="chaos"),
        record(5.0, ev.PROCESS_FAILED, source="proc.rtu", name="rtu"),
    )
    checker.finalize(100.0)
    count = len(checker.violations)
    checker.finalize(100.0)
    assert len(checker.violations) == count


def test_violation_payloads_are_json_safe(tree, checker):
    feed(checker, order(tree, tree.cell_of_component("ses"), trigger="rtu"))
    payloads = checker.violation_payloads()
    assert payloads
    assert set(payloads[0]) == {"invariant", "time", "subject", "detail"}


# ----------------------------------------------------------------------
# the seeded-bug regression: a rogue oracle restarting outside the
# failed component's subtree must be flagged by trigger-containment
# ----------------------------------------------------------------------


class RogueOracle(Oracle):
    """Always recommends a fixed cell, regardless of where the failure is."""

    def __init__(self, cell_id: str) -> None:
        self.cell_id = cell_id

    def recommend(self, tree, failed_component: str) -> str:
        return self.cell_id

    def describe(self) -> str:
        return "rogue"


def test_rogue_oracle_detected_end_to_end():
    tree = TREE_BUILDERS["V"]()
    wrong = tree.cell_of_component("ses")
    assert "rtu" not in tree.components_restarted_by(wrong)  # precondition
    station = MercuryStation(
        tree=tree, seed=11, oracle=RogueOracle(wrong), supervisor="full"
    )
    checker = InvariantChecker(tree)
    station.kernel.trace.add_sink(checker)
    station.boot()
    station.injector.inject_simple("rtu")
    # The wrong restart cannot cure rtu; escalation eventually covers it.
    station.run_for(120.0)
    checker.finalize(station.kernel.now)
    flagged = [v for v in checker.violations if v.invariant == "trigger-containment"]
    assert flagged
    assert flagged[0].subject == "rtu"
    assert wrong in flagged[0].detail
