"""Tests for the startup-contention pool (batch and shared modes)."""

import pytest

from repro.errors import ProcessError
from repro.procmgr.contention import StartupContention


def complete_recorder(kernel):
    done = []

    def make(name):
        return lambda: done.append((name, kernel.now))

    return done, make


def test_single_startup_uncontended_batch(kernel):
    pool = StartupContention(kernel, coefficient=0.1, mode="batch")
    done, make = complete_recorder(kernel)
    pool.begin("a", 5.0, make("a"), batch_size=1)
    kernel.run()
    assert done == [("a", 5.0)]


def test_batch_mode_inflates_by_batch_size(kernel):
    pool = StartupContention(kernel, coefficient=0.1, mode="batch")
    done, make = complete_recorder(kernel)
    pool.begin("a", 10.0, make("a"), batch_size=5)
    kernel.run()
    assert done[0][1] == pytest.approx(10.0 * (1 + 0.1 * 4))


def test_batch_mode_fixed_despite_other_finishers(kernel):
    pool = StartupContention(kernel, coefficient=0.1, mode="batch")
    done, make = complete_recorder(kernel)
    pool.begin("fast", 1.0, make("fast"), batch_size=2)
    pool.begin("slow", 10.0, make("slow"), batch_size=2)
    kernel.run()
    assert dict(done)["fast"] == pytest.approx(1.1)
    assert dict(done)["slow"] == pytest.approx(11.0)


def test_shared_mode_two_equal_startups(kernel):
    pool = StartupContention(kernel, coefficient=0.5, mode="shared")
    done, make = complete_recorder(kernel)
    pool.begin("a", 2.0, make("a"))
    pool.begin("b", 2.0, make("b"))
    kernel.run()
    # Both run at rate 1/1.5 until both finish: 2.0 * 1.5 = 3.0
    assert dict(done)["a"] == pytest.approx(3.0)
    assert dict(done)["b"] == pytest.approx(3.0)


def test_shared_mode_contention_fades(kernel):
    pool = StartupContention(kernel, coefficient=0.5, mode="shared")
    done, make = complete_recorder(kernel)
    pool.begin("short", 1.0, make("short"))
    pool.begin("long", 10.0, make("long"))
    kernel.run()
    results = dict(done)
    # short: 1.0 work at rate 2/3 -> 1.5s.
    assert results["short"] == pytest.approx(1.5)
    # long: 1.0 progress by 1.5s, remaining 9.0 at full rate -> 10.5s.
    assert results["long"] == pytest.approx(10.5)


def test_shared_mode_late_joiner_slows_existing(kernel):
    pool = StartupContention(kernel, coefficient=0.5, mode="shared")
    done, make = complete_recorder(kernel)
    pool.begin("first", 4.0, make("first"))
    kernel.call_after(2.0, pool.begin, "second", 4.0, make("second"))
    kernel.run()
    results = dict(done)
    # first: 2.0 done solo; remaining 2.0 at rate 2/3 -> finishes at 5.0.
    assert results["first"] == pytest.approx(5.0)
    # second: 2.0 at 2/3 rate (until 5.0), then 2.0 solo -> 7.0.
    assert results["second"] == pytest.approx(7.0)


def test_abort_prevents_completion(kernel):
    pool = StartupContention(kernel, coefficient=0.0, mode="batch")
    done, make = complete_recorder(kernel)
    pool.begin("a", 5.0, make("a"))
    kernel.call_after(1.0, pool.abort, "a")
    kernel.run()
    assert done == []
    assert not pool.is_starting("a")


def test_abort_speeds_up_survivors_shared(kernel):
    pool = StartupContention(kernel, coefficient=1.0, mode="shared")
    done, make = complete_recorder(kernel)
    pool.begin("a", 4.0, make("a"))
    pool.begin("b", 4.0, make("b"))
    kernel.call_after(2.0, pool.abort, "b")
    kernel.run()
    # a: 2s at rate 1/2 (1.0 banked), then 3.0 remaining solo -> 5.0.
    assert dict(done)["a"] == pytest.approx(5.0)


def test_abort_unknown_is_noop(kernel):
    pool = StartupContention(kernel, mode="shared")
    pool.abort("ghost")
    pool = StartupContention(kernel, mode="batch")
    pool.abort("ghost")


def test_duplicate_begin_rejected(kernel):
    pool = StartupContention(kernel)
    pool.begin("a", 1.0, lambda: None)
    with pytest.raises(ProcessError):
        pool.begin("a", 1.0, lambda: None)


def test_invalid_parameters_rejected(kernel):
    with pytest.raises(ProcessError):
        StartupContention(kernel, coefficient=-0.1)
    with pytest.raises(ProcessError):
        StartupContention(kernel, mode="magic")
    pool = StartupContention(kernel)
    with pytest.raises(ProcessError):
        pool.begin("a", -1.0, lambda: None)
    with pytest.raises(ProcessError):
        pool.begin("b", 1.0, lambda: None, batch_size=0)


def test_zero_coefficient_means_independent(kernel):
    pool = StartupContention(kernel, coefficient=0.0, mode="batch")
    done, make = complete_recorder(kernel)
    pool.begin("a", 3.0, make("a"), batch_size=10)
    kernel.run()
    assert done == [("a", 3.0)]


def test_rate_formula():
    from repro.sim.kernel import Kernel

    pool = StartupContention(Kernel(), coefficient=0.25)
    assert pool.rate(1) == 1.0
    assert pool.rate(5) == pytest.approx(1.0 / 2.0)


def test_active_count_tracks(kernel):
    pool = StartupContention(kernel, mode="shared")
    pool.begin("a", 1.0, lambda: None)
    pool.begin("b", 2.0, lambda: None)
    assert pool.active_count == 2
    kernel.run()
    assert pool.active_count == 0
