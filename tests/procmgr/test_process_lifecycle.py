"""Tests for SimProcess lifecycle and batch semantics."""

import pytest

from repro.errors import InvalidTransitionError
from repro.procmgr.process import ProcessSpec, StartupContext, constant_work, noisy_work
from repro.types import ProcessState, Signal

from tests.conftest import spawn_simple


def test_initial_state_is_new(manager):
    process = spawn_simple(manager, "p")
    assert process.state is ProcessState.NEW
    assert not process.is_running


def test_start_transitions_through_starting_to_running(kernel, manager):
    process = spawn_simple(manager, "p", work=2.0)
    manager.start("p")
    assert process.state is ProcessState.STARTING
    kernel.run()
    assert process.state is ProcessState.RUNNING
    assert process.start_count == 1
    assert process.last_ready_at == pytest.approx(2.0)


def test_kill_running_process(kernel, manager):
    process = spawn_simple(manager, "p")
    manager.start("p")
    kernel.run()
    manager.kill("p")
    assert process.state is ProcessState.FAILED
    assert process.failure_count == 1
    assert process.last_down_at == kernel.now


def test_sigterm_stops_gracefully(kernel, manager):
    process = spawn_simple(manager, "p")
    manager.start("p")
    kernel.run()
    manager.kill("p", Signal.TERM)
    assert process.state is ProcessState.STOPPED
    assert process.failure_count == 0  # graceful stop is not a failure


def test_kill_while_starting_aborts_startup(kernel, manager):
    process = spawn_simple(manager, "p", work=10.0)
    manager.start("p")
    kernel.call_after(1.0, manager.kill, "p")
    kernel.run()
    assert process.state is ProcessState.FAILED
    assert process.start_count == 0  # never became ready


def test_restart_after_failure(kernel, manager):
    process = spawn_simple(manager, "p", work=1.0)
    manager.start("p")
    kernel.run()
    manager.kill("p")
    manager.start("p")
    kernel.run()
    assert process.is_running
    assert process.start_count == 2


def test_double_start_rejected(kernel, manager):
    spawn_simple(manager, "p")
    manager.start("p")
    with pytest.raises(InvalidTransitionError):
        manager.start("p")


def test_kill_terminal_process_is_noop(kernel, manager):
    process = spawn_simple(manager, "p")
    manager.start("p")
    kernel.run()
    manager.kill("p")
    manager.kill("p")
    assert process.failure_count == 1


def test_failure_metadata_attached_and_kept(kernel, manager):
    process = spawn_simple(manager, "p")
    manager.start("p")
    kernel.run()
    manager.fail("p", failure={"tag": "f1"})
    assert process.failure == {"tag": "f1"}
    assert process.last_failure == {"tag": "f1"}
    manager.start("p")
    kernel.run()
    assert process.failure is None  # cleared when ready
    assert process.last_failure == {"tag": "f1"}  # kept for attribution


def test_batch_recorded_on_start(kernel, manager):
    process = spawn_simple(manager, "p")
    manager.start("p", batch=frozenset(["p", "q"]))
    assert process.last_batch == frozenset(["p", "q"])


def test_startup_context_carries_batch(kernel, manager):
    seen = {}

    def work(context: StartupContext) -> float:
        seen["batch"] = context.batch
        seen["process"] = context.process.name
        return 1.0

    manager.spawn(ProcessSpec("ctx", work))
    manager.start("ctx", batch=frozenset(["ctx", "other"]))
    kernel.run()
    assert seen["batch"] == frozenset(["ctx", "other"])
    assert seen["process"] == "ctx"


def test_trace_records_lifecycle(kernel, manager):
    spawn_simple(manager, "p")
    manager.start("p")
    kernel.run()
    manager.kill("p")
    kinds = [r.kind for r in kernel.trace.filter(source="proc.p")]
    assert kinds == ["process_start", "process_ready", "process_failed"]


def test_constant_work_helper(kernel, manager):
    spec = ProcessSpec("c", constant_work(3.5))
    process = manager.spawn(spec, start=True)
    kernel.run()
    assert process.last_ready_at == pytest.approx(3.5)


def test_noisy_work_is_near_mean(kernel, manager):
    import random

    work = noisy_work(10.0, relative_sigma=0.02)
    context = StartupContext(
        manager=manager,
        process=spawn_simple(manager, "n"),
        rng=random.Random(5),
        batch=frozenset(["n"]),
    )
    samples = [work(context) for _ in range(200)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(10.0, rel=0.01)
    assert all(8.0 < s < 12.0 for s in samples)
