"""Tests for the process manager: registry, batch restarts, notifications."""

import pytest

from repro.errors import DuplicateComponentError, UnknownProcessError
from repro.types import ProcessState

from tests.conftest import spawn_simple


def test_spawn_and_get(manager):
    process = spawn_simple(manager, "a")
    assert manager.get("a") is process
    assert manager.maybe_get("a") is process
    assert manager.maybe_get("ghost") is None


def test_duplicate_spawn_rejected(manager):
    spawn_simple(manager, "a")
    with pytest.raises(DuplicateComponentError):
        spawn_simple(manager, "a")


def test_get_unknown_raises(manager):
    with pytest.raises(UnknownProcessError):
        manager.get("ghost")


def test_names_in_registration_order(manager):
    for name in ("c", "a", "b"):
        spawn_simple(manager, name)
    assert manager.names == ["c", "a", "b"]


def test_start_all_uses_one_batch(kernel, manager):
    for name in ("a", "b"):
        spawn_simple(manager, name)
    manager.start_all()
    assert manager.get("a").last_batch == frozenset(["a", "b"])
    assert manager.get("b").last_batch == frozenset(["a", "b"])


def test_start_all_subset(kernel, manager):
    for name in ("a", "b", "c"):
        spawn_simple(manager, name)
    manager.start_all(["a", "c"])
    kernel.run()
    assert manager.get("a").is_running
    assert manager.get("c").is_running
    assert manager.get("b").state is ProcessState.NEW


def test_running_and_all_running(kernel, manager):
    for name in ("a", "b"):
        spawn_simple(manager, name)
    manager.start_all()
    kernel.run()
    assert sorted(manager.running()) == ["a", "b"]
    assert manager.all_running()
    manager.kill("a")
    assert manager.running() == ["b"]
    assert not manager.all_running()
    assert manager.all_running(["b"])


def test_restart_kills_running_then_starts(kernel, manager):
    process = spawn_simple(manager, "a", work=1.0)
    manager.start_all()
    kernel.run()
    first_ready = process.last_ready_at
    batch = manager.restart(["a"])
    assert batch == frozenset(["a"])
    kernel.run()
    assert process.start_count == 2
    assert process.last_ready_at > first_ready


def test_restart_does_not_rekill_failed(kernel, manager):
    process = spawn_simple(manager, "a")
    manager.start_all()
    kernel.run()
    manager.fail("a")
    failures_before = process.failure_count
    manager.restart(["a"])
    kernel.run()
    assert process.failure_count == failures_before
    assert process.is_running


def test_restart_group_shares_batch(kernel, manager):
    for name in ("a", "b", "c"):
        spawn_simple(manager, name)
    manager.start_all()
    kernel.run()
    manager.restart(["a", "b"])
    kernel.run()
    assert manager.get("a").last_batch == frozenset(["a", "b"])
    assert manager.get("b").last_batch == frozenset(["a", "b"])
    assert manager.get("c").last_batch == frozenset(["a", "b", "c"])  # from boot


def test_restart_empty_is_noop(kernel, manager):
    assert manager.restart([]) == frozenset()


def test_restart_kills_starting_process(kernel, manager):
    process = spawn_simple(manager, "a", work=10.0)
    manager.start("a")
    kernel.run(until=1.0)
    assert process.state is ProcessState.STARTING
    manager.restart(["a"])
    kernel.run()
    assert process.is_running
    assert process.start_count == 1  # first startup was aborted


def test_lifecycle_notifications(kernel, manager):
    events = []
    manager.subscribe(lambda p, e: events.append((p.name, e)))
    spawn_simple(manager, "a", work=1.0)
    manager.start_all()
    kernel.run()
    manager.fail("a")
    assert ("a", "ready") in events
    assert ("a", "down:SIGKILL") in events


def test_notification_for_graceful_stop(kernel, manager):
    events = []
    manager.subscribe(lambda p, e: events.append((p.name, e)))
    spawn_simple(manager, "a", work=0.5)
    manager.start_all()
    kernel.run()
    manager.restart(["a"])
    assert ("a", "down:SIGTERM") in events
