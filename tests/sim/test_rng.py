"""Tests for named random streams: independence, stability, forking."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    rngs = RngRegistry(seed=1)
    assert rngs.stream("a") is rngs.stream("a")


def test_different_names_are_independent():
    rngs = RngRegistry(seed=1)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_streams_stable_across_registries():
    first = [RngRegistry(seed=7).stream("x").random() for _ in range(3)]
    second = [RngRegistry(seed=7).stream("x").random() for _ in range(3)]
    assert first == second


def test_adding_streams_does_not_shift_existing():
    """The reproducibility property the registry exists for."""
    solo = RngRegistry(seed=7)
    values_solo = [solo.stream("x").random() for _ in range(3)]

    mixed = RngRegistry(seed=7)
    mixed.stream("unrelated").random()  # extra draw on another stream
    values_mixed = [mixed.stream("x").random() for _ in range(3)]
    assert values_solo == values_mixed


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_derive_seed_is_deterministic():
    assert derive_seed(1, "name") == derive_seed(1, "name")
    assert derive_seed(1, "name") != derive_seed(2, "name")
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_fork_creates_independent_child():
    parent = RngRegistry(seed=5)
    child_a = parent.fork("trial-0")
    child_b = parent.fork("trial-1")
    assert child_a.seed != child_b.seed
    assert child_a.stream("x").random() != child_b.stream("x").random()


def test_fork_is_reproducible():
    a = RngRegistry(seed=5).fork("trial-0").stream("x").random()
    b = RngRegistry(seed=5).fork("trial-0").stream("x").random()
    assert a == b
