"""FleetKernel: epoch barriers, canonical exchange, and the bit-identity gate.

The load-bearing contract (module docstring of :mod:`repro.sim.fleet`):
a fleet run is **bit-identical for every shard count and for serial vs
process-parallel execution**, because each member's inputs are exactly
(its seed, the canonically-ordered inbound message list).  These tests
hold that gate with cheap gossiping toy shells — every member posts
randomly-timed messages to random peers off its own RNG streams, and the
result payload digests its complete receive log — then pin the guard
rails: the lookahead floor on posts, the member-alignment check, the
barrier schedule, and routing to unknown members.
"""

import hashlib

import pytest

from repro.errors import SimulationError
from repro.sim.fleet import (
    GROUND_ID,
    FleetKernel,
    FleetMessage,
    FleetShell,
    partition_ids,
)
from repro.sim.kernel import Kernel
from repro.sim.rng import derive_seed


# ----------------------------------------------------------------------
# toy members (module level: they cross the pickle boundary in fan-out)
# ----------------------------------------------------------------------


class GossipShell(FleetShell):
    """Posts to random peers on its own streams; logs everything inbound."""

    def __init__(
        self,
        shell_id: int,
        size: int,
        epoch: float,
        seed: int,
        start: float = 0.0,
        to_ground: bool = False,
    ) -> None:
        kernel = Kernel(seed=derive_seed(seed, f"gossip:{shell_id}"), start_time=start)
        super().__init__(shell_id, kernel, epoch)
        self.size = size
        self.to_ground = to_ground
        self.log = []
        self._rng = kernel.rngs.stream("gossip")
        kernel.call_after(self._rng.uniform(0.1, 1.0), self._tick)

    def _tick(self) -> None:
        peer = self._rng.randrange(self.size)
        if peer != self.shell_id:
            self.post(
                peer,
                "gossip",
                (self.shell_id, len(self.log)),
                latency=self.min_latency + self._rng.random(),
            )
        if self.to_ground and self._rng.random() < 0.3:
            self.post(GROUND_ID, "report", (len(self.log),))
        self.kernel.call_after(self._rng.uniform(0.2, 1.5), self._tick)

    def apply(self, message: FleetMessage) -> None:
        self.log.append((self.kernel.now, message.src, message.seq, message.data))

    def result(self):
        return {
            "id": self.shell_id,
            "received": len(self.log),
            "digest": hashlib.sha256(repr(self.log).encode()).hexdigest(),
            "now": self.kernel.now,
            "events_executed": self.kernel.events_executed,
        }


class GossipFactory:
    """Pure, picklable shard factory over :class:`GossipShell`."""

    def __init__(self, size, epoch, seed, start=0.0, to_ground=False):
        self.size = size
        self.epoch = epoch
        self.seed = seed
        self.start = start
        self.to_ground = to_ground

    def __call__(self, ids):
        return [
            GossipShell(
                shell_id, self.size, self.epoch, self.seed, self.start, self.to_ground
            )
            for shell_id in ids
        ]


class CollectorShell(FleetShell):
    """Coordinator stand-in: logs reports, acks every third one back."""

    def __init__(self, epoch: float, seed: int, start: float = 0.0) -> None:
        kernel = Kernel(seed=derive_seed(seed, "collector"), start_time=start)
        super().__init__(GROUND_ID, kernel, epoch)
        self.log = []

    def apply(self, message: FleetMessage) -> None:
        self.log.append((self.kernel.now, message.src, message.seq, message.data))
        if len(self.log) % 3 == 0:
            self.post(message.src, "ack", (len(self.log),))

    def result(self):
        return {
            "received": len(self.log),
            "digest": hashlib.sha256(repr(self.log).encode()).hexdigest(),
            "events_executed": self.kernel.events_executed,
        }


def run_gossip(
    size=12,
    shards=1,
    parallel=False,
    horizon=20.0,
    epoch=1.0,
    seed=3,
    start=0.0,
    coordinator=False,
):
    factory = GossipFactory(size, epoch, seed, start, to_ground=coordinator)
    coord = CollectorShell(epoch, seed, start) if coordinator else None
    fleet = FleetKernel(
        epoch=epoch,
        factory=factory,
        shell_ids=range(size),
        shards=shards,
        coordinator=coord,
        start=start,
    )
    return fleet.run(horizon, parallel=parallel)


# ----------------------------------------------------------------------
# the bit-identity gate
# ----------------------------------------------------------------------


def test_bit_identical_across_shard_counts():
    one = run_gossip(shards=1)
    assert any(payload["received"] for payload in one.values())  # traffic flowed
    for shards in (2, 3, 5, 12):
        assert run_gossip(shards=shards) == one


def test_bit_identical_serial_vs_parallel():
    serial = run_gossip(size=6, shards=3, horizon=10.0)
    fanned = run_gossip(size=6, shards=3, horizon=10.0, parallel=True)
    assert fanned == serial


def test_bit_identical_with_coordinator_serial_vs_parallel():
    serial = run_gossip(size=6, shards=3, horizon=10.0, coordinator=True)
    fanned = run_gossip(size=6, shards=3, horizon=10.0, coordinator=True, parallel=True)
    assert fanned == serial
    assert serial[GROUND_ID]["received"] > 0  # members really reported in


def test_shard_grouping_does_not_leak_into_results():
    """Same members, different contiguous blocks: identical payloads."""
    a = run_gossip(size=9, shards=2)
    b = run_gossip(size=9, shards=4)
    assert a == b


# ----------------------------------------------------------------------
# time origin
# ----------------------------------------------------------------------


def test_nonzero_start_anchors_the_run():
    results = run_gossip(size=4, shards=2, horizon=8.0, start=100.0)
    for payload in results.values():
        assert payload["now"] == pytest.approx(108.0)


def test_member_ahead_of_origin_is_rejected():
    # Members built at t=5 against a fleet origin of 0: run(until<now) would
    # silently no-op, so the kernel must refuse loudly instead.
    factory = GossipFactory(4, 1.0, seed=1, start=5.0)
    fleet = FleetKernel(epoch=1.0, factory=factory, shell_ids=range(4), shards=2)
    with pytest.raises(SimulationError, match="past the fleet origin"):
        fleet.run(10.0)


def test_coordinator_ahead_of_origin_is_rejected():
    factory = GossipFactory(4, 1.0, seed=1)
    coord = CollectorShell(1.0, seed=1, start=5.0)
    fleet = FleetKernel(
        epoch=1.0, factory=factory, shell_ids=range(4), coordinator=coord
    )
    with pytest.raises(SimulationError, match="past the fleet origin"):
        fleet.run(10.0)


# ----------------------------------------------------------------------
# guard rails
# ----------------------------------------------------------------------


def test_post_below_lookahead_is_rejected():
    shell = GossipShell(0, size=2, epoch=1.0, seed=1)
    with pytest.raises(SimulationError, match="below the fleet lookahead"):
        shell.post(1, "gossip", (), latency=0.25)


def test_post_at_lookahead_is_allowed_and_sequenced():
    shell = GossipShell(0, size=2, epoch=1.0, seed=1)
    shell.post(1, "a", (1,))
    shell.post(1, "b", (2,), latency=2.5)
    first, second = shell.drain()
    assert (first.seq, second.seq) == (0, 1)
    assert first.latency == 1.0 and second.latency == 2.5
    assert first.arrival == first.send_time + 1.0
    assert shell.drain() == []  # drained


def test_message_to_unknown_member_raises():
    factory = GossipFactory(2, 1.0, seed=1)

    class Stray(GossipShell):
        def _tick(self):
            self.post(99, "gossip", ())

    class StrayFactory(GossipFactory):
        def __call__(self, ids):
            return [Stray(i, self.size, self.epoch, self.seed) for i in ids]

    fleet = FleetKernel(epoch=1.0, factory=StrayFactory(2, 1.0, seed=1), shell_ids=range(2))
    with pytest.raises(SimulationError, match="unknown fleet member"):
        fleet.run(5.0)
    del factory


def test_epoch_and_horizon_validation():
    factory = GossipFactory(2, 1.0, seed=1)
    with pytest.raises(SimulationError, match="epoch must be positive"):
        FleetKernel(epoch=0.0, factory=factory, shell_ids=range(2))
    fleet = FleetKernel(epoch=1.0, factory=factory, shell_ids=range(2))
    with pytest.raises(SimulationError, match="horizon must be positive"):
        fleet.run(0.0)


def test_barrier_schedule_covers_the_window():
    factory = GossipFactory(2, 1.0, seed=1)
    fleet = FleetKernel(epoch=2.0, factory=factory, shell_ids=range(2), start=10.0)
    assert fleet._barriers(7.0) == [12.0, 14.0, 16.0, 17.0]
    assert fleet._barriers(2.0) == [12.0]  # final barrier is the horizon itself


def test_partition_ids_contiguous_and_balanced():
    assert partition_ids(range(7), 3) == [(0, 1, 2), (3, 4), (5, 6)]
    assert partition_ids(range(4), 9) == [(0,), (1,), (2,), (3,)]  # capped
    assert partition_ids([], 2) == [()]
    with pytest.raises(SimulationError, match="shards must be >= 1"):
        partition_ids(range(4), 0)
