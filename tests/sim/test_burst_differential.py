"""Differential stress test: batched same-instant dispatch vs. a reference.

The kernel's slab queue batches same-timestamp events into shared bucket
entries and appends to the queue tail without touching the heap.  The
contract those optimizations must preserve is simple: *all events at one
SimTime fire in scheduling (FIFO) order, cancelled events are skipped, and
events scheduled at the current instant from inside the burst run after
everything already queued there* — exactly what a naive one-event-per-
heap-entry scheduler would do.

These tests build a randomized plan of thousands of same-instant events —
plain records, cancellable records, cancellers that shoot later events
mid-burst, spawners that extend the burst while it is draining, plus a
layer of pre-run cancellations — and execute it twice: once on the real
kernel, once on an unbatched pure-Python reference dispatcher.  The
observed firing orders must be identical element-for-element.
"""

import random

from repro.sim.kernel import Kernel

BURST_AT = 1.0


def _make_plan(rng: random.Random, n: int):
    """A reproducible plan: ``(kind, cancel_target_index)`` per event.

    Kinds: ``plain`` (handle-free ``schedule_at``), ``handled``
    (cancellable ``call_at``), ``cancel`` (cancels a later handled event
    mid-burst), ``spawn`` (schedules one more same-instant event while
    the burst is draining).
    """
    kinds = []
    for _ in range(n):
        r = rng.random()
        if r < 0.08:
            kinds.append("cancel")
        elif r < 0.14:
            kinds.append("spawn")
        elif r < 0.55:
            kinds.append("handled")
        else:
            kinds.append("plain")
    plan = []
    for i, kind in enumerate(kinds):
        target = None
        if kind == "cancel":
            later = [j for j in range(i + 1, n) if kinds[j] == "handled"]
            target = rng.choice(later) if later else None
        plan.append((kind, target))
    return plan


def _pre_cancels(plan):
    """Every 13th handled event is cancelled before the run starts."""
    handled = [i for i, (kind, _) in enumerate(plan) if kind == "handled"]
    return handled[::13]


def _reference_order(plan, pre_cancel):
    """Unbatched model: a flat list walked in scheduling order."""
    events = [
        {"kind": kind, "target": target, "label": i, "cancelled": False}
        for i, (kind, target) in enumerate(plan)
    ]
    for idx in pre_cancel:
        events[idx]["cancelled"] = True
    order = []
    next_label = len(plan)
    i = 0
    while i < len(events):
        event = events[i]
        i += 1
        if event["cancelled"]:
            continue
        order.append(event["label"])
        if event["kind"] == "cancel" and event["target"] is not None:
            # Cancelling an already-fired event is a no-op: the walk has
            # passed it, so the mark never takes effect — same as
            # EventHandle.cancel() after the fire.
            events[event["target"]]["cancelled"] = True
        elif event["kind"] == "spawn":
            events.append(
                {"kind": "plain", "target": None, "label": next_label, "cancelled": False}
            )
            next_label += 1
    return order


def _kernel_order(plan, pre_cancel):
    kernel = Kernel(seed=99)
    order = []
    handles = {}
    next_label = [len(plan)]

    def record(label):
        order.append(label)

    def spawn(label):
        order.append(label)
        new_label = next_label[0]
        next_label[0] += 1
        kernel.schedule_at(BURST_AT, record, new_label)

    def cancel(label, target):
        order.append(label)
        if target is not None:
            handles[target].cancel()

    for i, (kind, target) in enumerate(plan):
        if kind == "handled":
            handles[i] = kernel.call_at(BURST_AT, record, i)
        elif kind == "plain":
            kernel.schedule_at(BURST_AT, record, i)
        elif kind == "cancel":
            kernel.schedule_at(BURST_AT, cancel, i, target)
        else:
            kernel.schedule_at(BURST_AT, spawn, i)
    for idx in pre_cancel:
        handles[idx].cancel()
    kernel.run()
    return order


def test_large_same_instant_burst_matches_unbatched_reference():
    plan = _make_plan(random.Random(2002), 3000)
    pre_cancel = _pre_cancels(plan)
    assert len(pre_cancel) > 20  # the stress is real: plenty of dead events
    assert _kernel_order(plan, pre_cancel) == _reference_order(plan, pre_cancel)


def test_burst_differential_across_seeds():
    for seed in (0, 1, 7, 1234):
        plan = _make_plan(random.Random(seed), 1000)
        pre_cancel = _pre_cancels(plan)
        kernel_order = _kernel_order(plan, pre_cancel)
        reference = _reference_order(plan, pre_cancel)
        assert kernel_order == reference, f"divergence for plan seed {seed}"


def test_burst_interleaved_with_timers():
    """Same-instant bursts riding between interval-timer firings keep FIFO.

    A repeating timer re-arms in place (same slab entry) while bursts
    land around it; within any one timestamp the timer firing and the
    burst events must still interleave purely by scheduling order.
    """
    kernel = Kernel(seed=5)
    order = []

    def tick():
        order.append("tick")
        when = kernel.now + 0.0005
        for i in range(25):
            kernel.schedule_at(when, order.append, f"burst-{i}")

    handle = kernel.schedule_interval(0.001, tick)
    # until sits strictly between the 10th burst (~0.0105) and the 11th
    # tick (0.011), clear of float rounding on either side.
    kernel.run(until=0.0107)
    handle.cancel()
    expected = []
    for _ in range(10):
        expected.append("tick")
        expected.extend(f"burst-{i}" for i in range(25))
    assert order == expected
