"""Tests for the discrete-event kernel: ordering, cancellation, run control."""

import pytest

from repro.errors import KernelStoppedError, SimulationError
from repro.sim.kernel import Kernel


def test_events_fire_in_time_order(kernel):
    fired = []
    kernel.call_after(2.0, fired.append, "b")
    kernel.call_after(1.0, fired.append, "a")
    kernel.call_after(3.0, fired.append, "c")
    kernel.run()
    assert fired == ["a", "b", "c"]


def test_same_instant_events_fire_fifo(kernel):
    fired = []
    for tag in range(10):
        kernel.call_after(1.0, fired.append, tag)
    kernel.run()
    assert fired == list(range(10))


def test_call_soon_runs_at_current_time(kernel):
    times = []
    kernel.call_after(5.0, lambda: kernel.call_soon(lambda: times.append(kernel.now)))
    kernel.run()
    assert times == [5.0]


def test_clock_advances_to_event_time(kernel):
    seen = []
    kernel.call_after(4.25, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [4.25]
    assert kernel.now == 4.25


def test_cancelled_event_does_not_fire(kernel):
    fired = []
    handle = kernel.call_after(1.0, fired.append, "x")
    handle.cancel()
    kernel.run()
    assert fired == []


def test_cancel_is_idempotent(kernel):
    handle = kernel.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    kernel.run()


def test_negative_delay_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel.call_after(-1.0, lambda: None)


def test_scheduling_in_past_rejected(kernel):
    kernel.call_after(5.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.call_at(4.0, lambda: None)


def test_run_until_stops_before_later_events(kernel):
    fired = []
    kernel.call_after(1.0, fired.append, "early")
    kernel.call_after(10.0, fired.append, "late")
    kernel.run(until=5.0)
    assert fired == ["early"]
    assert kernel.now == 5.0  # clock advanced exactly to the bound


def test_run_until_then_resume(kernel):
    fired = []
    kernel.call_after(10.0, fired.append, "late")
    kernel.run(until=5.0)
    kernel.run()
    assert fired == ["late"]


def test_event_scheduled_during_run_executes(kernel):
    fired = []
    kernel.call_after(1.0, lambda: kernel.call_after(1.0, fired.append, "nested"))
    kernel.run()
    assert fired == ["nested"]
    assert kernel.now == 2.0


def test_stop_halts_execution(kernel):
    fired = []
    kernel.call_after(1.0, kernel.stop)
    kernel.call_after(2.0, fired.append, "never")
    kernel.run()
    assert fired == []
    assert kernel.stopped


def test_schedule_after_stop_rejected(kernel):
    kernel.stop()
    with pytest.raises(KernelStoppedError):
        kernel.call_after(1.0, lambda: None)


def test_max_events_bound(kernel):
    fired = []
    for index in range(10):
        kernel.call_after(float(index + 1), fired.append, index)
    kernel.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_empty(kernel):
    assert kernel.step() is False


def test_step_executes_one_event(kernel):
    fired = []
    kernel.call_after(1.0, fired.append, "a")
    kernel.call_after(2.0, fired.append, "b")
    assert kernel.step() is True
    assert fired == ["a"]


def test_pending_events_excludes_cancelled(kernel):
    handle = kernel.call_after(1.0, lambda: None)
    kernel.call_after(2.0, lambda: None)
    handle.cancel()
    assert kernel.pending_events == 1


def test_peek_next_time_skips_cancelled(kernel):
    first = kernel.call_after(1.0, lambda: None)
    kernel.call_after(2.0, lambda: None)
    first.cancel()
    assert kernel.peek_next_time() == pytest.approx(2.0)


def test_events_executed_counter(kernel):
    for index in range(5):
        kernel.call_after(float(index), lambda: None)
    kernel.run()
    assert kernel.events_executed == 5


def test_run_is_not_reentrant(kernel):
    def nested():
        with pytest.raises(SimulationError):
            kernel.run()

    kernel.call_after(1.0, nested)
    kernel.run()


def test_determinism_same_seed():
    def run_once(seed):
        k = Kernel(seed=seed)
        out = []
        rng = k.rngs.stream("test")

        def tick(i):
            out.append((round(k.now, 9), i, rng.random()))
            if i < 20:
                k.call_after(rng.uniform(0.1, 1.0), tick, i + 1)

        k.call_after(0.5, tick, 0)
        k.run()
        return out

    assert run_once(99) == run_once(99)
    assert run_once(99) != run_once(100)
