"""Tests for the discrete-event kernel: ordering, cancellation, run control."""

import pytest

from repro.errors import KernelStoppedError, SimulationError
from repro.sim.kernel import Kernel


def test_events_fire_in_time_order(kernel):
    fired = []
    kernel.call_after(2.0, fired.append, "b")
    kernel.call_after(1.0, fired.append, "a")
    kernel.call_after(3.0, fired.append, "c")
    kernel.run()
    assert fired == ["a", "b", "c"]


def test_same_instant_events_fire_fifo(kernel):
    fired = []
    for tag in range(10):
        kernel.call_after(1.0, fired.append, tag)
    kernel.run()
    assert fired == list(range(10))


def test_call_soon_runs_at_current_time(kernel):
    times = []
    kernel.call_after(5.0, lambda: kernel.call_soon(lambda: times.append(kernel.now)))
    kernel.run()
    assert times == [5.0]


def test_clock_advances_to_event_time(kernel):
    seen = []
    kernel.call_after(4.25, lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [4.25]
    assert kernel.now == 4.25


def test_cancelled_event_does_not_fire(kernel):
    fired = []
    handle = kernel.call_after(1.0, fired.append, "x")
    handle.cancel()
    kernel.run()
    assert fired == []


def test_cancel_is_idempotent(kernel):
    handle = kernel.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    kernel.run()


def test_negative_delay_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel.call_after(-1.0, lambda: None)


def test_scheduling_in_past_rejected(kernel):
    kernel.call_after(5.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.call_at(4.0, lambda: None)


def test_run_until_stops_before_later_events(kernel):
    fired = []
    kernel.call_after(1.0, fired.append, "early")
    kernel.call_after(10.0, fired.append, "late")
    kernel.run(until=5.0)
    assert fired == ["early"]
    assert kernel.now == 5.0  # clock advanced exactly to the bound


def test_run_until_then_resume(kernel):
    fired = []
    kernel.call_after(10.0, fired.append, "late")
    kernel.run(until=5.0)
    kernel.run()
    assert fired == ["late"]


def test_event_scheduled_during_run_executes(kernel):
    fired = []
    kernel.call_after(1.0, lambda: kernel.call_after(1.0, fired.append, "nested"))
    kernel.run()
    assert fired == ["nested"]
    assert kernel.now == 2.0


def test_stop_halts_execution(kernel):
    fired = []
    kernel.call_after(1.0, kernel.stop)
    kernel.call_after(2.0, fired.append, "never")
    kernel.run()
    assert fired == []
    assert kernel.stopped


def test_schedule_after_stop_rejected(kernel):
    kernel.stop()
    with pytest.raises(KernelStoppedError):
        kernel.call_after(1.0, lambda: None)


def test_max_events_bound(kernel):
    fired = []
    for index in range(10):
        kernel.call_after(float(index + 1), fired.append, index)
    kernel.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_empty(kernel):
    assert kernel.step() is False


def test_step_executes_one_event(kernel):
    fired = []
    kernel.call_after(1.0, fired.append, "a")
    kernel.call_after(2.0, fired.append, "b")
    assert kernel.step() is True
    assert fired == ["a"]


def test_pending_events_excludes_cancelled(kernel):
    handle = kernel.call_after(1.0, lambda: None)
    kernel.call_after(2.0, lambda: None)
    handle.cancel()
    assert kernel.pending_events == 1


def test_peek_next_time_skips_cancelled(kernel):
    first = kernel.call_after(1.0, lambda: None)
    kernel.call_after(2.0, lambda: None)
    first.cancel()
    assert kernel.peek_next_time() == pytest.approx(2.0)


def test_events_executed_counter(kernel):
    for index in range(5):
        kernel.call_after(float(index), lambda: None)
    kernel.run()
    assert kernel.events_executed == 5


def test_run_is_not_reentrant(kernel):
    def nested():
        with pytest.raises(SimulationError):
            kernel.run()

    kernel.call_after(1.0, nested)
    kernel.run()


def test_pending_events_is_live_across_fire_and_cancel(kernel):
    handles = [kernel.call_after(float(i + 1), lambda: None) for i in range(6)]
    assert kernel.pending_events == 6
    handles[0].cancel()
    handles[1].cancel()
    assert kernel.pending_events == 4
    kernel.run(max_events=1)  # fires the first live event (t=3.0)
    assert kernel.pending_events == 3
    kernel.run()
    assert kernel.pending_events == 0


def test_cancel_after_fire_does_not_corrupt_count(kernel):
    handle = kernel.call_after(1.0, lambda: None)
    kernel.call_after(2.0, lambda: None)
    kernel.run(max_events=1)
    handle.cancel()  # already fired: must be a no-op for the live count
    handle.cancel()
    assert kernel.pending_events == 1


def test_cancel_from_inside_run_loop(kernel):
    fired = []
    sibling = kernel.call_after(1.0, fired.append, "sibling")
    kernel.call_at(1.0, sibling.cancel)
    # call_at scheduled after call_after, so the canceller has a later seq;
    # same-instant FIFO means the sibling fires first.
    kernel.run()
    assert fired == ["sibling"]

    late = kernel.call_after(1.0, fired.append, "late")
    kernel.call_soon(late.cancel)
    kernel.run()
    assert fired == ["sibling"]


def test_mass_cancellation_compacts_queue(kernel):
    keeper_fired = []
    handles = [kernel.call_after(1.0 + i * 0.001, lambda: None) for i in range(500)]
    keeper = kernel.call_after(2.0, keeper_fired.append, "kept")
    for handle in handles:
        handle.cancel()
    # Compaction is an internal policy; the observable contract is that the
    # live count and execution order survive it.
    assert kernel.pending_events == 1
    assert len(kernel._queue) < 500
    assert kernel.peek_next_time() == pytest.approx(2.0)
    kernel.run()
    assert keeper_fired == ["kept"]
    assert kernel.pending_events == 0


def test_interleaved_cancel_and_schedule_stays_consistent(kernel):
    import random

    rng = random.Random(42)
    live = []
    fired = []
    for i in range(300):
        handle = kernel.call_after(rng.uniform(0.1, 10.0), fired.append, i)
        live.append((i, handle))
        if rng.random() < 0.5 and live:
            victim, victim_handle = live.pop(rng.randrange(len(live)))
            victim_handle.cancel()
    assert kernel.pending_events == len(live)
    kernel.run()
    assert sorted(fired) == sorted(i for i, _ in live)


def test_determinism_same_seed():
    def run_once(seed):
        k = Kernel(seed=seed)
        out = []
        rng = k.rngs.stream("test")

        def tick(i):
            out.append((round(k.now, 9), i, rng.random()))
            if i < 20:
                k.call_after(rng.uniform(0.1, 1.0), tick, i + 1)

        k.call_after(0.5, tick, 0)
        k.run()
        return out

    assert run_once(99) == run_once(99)
    assert run_once(99) != run_once(100)
