"""Tests for coroutine-style SimTask processes."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.event import SimEvent
from repro.sim.process import ProcessExit, Timeout, WaitEvent


def test_timeout_resumes_after_delay(kernel):
    marks = []

    def proc():
        marks.append(kernel.now)
        yield Timeout(2.5)
        marks.append(kernel.now)

    kernel.spawn(proc())
    kernel.run()
    assert marks == [0.0, 2.5]


def test_task_return_value(kernel):
    def proc():
        yield Timeout(1.0)
        return "result"

    task = kernel.spawn(proc())
    kernel.run()
    assert task.finished
    assert task.result == "result"


def test_done_event_carries_result(kernel):
    def proc():
        yield Timeout(1.0)
        return 7

    task = kernel.spawn(proc())
    seen = []
    task.done_event.add_listener(seen.append)
    kernel.run()
    assert seen == [7]


def test_wait_event_receives_trigger_value(kernel):
    event = SimEvent("e")
    got = []

    def proc():
        value = yield WaitEvent(event)
        got.append((value, kernel.now))

    kernel.spawn(proc())
    kernel.call_after(3.0, event.trigger, "payload")
    kernel.run()
    assert got == [("payload", 3.0)]


def test_join_another_task(kernel):
    def child():
        yield Timeout(2.0)
        return "child-result"

    def parent(child_task):
        value = yield child_task
        return ("joined", value, kernel.now)

    child_task = kernel.spawn(child(), "child")
    parent_task = kernel.spawn(parent(child_task), "parent")
    kernel.run()
    assert parent_task.result == ("joined", "child-result", 2.0)


def test_kill_runs_finally_blocks(kernel):
    cleaned = []

    def proc():
        try:
            yield Timeout(100.0)
        finally:
            cleaned.append(kernel.now)

    task = kernel.spawn(proc())
    kernel.call_after(1.0, task.kill)
    kernel.run()
    assert task.killed
    assert cleaned == [1.0]


def test_killed_task_never_resumes(kernel):
    resumed = []

    def proc():
        yield Timeout(5.0)
        resumed.append("resumed")

    task = kernel.spawn(proc())
    kernel.call_after(1.0, task.kill)
    kernel.run()
    assert resumed == []
    assert kernel.now == pytest.approx(1.0)


def test_kill_finished_task_is_noop(kernel):
    def proc():
        yield Timeout(1.0)
        return "done"

    task = kernel.spawn(proc())
    kernel.run()
    task.kill()
    assert task.result == "done"
    assert not task.killed


def test_process_interrupt_catchable_for_cleanup(kernel):
    log = []

    def proc():
        try:
            yield Timeout(10.0)
        except ProcessInterrupt:
            log.append("interrupted")
            raise

    task = kernel.spawn(proc())
    kernel.call_after(2.0, task.kill)
    kernel.run()
    assert log == ["interrupted"]


def test_process_exit_short_circuits(kernel):
    def proc():
        yield Timeout(1.0)
        raise ProcessExit("early")
        yield Timeout(100.0)  # pragma: no cover - unreachable

    task = kernel.spawn(proc())
    kernel.run()
    assert task.result == "early"
    assert kernel.now == pytest.approx(1.0)


def test_unsupported_yield_raises(kernel):
    def proc():
        yield 42

    kernel.spawn(proc())
    with pytest.raises(SimulationError):
        kernel.run()


def test_immediate_task_without_yields(kernel):
    def proc():
        return "instant"
        yield  # pragma: no cover - makes it a generator

    task = kernel.spawn(proc())
    kernel.run()
    assert task.result == "instant"


def test_two_tasks_interleave_deterministically(kernel):
    order = []

    def proc(name, delay):
        for _ in range(3):
            yield Timeout(delay)
            order.append((name, round(kernel.now, 6)))

    kernel.spawn(proc("fast", 1.0), "fast")
    kernel.spawn(proc("slow", 1.5), "slow")
    kernel.run()
    # At t=3.0 both tasks wake; "slow" scheduled its timer first (at t=1.5
    # vs t=2.0), so FIFO tie-breaking runs it first.
    assert order == [
        ("fast", 1.0),
        ("slow", 1.5),
        ("fast", 2.0),
        ("slow", 3.0),
        ("fast", 3.0),
        ("slow", 4.5),
    ]


def test_wait_on_already_triggered_event(kernel):
    event = SimEvent("pre")
    event.trigger("early")
    got = []

    def proc():
        value = yield WaitEvent(event)
        got.append(value)

    kernel.spawn(proc())
    kernel.run()
    assert got == ["early"]
