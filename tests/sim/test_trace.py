"""Tests for the structured trace."""

import pytest

from repro.sim.trace import Trace, TraceRecord
from repro.types import Severity


def test_emit_uses_clock_time(kernel):
    kernel.call_after(3.0, kernel.trace.emit, "src", "thing")
    kernel.run()
    assert kernel.trace.records[0].time == 3.0


def test_emit_without_clock_requires_time():
    trace = Trace()
    with pytest.raises(ValueError):
        trace.emit("src", "kind")
    record = trace.emit("src", "kind", time=1.0)
    assert record.time == 1.0


def test_filter_by_kind_and_source(kernel):
    trace = kernel.trace
    trace.emit("a", "x", value=1)
    trace.emit("b", "x", value=2)
    trace.emit("a", "y", value=3)
    assert [r.data["value"] for r in trace.filter(kind="x")] == [1, 2]
    assert [r.data["value"] for r in trace.filter(source="a")] == [1, 3]
    assert [r.data["value"] for r in trace.filter(kind="x", source="b")] == [2]


def test_filter_by_payload(kernel):
    trace = kernel.trace
    trace.emit("s", "ready", name="fedr")
    trace.emit("s", "ready", name="pbcom")
    matches = trace.filter(kind="ready", name="fedr")
    assert len(matches) == 1
    assert matches[0].data["name"] == "fedr"


def test_filter_by_time_window(kernel):
    trace = kernel.trace
    for t in (1.0, 2.0, 3.0):
        trace.emit("s", "tick", time=t)
    assert len(trace.filter(since=2.0)) == 2
    assert len(trace.filter(until=2.0)) == 2
    assert len(trace.filter(since=1.5, until=2.5)) == 1


def test_first_and_last(kernel):
    trace = kernel.trace
    trace.emit("s", "evt", n=1)
    trace.emit("s", "evt", n=2)
    trace.emit("s", "other")
    assert trace.first("evt").data["n"] == 1
    assert trace.last("evt").data["n"] == 2
    assert trace.first("missing") is None
    assert trace.last("missing") is None


def test_subscriber_sees_records_live(kernel):
    seen = []
    kernel.trace.subscribe(seen.append)
    kernel.trace.emit("s", "evt")
    assert len(seen) == 1
    assert isinstance(seen[0], TraceRecord)


def test_capacity_ring_buffer(kernel):
    trace = Trace(clock=kernel.clock, capacity=3)
    for n in range(10):
        trace.emit("s", "evt", n=n)
    assert len(trace) == 3
    assert [r.data["n"] for r in trace.records] == [7, 8, 9]
    assert trace.dropped == 7


def test_capacity_still_notifies_subscribers(kernel):
    trace = Trace(clock=kernel.clock, capacity=1)
    seen = []
    trace.subscribe(seen.append)
    for n in range(5):
        trace.emit("s", "evt", n=n)
    assert len(seen) == 5  # subscribers see everything, buffer keeps tail


def test_disabled_trace_retains_nothing(kernel):
    trace = kernel.trace
    trace.emit("s", "kept")
    trace.enabled = False
    assert trace.emit("s", "skipped") is None
    assert [r.kind for r in trace.records] == ["kept"]
    assert trace.dropped == 0  # skipped-while-disabled is not "dropped"
    trace.enabled = True
    trace.emit("s", "kept-again")
    assert [r.kind for r in trace.records] == ["kept", "kept-again"]


def test_subscriber_delivery_follows_enabled_flag(kernel):
    """Disabling the trace skips subscribers too, not just the ring."""
    trace = kernel.trace
    seen = []
    trace.subscribe(seen.append)
    trace.emit("s", "evt", n=1)  # enabled: delivered
    assert [r.data["n"] for r in seen] == [1]
    trace.enabled = False
    assert trace.emit("s", "evt", n=2) is None  # disabled: skipped entirely
    assert [r.data["n"] for r in seen] == [1]
    assert len(trace.records) == 1  # ring skipped as well
    trace.enabled = True
    trace.emit("s", "evt", n=3)  # re-enabled: delivered again
    assert [r.data["n"] for r in seen] == [1, 3]


def test_sinks_receive_records_even_while_disabled(kernel):
    """Sinks observe the full stream regardless of retention state."""
    from repro.obs.sinks import CallbackSink

    trace = kernel.trace
    seen = []
    trace.add_sink(CallbackSink(seen.append))
    trace.emit("s", "evt", n=1)
    trace.enabled = False
    record = trace.emit("s", "evt", n=2)
    assert record is not None  # sink delivery builds the record
    assert [r.data["n"] for r in seen] == [1, 2]
    assert len(trace.records) == 1  # ring still skipped while disabled


def test_remove_sink_stops_delivery(kernel):
    from repro.obs.sinks import CallbackSink

    trace = kernel.trace
    seen = []
    sink = trace.add_sink(CallbackSink(seen.append))
    trace.emit("s", "evt", n=1)
    trace.remove_sink(sink)
    trace.emit("s", "evt", n=2)
    assert [r.data["n"] for r in seen] == [1]
    assert trace.sinks == []


def test_format_renders_fields(kernel):
    record = kernel.trace.emit("comp", "went_bad", severity=Severity.ERROR, code=7)
    line = record.format()
    assert "comp" in line
    assert "went_bad" in line
    assert "code=7" in line
    assert "error" in line


def test_dump_limits_lines(kernel):
    for n in range(5):
        kernel.trace.emit("s", "evt", n=n)
    dump = kernel.trace.dump(limit=2)
    assert dump.count("\n") == 1
