"""Tests for PeriodicTimer."""

import pytest

from repro.errors import SimulationError
from repro.sim.timers import PeriodicTimer


def test_fires_every_period(kernel):
    ticks = []
    PeriodicTimer(kernel, 1.0, lambda: ticks.append(kernel.now))
    kernel.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_start_delay_zero_fires_immediately(kernel):
    ticks = []
    PeriodicTimer(kernel, 1.0, lambda: ticks.append(kernel.now), start_delay=0.0)
    kernel.run(until=2.5)
    assert ticks == [0.0, 1.0, 2.0]


def test_cancel_stops_firing(kernel):
    ticks = []
    timer = PeriodicTimer(kernel, 1.0, lambda: ticks.append(kernel.now))
    kernel.call_after(2.5, timer.cancel)
    kernel.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert not timer.running


def test_tick_counter(kernel):
    timer = PeriodicTimer(kernel, 0.5, lambda: None)
    kernel.run(until=2.0)
    assert timer.ticks == 4


def test_callback_may_cancel_timer(kernel):
    timer_box = []

    def callback():
        timer_box[0].cancel()

    timer_box.append(PeriodicTimer(kernel, 1.0, callback))
    kernel.run(until=5.0)
    assert timer_box[0].ticks == 1


def test_jitter_varies_intervals_but_keeps_mean(kernel):
    ticks = []
    PeriodicTimer(
        kernel,
        1.0,
        lambda: ticks.append(kernel.now),
        jitter=0.2,
        rng=kernel.rngs.stream("jitter"),
    )
    kernel.run(until=1000.0)
    intervals = [b - a for a, b in zip(ticks, ticks[1:])]
    assert len(set(round(i, 9) for i in intervals)) > 10  # actually jittered
    mean = sum(intervals) / len(intervals)
    assert mean == pytest.approx(1.0, rel=0.02)
    assert all(0.8 <= i <= 1.2 for i in intervals)


def test_invalid_parameters_rejected(kernel):
    with pytest.raises(SimulationError):
        PeriodicTimer(kernel, 0.0, lambda: None)
    with pytest.raises(SimulationError):
        PeriodicTimer(kernel, 1.0, lambda: None, jitter=-0.1)
    with pytest.raises(SimulationError):
        PeriodicTimer(kernel, 1.0, lambda: None, jitter=0.5)  # jitter needs rng
    with pytest.raises(SimulationError):
        PeriodicTimer(
            kernel, 1.0, lambda: None, jitter=1.0, rng=kernel.rngs.stream("x")
        )
