"""Tests for SimEvent one-shot signalling and combinators."""

import pytest

from repro.sim.event import SimEvent, all_of, first_of


def test_event_starts_untriggered():
    event = SimEvent("e")
    assert not event.triggered
    assert event.value is None


def test_trigger_delivers_value_to_listener():
    event = SimEvent("e")
    seen = []
    event.add_listener(seen.append)
    event.trigger(42)
    assert seen == [42]
    assert event.triggered
    assert event.value == 42


def test_listener_added_after_trigger_runs_immediately():
    event = SimEvent("e")
    event.trigger("x")
    seen = []
    event.add_listener(seen.append)
    assert seen == ["x"]


def test_double_trigger_raises():
    event = SimEvent("e")
    event.trigger()
    with pytest.raises(RuntimeError):
        event.trigger()


def test_multiple_listeners_all_fire_in_order():
    event = SimEvent("e")
    seen = []
    event.add_listener(lambda v: seen.append(("a", v)))
    event.add_listener(lambda v: seen.append(("b", v)))
    event.trigger(1)
    assert seen == [("a", 1), ("b", 1)]


def test_first_of_fires_on_earliest():
    events = [SimEvent(str(i)) for i in range(3)]
    combined = first_of(events)
    events[1].trigger("mid")
    assert combined.triggered
    assert combined.value == (1, "mid")


def test_first_of_ignores_later_triggers():
    events = [SimEvent(str(i)) for i in range(2)]
    combined = first_of(events)
    events[0].trigger("first")
    events[1].trigger("second")
    assert combined.value == (0, "first")


def test_first_of_with_already_triggered_input():
    event = SimEvent("pre")
    event.trigger("early")
    combined = first_of([event, SimEvent("other")])
    assert combined.triggered
    assert combined.value == (0, "early")


def test_all_of_waits_for_every_input():
    events = [SimEvent(str(i)) for i in range(3)]
    combined = all_of(events)
    events[0].trigger("a")
    events[2].trigger("c")
    assert not combined.triggered
    events[1].trigger("b")
    assert combined.triggered
    assert combined.value == ["a", "b", "c"]


def test_all_of_empty_triggers_immediately():
    combined = all_of([])
    assert combined.triggered
    assert combined.value == []
