"""Tests for the simulated clock."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import Clock


def test_starts_at_zero_by_default():
    assert Clock().now == 0.0


def test_starts_at_given_time():
    assert Clock(start=5.5).now == 5.5


def test_negative_start_rejected():
    with pytest.raises(ClockError):
        Clock(start=-0.1)


def test_advance_moves_forward():
    clock = Clock()
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_advance_to_same_instant_is_allowed():
    clock = Clock(start=2.0)
    clock.advance_to(2.0)
    assert clock.now == 2.0


def test_advance_backwards_rejected():
    clock = Clock(start=2.0)
    with pytest.raises(ClockError):
        clock.advance_to(1.999)


def test_repeated_advances_accumulate():
    clock = Clock()
    for step in (0.5, 1.0, 1.5):
        clock.advance_to(step)
    assert clock.now == 1.5
