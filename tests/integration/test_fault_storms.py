"""Randomized fault storms: the supervisor must always reach quiescence.

A liveness property over the whole stack: whatever sequence of component
crashes (including joint-curable ones and overlapping arrivals) hits the
station, once the storm ends the supervisor drains every failure and the
station returns to all-up with no stuck restart actions.  This is the class
of test that caught the three wedges fixed during development (zombie bus
channels, the all-running batch gate, and mid-start kills).
"""

import random

import pytest

from repro.mercury.station import MercuryStation
from repro.mercury.trees import TREE_BUILDERS

STORM_SEEDS = [7, 21, 99]
TREES = ["II", "III", "IV", "V"]


def storm(station, rng, rounds):
    """Inject `rounds` random failures with random gaps and cure sets."""
    components = list(station.station_components)
    for _ in range(rounds):
        station.run_for(rng.uniform(0.2, 12.0))
        component = rng.choice(components)
        process = station.manager.get(component)
        if not process.is_running:
            continue  # already down; the storm rages on elsewhere
        if component in ("fedr", "pbcom") and rng.random() < 0.3:
            station.injector.inject_joint(component, ["fedr", "pbcom"])
        else:
            station.injector.inject_simple(component)


@pytest.mark.parametrize("tree_label", TREES)
@pytest.mark.parametrize("seed", STORM_SEEDS)
def test_storm_always_drains(tree_label, seed):
    station = MercuryStation(tree=TREE_BUILDERS[tree_label](), seed=seed)
    station.boot()
    rng = random.Random(seed * 1000 + len(tree_label))
    storm(station, rng, rounds=12)
    station.run_until_quiescent(timeout=600.0)
    assert station.all_station_running()
    assert not station.injector.active_failures
    assert station.supervisor_idle()
    # No failure was abandoned: every one was restart-curable (A_cure).
    assert not station.trace.filter(kind="operator_escalation")


@pytest.mark.parametrize("seed", STORM_SEEDS)
def test_storm_with_faulty_oracle_drains(seed):
    station = MercuryStation(
        tree=TREE_BUILDERS["IV"](), seed=seed, oracle="faulty", oracle_error_rate=0.5
    )
    station.boot()
    rng = random.Random(seed)
    storm(station, rng, rounds=10)
    station.run_until_quiescent(timeout=900.0)
    assert station.all_station_running()
    assert not station.injector.active_failures


@pytest.mark.parametrize("seed", STORM_SEEDS)
def test_storm_on_abstract_supervisor_drains(seed):
    station = MercuryStation(
        tree=TREE_BUILDERS["V"](), seed=seed, supervisor="abstract"
    )
    station.manager.start_all(station.station_components)
    station.kernel.run(until=60.0)
    rng = random.Random(seed + 5)
    storm(station, rng, rounds=15)
    station.run_until_quiescent(timeout=600.0)
    assert station.all_station_running()
    assert not station.injector.active_failures
