"""Station-level tests for the crash-only recovery plane.

Three contracts, each pinned end to end on a full Mercury station:

* **graceful degradation** — a microreboot planned against a dead store
  detects the outage within the timeout ladder, falls back to a plain
  cold restart, and the extra session loss is accounted honestly (the
  regression the strategy comparison depends on);
* **recursive self-recovery** — REC shot mid-recovery is restarted
  crash-only by FD's watchdog tier, the fresh incarnation reconciles the
  half-done episode, and the stale pre-crash plan is *fenced* by the
  generation guard instead of executing;
* **oracle continuity** — the learning oracle's estimates ride the store
  across a REC restart (and are honestly lost when the store is down).
"""

import pytest

from repro.core.oracle import LearningOracle
from repro.faults.store_faults import StoreFaultModel
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_iii, tree_v


def _recover_ses(seed, store_down):
    """One ses failure on tree III under the microreboot strategy; the
    store is optionally crashed for the whole recovery window."""
    station = MercuryStation(tree=tree_iii(), seed=seed, strategy="microreboot")
    station.boot()
    station.run_until_quiescent()
    station.run_for(5.0)  # let the ses/str handshake externalize sessions
    assert station.session_store.has_session("ses")
    if store_down:
        model = StoreFaultModel(station.kernel)
        station.session_store.attach_faults(model)
        model.crash(60.0)
    failure = station.injector.inject_simple("ses")
    station.run_until_recovered(failure)
    station.run_until_quiescent()
    assert station.all_station_running()
    return station


def test_microreboot_dead_store_falls_back_to_restart():
    """Satellite regression: same seed, same fault — the only difference
    is the store's health, and the delta must be visible as a fallback
    plus extra session loss."""
    healthy = _recover_ses(101, store_down=False)
    degraded = _recover_ses(101, store_down=True)

    # Healthy store: the microreboot restored the externalized session.
    assert not healthy.trace.filter(kind="strategy_fallback")
    assert healthy.trace.filter(kind="session_restored", component="ses")
    lost_healthy = healthy.session_store.sessions_lost

    # Dead store: the plan probe burned the retry ladder and degraded.
    # (The cold ses restart induces the correlated str failure, whose
    # recovery falls back too — every fallback must hold the discipline.)
    fallbacks = degraded.trace.filter(kind="strategy_fallback")
    assert fallbacks
    for record in fallbacks:
        assert record.data["strategy"] == "microreboot"
        assert record.data["fallback"] == "restart"
        assert record.data["reason"] == "store-unavailable"
        assert record.data["waited"] == pytest.approx(0.35)  # crash ladder
    assert fallbacks[0].data["cell"] == "R_ses"
    # Announced at the same instant as (and before) the order it explains.
    order = degraded.trace.filter(kind="restart_ordered")[0]
    assert fallbacks[0].time == pytest.approx(order.time)
    assert order.data["strategy"] == "microreboot"
    assert not degraded.trace.filter(kind="session_restored", component="ses")

    # The honest cost: the cold fallback dropped the session the healthy
    # microreboot would have preserved.
    lost_degraded = degraded.session_store.sessions_lost
    assert lost_healthy == 0
    assert lost_degraded > lost_healthy
    assert degraded.trace.filter(kind="session_lost", component="ses")


def test_rec_killed_mid_recovery_fences_stale_plan():
    """The ISSUE-pinned fencing regression on the full FD/REC pair: REC
    dies with a restart action in flight; the restarted incarnation must
    reconcile the episode and fence the dead incarnation's callbacks."""
    station = MercuryStation(tree=tree_v(), seed=202, strategy="microreboot")
    station.boot()
    station.run_until_quiescent()
    station.run_for(5.0)
    failure = station.injector.inject_simple("rtu")
    deadline = station.kernel.now + 60.0
    while not station.trace.filter(kind="restart_ordered"):
        assert station.kernel.now < deadline
        station.kernel.step()
    # Shoot REC while its plan is mid-flight — late enough that the rtu
    # restart completes at the manager level while REC is down, so the
    # fresh incarnation reconciles the episode to observing and orders
    # nothing new.  That leaves the dead incarnation's restart watchdog
    # (authored with the old generation) as the one stale callback, due
    # at order + restart_timeout; it must fence, not re-kick.
    ordered_at = station.kernel.now
    station.run_for(3.5)
    station.injector.inject_simple("rec", kind="flap")
    station.run_for(120.0)

    restarted = station.trace.filter(kind="supervisor_restarted")
    assert restarted and restarted[0].data["supervisor"] == "rec"
    assert restarted[0].data["generation"] >= 2
    assert restarted[0].data["reconciled"] == 1  # the rtu episode survived
    fenced = station.trace.filter(kind="plan_fenced")
    assert fenced, "the dead incarnation's restart watchdog never fenced"
    assert fenced[0].data["stale_generation"] < fenced[0].data["generation"]
    assert fenced[0].time == pytest.approx(ordered_at + 90.0)  # restart_timeout
    # Fenced means fenced: the stale watchdog ordered nothing new.
    assert len(station.trace.filter(kind="restart_ordered")) == 1
    # FD dropped its stale suppression view when it restarted REC.
    ends = station.trace.filter(kind="suppression_end")
    assert any(r.data.get("reason") == "supervisor-restart" for r in ends)
    station.run_until_quiescent()
    assert station.all_station_running()
    assert not station.injector.is_active(failure.failure_id)


def test_rec_restart_rebuilds_learning_oracle_from_store():
    oracle = LearningOracle(min_samples=1, confidence=0.5)
    station = MercuryStation(
        tree=tree_v(), seed=303, strategy="microreboot", oracle=oracle
    )
    station.boot()
    station.run_until_quiescent()
    station.run_for(2.0)
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    station.run_until_quiescent()
    assert station.session_store.load_snapshot("oracle") is not None
    trained = oracle.export_state()
    assert trained["attempts"]

    station.injector.inject_simple("rec", kind="flap")
    station.run_for(30.0)
    rebuilt = station.trace.filter(kind="oracle_rebuilt")
    assert rebuilt and rebuilt[-1].data["origin"] == "store"
    assert rebuilt[-1].data["entries"] >= 1
    assert oracle.export_state() == trained  # estimates survived the crash
    station.run_until_quiescent()
    assert station.all_station_running()


def test_rec_restart_with_dead_store_starts_naive():
    oracle = LearningOracle(min_samples=1, confidence=0.5)
    station = MercuryStation(
        tree=tree_v(), seed=404, strategy="microreboot", oracle=oracle
    )
    station.boot()
    station.run_until_quiescent()
    station.run_for(2.0)
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    station.run_until_quiescent()
    assert oracle.export_state()["attempts"]

    model = StoreFaultModel(station.kernel)
    station.session_store.attach_faults(model)
    model.crash(30.0)
    station.injector.inject_simple("rec", kind="flap")
    station.run_for(10.0)
    rebuilt = station.trace.filter(kind="oracle_rebuilt")
    assert rebuilt and rebuilt[-1].data["origin"] == "naive"
    # Honest amnesia: the estimates died with the process.
    assert not oracle.export_state()["attempts"]
    station.run_for(60.0)
    station.run_until_quiescent()
    assert station.all_station_running()


def test_classic_station_emits_no_crash_only_events():
    """The whole plane is inert without strategies: a classic station,
    even one whose REC is shot, emits none of the new kinds."""
    station = MercuryStation(tree=tree_v(), seed=505)
    station.boot()
    station.run_until_quiescent()
    station.run_for(2.0)
    failure = station.injector.inject_simple("ses")
    station.run_for(1.0)
    station.injector.inject_simple("rec", kind="flap")
    station.run_for(120.0)
    assert station.all_station_running()
    assert not station.injector.is_active(failure.failure_id)
    for kind in (
        "supervisor_restarted", "plan_fenced", "oracle_rebuilt",
        "strategy_fallback", "store_crashed", "store_op_timeout",
    ):
        assert not station.trace.filter(kind=kind), kind
    # The classic wedge the plane exists to fix, preserved verbatim: REC
    # died mid-episode and nobody reconciled, so the episode stays open
    # in `restarting` forever even though every process is back up.
    wedged = station.policy.open_episodes()
    assert len(wedged) == 1 and wedged[0].state == "restarting"
