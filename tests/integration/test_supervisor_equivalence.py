"""Full FD/REC stack vs the collapsed fast path: distributions must agree.

The abstract supervisor exists so month-scale availability runs are
tractable; its validity rests on producing the *same recovery-time
distribution* as the full stack.  These tests compare the two beyond the
single-cell check in the recovery-harness tests.
"""

import pytest

from repro.experiments.recovery import measure_recovery
from repro.mercury.trees import tree_i, tree_iii, tree_iv, tree_v

TRIALS = 12


@pytest.mark.parametrize(
    ("tree_builder", "component"),
    [
        (tree_i, "rtu"),        # whole-system restart path
        (tree_iii, "ses"),      # lone restart + induced peer episode
        (tree_iv, "str"),       # consolidated joint restart
        (tree_v, "pbcom"),      # promoted cell (joint via annotation)
    ],
)
def test_means_agree(tree_builder, component):
    full = measure_recovery(
        tree_builder(), component, trials=TRIALS, seed=131, supervisor="full"
    )
    fast = measure_recovery(
        tree_builder(), component, trials=TRIALS, seed=131, supervisor="abstract"
    )
    assert fast.mean == pytest.approx(full.mean, rel=0.05)


def test_escalation_paths_agree():
    """A guess-too-low chain must cost the same under both supervisors."""
    kwargs = dict(
        cure_set=("fedr", "pbcom"), oracle="faulty", oracle_error_rate=1.0,
        trials=8, seed=132,
    )
    full = measure_recovery(tree_iv(), "pbcom", supervisor="full", **kwargs)
    fast = measure_recovery(tree_iv(), "pbcom", supervisor="abstract", **kwargs)
    assert fast.mean == pytest.approx(full.mean, rel=0.06)
    # Both paid the double restart on every trial.
    assert full.mean > 40.0
    assert fast.mean > 40.0


def test_induced_failure_counts_agree():
    from repro.mercury.station import MercuryStation

    def induced(supervisor):
        station = MercuryStation(tree=tree_iii(), seed=133, supervisor=supervisor)
        if supervisor == "full":
            station.boot()
        else:
            station.manager.start_all(station.station_components)
            station.kernel.run(until=60.0)
        station.injector.inject_simple("ses")
        station.run_until_quiescent(timeout=120.0)
        return len(station.trace.filter(kind="failure_induced"))

    assert induced("full") == induced("abstract") == 1
