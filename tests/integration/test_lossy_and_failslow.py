"""Station-level tests for the fault fabric and the fail-slow taxonomy.

These exercise the full FD/REC stack: zombies that answer pings but drop
work (unmasked only by end-to-end probes), hangs that answer nothing,
partitions the adaptive detector must hold fire through, and lossy links
whose false positives the adaptive detector retracts.
"""

import pytest

from repro.errors import ExperimentError
from repro.mercury.config import PAPER_CONFIG
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_v
from repro.obs import events as ev


def make_station(seed, net_faults=False, **overrides):
    config = PAPER_CONFIG.with_overrides(**overrides) if overrides else PAPER_CONFIG
    station = MercuryStation(
        tree=tree_v(),
        config=config,
        seed=seed,
        supervisor="full",
        trace_capacity=50_000,
        net_faults=net_faults,
    )
    station.boot()
    station.run_until_quiescent()
    return station


# ----------------------------------------------------------------------
# fail-slow taxonomy: hang and zombie
# ----------------------------------------------------------------------

def test_hang_keeps_process_alive_but_silent_until_restarted():
    station = make_station(seed=201)
    failure = station.injector.inject_simple("ses", kind="hang")
    process = station.manager.get("ses")
    assert process.is_running and process.degraded_mode == "hang"
    # The injection is invisible to the process lifecycle...
    assert not station.trace.filter(kind=ev.PROCESS_FAILED)
    assert station.trace.filter(kind=ev.PROCESS_DEGRADED)
    # ...but a hang stops answering pings, so the ping path catches it.
    recovery = station.run_until_recovered(failure)
    assert recovery < 40.0
    assert station.manager.get("ses").degraded_mode is None  # restart cures
    detections = station.trace.filter(kind=ev.DETECTION)
    assert any(r.data.get("component") == "ses" for r in detections)


def test_zombie_survives_pings_and_needs_e2e_probe():
    station = make_station(seed=202, probe_period=2.0)
    failure = station.injector.inject_simple("str", kind="zombie")
    assert station.manager.get("str").degraded_mode == "zombie"
    recovery = station.run_until_recovered(failure)
    assert recovery < 60.0
    assert station.manager.get("str").degraded_mode is None
    # Only the end-to-end probe can have seen it: the declaration must be
    # attributed to the probe path, not the ping path.
    declared = [
        r for r in station.trace.filter(kind=ev.DETECTION)
        if r.data.get("component") == "str"
    ]
    assert declared and all(r.data.get("via") == "probe" for r in declared)


def test_zombie_without_probes_stays_undetected():
    """With probing disabled (the paper's plain FD), a zombie is invisible:
    it answers every ping, so no detection and no restart ever happen."""
    station = make_station(seed=203)  # probe_period = 0.0 (disabled)
    station.injector.inject_simple("rtu", kind="zombie")
    station.run_for(30.0)
    assert station.manager.get("rtu").degraded_mode == "zombie"
    declared = [
        r for r in station.trace.filter(kind=ev.DETECTION)
        if r.data.get("component") == "rtu"
    ]
    assert not declared


# ----------------------------------------------------------------------
# partitions: the adaptive detector holds fire
# ----------------------------------------------------------------------

def test_adaptive_detector_holds_fire_through_partition():
    station = make_station(seed=204, net_faults=True, timeout_policy="adaptive")
    faults = station.network.faults
    faults.partition("fd", "mbus", 8.0)
    station.run_for(10.0)
    station.run_until_quiescent(timeout=120.0)
    # Every ping in flight went silent at once; the detector must suspect
    # the network, not declare the whole station dead.
    assert station.trace.filter(kind=ev.PARTITION_SUSPECTED)
    assert not station.trace.filter(kind=ev.DETECTION_FALSE_POSITIVE)
    assert not station.trace.filter(kind=ev.RESTART_ORDERED)
    assert station.all_station_running()


def test_fixed_detector_mass_declares_through_partition():
    """The contrast case motivating partition awareness: the paper's fixed
    single-miss detector treats a partition as mass component death."""
    station = make_station(seed=204, net_faults=True, timeout_policy="fixed")
    station.network.faults.partition("fd", "mbus", 8.0)
    station.run_for(10.0)
    assert station.trace.filter(kind=ev.DETECTION_FALSE_POSITIVE)
    station.network.faults.clear()
    station.run_until_quiescent(timeout=300.0)
    assert station.all_station_running()


# ----------------------------------------------------------------------
# lossy links: retraction
# ----------------------------------------------------------------------

def test_adaptive_detector_retracts_loss_induced_declarations():
    station = make_station(seed=205, net_faults=True, timeout_policy="adaptive")
    station.network.faults.degrade(drop=0.2, spike_probability=0.2)
    station.run_for(60.0)
    retractions = station.trace.filter(kind=ev.DETECTION_RETRACTED)
    assert retractions, "60 s at 20% drop must produce at least one retraction"
    # Each retraction reached REC and purged the pending report.
    assert len(station.trace.filter(kind=ev.REPORT_RETRACTED)) == len(retractions)
    station.network.faults.clear()
    station.run_until_quiescent(timeout=300.0)
    assert station.all_station_running()


# ----------------------------------------------------------------------
# the abstract supervisor's no-network-faults precondition
# ----------------------------------------------------------------------

def test_abstract_supervisor_refuses_fault_fabric():
    with pytest.raises(ExperimentError, match="abstract"):
        MercuryStation(tree=tree_v(), seed=1, supervisor="abstract",
                       net_faults=True)


def test_abstract_supervisor_fine_without_fault_fabric():
    station = MercuryStation(tree=tree_v(), seed=1, supervisor="abstract")
    station.boot()
    station.run_until_quiescent()
    assert station.all_station_running()
