"""Long multi-fault scenarios on the full-fidelity station."""

from repro.experiments.metrics import UptimeTracker
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_iii, tree_v


def test_station_survives_failure_storm():
    """Twenty mixed failures in sequence; the station must always recover."""
    station = MercuryStation(tree=tree_v(), seed=91)
    station.boot()
    components = ["rtu", "ses", "fedr", "mbus", "str", "fedr", "pbcom"]
    for index in range(20):
        station.run_until_quiescent()
        station.run_for(1.0 + (index % 5) * 0.7)
        component = components[index % len(components)]
        failure = station.injector.inject_simple(component)
        recovery = station.run_until_recovered(failure)
        assert recovery < 40.0, (index, component)
    station.run_until_quiescent()
    assert station.all_station_running()


def test_steady_faults_full_fidelity_half_day():
    """The full FD/REC stack (not the abstract path) under natural Table 1
    arrivals for half a simulated day."""
    station = MercuryStation(
        tree=tree_v(), seed=92, steady_faults=True,
        solution_period=60.0, trace_capacity=50_000,
    )
    station.boot()
    tracker = UptimeTracker(station.manager, station.station_components)
    station.run_for(43200.0)
    tracker.finalize()
    # fedr alone fails ~72 times; everything must keep recovering.
    assert tracker.failures_of("fedr") > 30
    assert tracker.system_availability() > 0.95
    assert not station.trace.filter(kind="operator_escalation")


def test_overlapping_failures_both_recover():
    station = MercuryStation(tree=tree_v(), seed=93)
    station.boot()
    f1 = station.injector.inject_simple("pbcom")  # slow joint restart
    station.run_for(5.0)
    f2 = station.injector.inject_simple("rtu")  # fast, queued behind pbcom
    r1 = station.run_until_recovered(f1)
    r2 = station.run_until_recovered(f2)
    assert r1 < 60.0 and r2 < 60.0
    station.run_until_quiescent()
    assert station.all_station_running()


def test_failure_during_restart_of_other_group():
    station = MercuryStation(tree=tree_v(), seed=94)
    station.boot()
    f1 = station.injector.inject_simple("ses")
    station.run_for(2.0)  # ses/str restart in flight
    f2 = station.injector.inject_simple("fedr")
    station.run_until_recovered(f1)
    station.run_until_recovered(f2)
    station.run_until_quiescent()
    assert station.all_station_running()


def test_correlated_cascade_tree_iii_settles():
    """ses failure -> lone restart -> induced str failure -> lone restart,
    and the cascade must stop there (no infinite ping-pong)."""
    station = MercuryStation(tree=tree_iii(), seed=95)
    station.boot()
    station.injector.inject_simple("ses")
    station.run_until_quiescent(timeout=120.0)
    induced = station.trace.filter(kind="failure_induced")
    assert len(induced) == 1
    restarts = station.trace.filter(kind="restart_ordered")
    assert len(restarts) == 2  # R_ses then R_str


def test_learning_oracle_converges_live():
    from repro.core.oracle import LearningOracle

    oracle = LearningOracle(min_samples=2, confidence=0.6)
    station = MercuryStation(tree=tree_iii(), seed=96, oracle=oracle)
    station.boot()
    samples = []
    for _ in range(8):
        station.run_until_quiescent()
        station.run_for(0.5)
        failure = station.injector.inject_joint("pbcom", ["fedr", "pbcom"])
        samples.append(station.run_until_recovered(failure))
    # Early episodes pay guess-too-low escalation; late ones do not.
    assert sum(samples[:2]) / 2 > sum(samples[-2:]) / 2 + 10.0
    assert oracle.f_estimates("pbcom")["R_fedr_pbcom"] == 1.0
