"""End-to-end shape tests: the paper's claims, at reduced trial counts.

These are the DESIGN.md "shape criteria" — orderings and ratios from the
paper's evaluation, which must hold regardless of calibration details.  The
benches re-run them at the paper's full 100 trials.
"""

import pytest

from repro.experiments.recovery import measure_recovery
from repro.mercury.trees import tree_i, tree_ii, tree_iii, tree_iv, tree_v

TRIALS = 10


def mean_recovery(tree, component, seed, **kw):
    return measure_recovery(tree, component, trials=TRIALS, seed=seed, **kw).mean


# ----------------------------------------------------------------------
# Shape 1 — depth augmentation (Table 2): tree II beats tree I everywhere,
# most for cheap components.
# ----------------------------------------------------------------------


def test_tree_ii_beats_tree_i_for_every_component():
    for component in ("mbus", "ses", "str", "rtu", "fedrcom"):
        t1 = mean_recovery(tree_i(), component, seed=81)
        t2 = mean_recovery(tree_ii(), component, seed=81)
        assert t2 < t1, component


def test_depth_augmentation_win_largest_for_cheap_components():
    win_rtu = mean_recovery(tree_i(), "rtu", 82) / mean_recovery(tree_ii(), "rtu", 82)
    win_fedrcom = mean_recovery(tree_i(), "fedrcom", 82) / mean_recovery(
        tree_ii(), "fedrcom", 82
    )
    assert win_rtu > 3.5  # paper: 24.75/5.59 ≈ 4.4
    assert win_fedrcom < 1.5  # paper: 24.75/20.93 ≈ 1.18
    assert win_rtu > win_fedrcom


# ----------------------------------------------------------------------
# Shape 2 — the fedrcom split (§4.2): common failures get cheap, rare ones
# stay expensive.
# ----------------------------------------------------------------------


def test_split_makes_common_failure_cheap():
    fedrcom = mean_recovery(tree_ii(), "fedrcom", 83)
    fedr = mean_recovery(tree_iii(), "fedr", 83)
    pbcom = mean_recovery(tree_iii(), "pbcom", 83)
    assert fedr < fedrcom / 3  # paper: 5.76 vs 20.93
    assert pbcom == pytest.approx(fedrcom, rel=0.1)  # paper: 21.24 vs 20.93


# ----------------------------------------------------------------------
# Shape 3 — consolidation (§4.3): max() instead of sum() for ses/str.
# ----------------------------------------------------------------------


def test_consolidation_improves_ses_str():
    ses_iii = mean_recovery(tree_iii(), "ses", 84)
    ses_iv = mean_recovery(tree_iv(), "ses", 84)
    str_iii = mean_recovery(tree_iii(), "str", 84)
    str_iv = mean_recovery(tree_iv(), "str", 84)
    assert ses_iv < ses_iii  # paper: 6.25 < 9.50
    assert str_iv < str_iii  # paper: 6.11 < 9.76
    # Episode + induced-peer episode under III costs roughly
    # MTTR_ses + MTTR_str; under IV one episode at max(...).
    assert ses_iv == pytest.approx(6.25, abs=0.7)


def test_consolidation_eliminates_induced_failures():
    from repro.mercury.station import MercuryStation

    def induced_count(tree):
        station = MercuryStation(tree=tree, seed=85)
        station.boot()
        failure = station.injector.inject_simple("ses")
        station.run_until_recovered(failure)
        station.run_until_quiescent()
        return len(station.trace.filter(kind="failure_induced"))

    assert induced_count(tree_iii()) == 1
    assert induced_count(tree_iv()) == 0


# ----------------------------------------------------------------------
# Shape 4 — node promotion (§4.4): V beats IV only under a faulty oracle.
# ----------------------------------------------------------------------


def test_node_promotion_helps_only_faulty_oracle():
    kw = dict(cure_set=("fedr", "pbcom"))
    iv_perfect = mean_recovery(tree_iv(), "pbcom", 86, **kw)
    v_perfect = mean_recovery(tree_v(), "pbcom", 86, **kw)
    iv_faulty = mean_recovery(
        tree_iv(), "pbcom", 86, oracle="faulty", oracle_error_rate=1.0, **kw
    )
    v_faulty = mean_recovery(
        tree_v(), "pbcom", 86, oracle="faulty", oracle_error_rate=1.0, **kw
    )
    # Perfect oracle: "there is nothing that a perfect oracle could do in
    # tree V but not in tree IV".
    assert v_perfect == pytest.approx(iv_perfect, abs=0.5)
    # Faulty oracle pays double restarts in IV but not in V.
    assert v_faulty < iv_faulty - 15.0
    assert v_faulty == pytest.approx(v_perfect, abs=0.5)


# ----------------------------------------------------------------------
# Shape 5 — §3.2 group inequalities, measured.
# ----------------------------------------------------------------------


def test_group_mttr_at_least_max_of_members():
    """Tree I (the whole-system group) recovers no faster than its slowest
    member alone (tree II's fedrcom column)."""
    group = mean_recovery(tree_i(), "rtu", 87)
    slowest_alone = mean_recovery(tree_ii(), "fedrcom", 87)
    assert group >= slowest_alone - 0.2


# ----------------------------------------------------------------------
# Headline — §8: "recovery time improved by a factor of four".
# ----------------------------------------------------------------------


def test_headline_factor_of_four():
    baseline = mean_recovery(tree_i(), "rtu", 88)
    evolved = mean_recovery(tree_v(), "rtu", 88)
    assert baseline / evolved > 3.5
