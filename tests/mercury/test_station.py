"""Tests for station assembly and end-to-end recovery wiring."""

import pytest

from repro.core.oracle import LearningOracle
from repro.errors import ExperimentError
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_i, tree_ii, tree_iii, tree_v


def test_boot_brings_everything_up():
    station = MercuryStation(tree=tree_v(), seed=1)
    station.boot()
    assert station.all_station_running()
    assert station.manager.get("fd").is_running
    assert station.manager.get("rec").is_running


def test_component_set_follows_tree_generation():
    assert "fedrcom" in MercuryStation(tree=tree_i(), seed=1).manager.names
    split = MercuryStation(tree=tree_v(), seed=1)
    assert "fedr" in split.manager.names and "pbcom" in split.manager.names
    assert "fedrcom" not in split.manager.names


def test_tree_component_mismatch_rejected():
    from repro.core.tree import RestartTree, cell

    wrong = RestartTree(cell("root", ["nonsense"]))
    with pytest.raises(ExperimentError):
        MercuryStation(tree=wrong, seed=1)


def test_unknown_oracle_rejected():
    with pytest.raises(ExperimentError):
        MercuryStation(tree=tree_v(), seed=1, oracle="psychic")


def test_unknown_supervisor_rejected():
    with pytest.raises(ExperimentError):
        MercuryStation(tree=tree_v(), seed=1, supervisor="none-of-the-above")


def test_oracle_instance_accepted():
    oracle = LearningOracle()
    station = MercuryStation(tree=tree_v(), seed=1, oracle=oracle)
    assert station.oracle is oracle


def test_supervisor_none_leaves_recovery_to_caller():
    station = MercuryStation(tree=tree_v(), seed=1, supervisor="none")
    station.manager.start_all(station.station_components)
    station.kernel.run(until=60.0)
    failure = station.injector.inject_simple("rtu")
    station.run_for(30.0)
    assert station.injector.is_active(failure.failure_id)  # nobody recovers
    station.manager.restart(["rtu"])
    station.run_for(30.0)
    assert not station.injector.is_active(failure.failure_id)


def test_abstract_supervisor_recovery():
    station = MercuryStation(tree=tree_v(), seed=2, supervisor="abstract")
    station.manager.start_all(station.station_components)
    station.kernel.run(until=60.0)
    failure = station.injector.inject_simple("rtu")
    recovery = station.run_until_recovered(failure)
    assert 5.0 < recovery < 7.0


def test_full_supervisor_recovery_matches_paper_band():
    station = MercuryStation(tree=tree_v(), seed=3)
    station.boot()
    failure = station.injector.inject_simple("rtu")
    recovery = station.run_until_recovered(failure)
    assert recovery == pytest.approx(5.59, abs=0.7)


def test_hardware_reflects_restart():
    station = MercuryStation(tree=tree_v(), seed=4)
    station.boot()
    assert station.hardware.serial.holder == "pbcom"
    failure = station.injector.inject_simple("pbcom")
    station.run_until_recovered(failure)
    assert station.hardware.serial.holder == "pbcom"
    assert station.hardware.serial.opens >= 2  # reacquired on restart


def test_tracking_traffic_flows():
    station = MercuryStation(tree=tree_v(), seed=5)
    station.boot()
    station.run_for(30.0)
    assert station.hardware.antenna.point_count > 5
    assert station.hardware.radio.tune_count >= 1


def test_unsplit_station_radio_path():
    station = MercuryStation(tree=tree_ii(), seed=6)
    station.boot()
    station.run_for(30.0)
    assert station.hardware.radio.tune_count >= 1
    behavior = station.manager.get("fedrcom").behavior
    assert behavior.commands_applied >= 1


def test_split_station_radio_path_via_pbcom():
    station = MercuryStation(tree=tree_v(), seed=7)
    station.boot()
    station.run_for(30.0)
    fedr = station.manager.get("fedr").behavior
    pbcom = station.manager.get("pbcom").behavior
    assert fedr.pbcom_connected
    assert fedr.translated >= 1
    assert pbcom.commands_applied >= 1


def test_fedr_reconnects_after_pbcom_restart():
    station = MercuryStation(tree=tree_v(), seed=8)
    station.boot()
    failure = station.injector.inject_simple("pbcom")
    station.run_until_recovered(failure)
    station.run_for(5.0)
    assert station.manager.get("fedr").behavior.pbcom_connected


def test_run_until_quiescent_drains_cascades():
    station = MercuryStation(tree=tree_iii(), seed=9)
    station.boot()
    station.injector.inject_simple("ses")  # will induce a str failure
    station.run_until_quiescent()
    assert station.all_station_running()
    assert not station.injector.active_failures


def test_determinism_same_seed_same_recovery():
    def run(seed):
        station = MercuryStation(tree=tree_v(), seed=seed)
        station.boot()
        failure = station.injector.inject_simple("ses")
        return station.run_until_recovered(failure)

    assert run(42) == run(42)
    assert run(42) != run(43)
