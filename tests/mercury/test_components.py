"""Behavior-level tests for Mercury's components on a live station."""

import pytest

from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_ii, tree_v
from repro.xmlcmd.commands import CommandMessage


@pytest.fixture
def split_station():
    station = MercuryStation(tree=tree_v(), seed=51)
    station.boot()
    station.run_for(10.0)
    return station


def test_ses_emits_solutions(split_station):
    ses = split_station.manager.get("ses").behavior
    assert ses.solutions_sent > 0


def test_ses_idles_when_no_satellite():
    station = MercuryStation(tree=tree_v(), seed=52, solution_fn=lambda now: None)
    station.boot()
    station.run_for(20.0)
    assert station.manager.get("ses").behavior.solutions_sent == 0
    assert station.hardware.antenna.point_count == 0


def test_str_points_antenna(split_station):
    strb = split_station.manager.get("str").behavior
    assert strb.track_commands > 0
    assert split_station.hardware.antenna.last_pointed_at is not None


def test_str_rejects_malformed_track(split_station):
    from repro.bus.client import BusClient

    ops = BusClient(split_station.kernel, split_station.network, "ops")
    ops.connect()
    split_station.run_for(1.0)
    ops.send(CommandMessage("ops", "str", "track", {"azimuth": "not-a-number"}))
    split_station.run_for(1.0)
    assert split_station.trace.first("bad_track_command") is not None


def test_rtu_forwards_frequency_changes(split_station):
    rtu = split_station.manager.get("rtu").behavior
    assert rtu.tune_commands > 0
    assert split_station.manager.get("fedr").behavior.translated >= 1


def test_pbcom_owns_serial_and_radio(split_station):
    assert split_station.hardware.serial.holder == "pbcom"
    assert split_station.hardware.radio.negotiated_by == "pbcom"


def test_pbcom_rejects_garbage_line(split_station):
    fedr = split_station.manager.get("fedr").behavior
    assert fedr.pbcom_connected
    fedr._pbcom.send("GIBBERISH xyz")
    split_station.run_for(1.0)
    assert split_station.trace.first("bad_radio_command") is not None


def test_pbcom_sees_fedr_disconnects(split_station):
    pbcom = split_station.manager.get("pbcom").behavior
    before = pbcom.disconnects_seen
    failure = split_station.injector.inject_simple("fedr")
    split_station.run_until_recovered(failure)
    split_station.run_for(2.0)
    assert pbcom.disconnects_seen == before + 1
    # fedr reconnected after its restart.
    assert split_station.manager.get("fedr").behavior.pbcom_connected


def test_fedr_replays_frequency_after_reconnect(split_station):
    radio = split_station.hardware.radio
    failure = split_station.injector.inject_simple("pbcom")
    split_station.run_until_recovered(failure)
    split_station.run_for(15.0)
    # After pbcom's restart dropped the negotiation, the replayed command
    # re-tunes the radio without waiting for a frequency change.
    assert radio.ready


def test_sync_handshake_messages_flow(split_station):
    failure = split_station.injector.inject_simple("ses")
    split_station.run_until_recovered(failure)
    split_station.run_until_quiescent()
    assert split_station.all_station_running()


def test_fedrcom_monolith_applies_commands():
    station = MercuryStation(tree=tree_ii(), seed=53)
    station.boot()
    station.run_for(15.0)
    fedrcom = station.manager.get("fedrcom").behavior
    assert fedrcom.commands_applied >= 1
    assert station.hardware.serial.holder == "fedrcom"
    assert station.hardware.radio.negotiated_by == "fedrcom"


def test_fedrcom_releases_hardware_on_death():
    station = MercuryStation(tree=tree_ii(), seed=54)
    station.boot()
    station.manager.fail("fedrcom")
    assert station.hardware.serial.holder is None
    assert station.hardware.radio.negotiated_by is None
