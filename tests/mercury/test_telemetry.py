"""Tests for the downlink accounting model (§5.2 rules)."""

import pytest

from repro.errors import ExperimentError
from repro.mercury.orbit import PassWindow
from repro.mercury.telemetry import DownlinkModel, DownlinkSummary

WINDOW = PassWindow("opal", start=1000.0, duration=900.0, max_elevation_deg=60.0)


def model(bps=38400.0, break_s=15.0):
    return DownlinkModel(downlink_bps=bps, link_break_outage_s=break_s)


def test_clean_pass_receives_everything():
    outcome = model().account(WINDOW, [], [])
    assert outcome.bytes_expected == pytest.approx(38400 / 8 * 900)
    assert outcome.bytes_received == outcome.bytes_expected
    assert not outcome.link_broken
    assert outcome.loss_fraction == 0.0


def test_short_outage_loses_proportional_data():
    edges = [(1100.0, False), (1110.0, True)]  # 10s outage, below break
    outcome = model().account(WINDOW, edges, edges)
    assert outcome.bytes_lost == pytest.approx(38400 / 8 * 10)
    assert not outcome.link_broken
    assert outcome.outage_seconds == pytest.approx(10.0)


def test_long_tracking_outage_breaks_link():
    edges = [(1100.0, False), (1130.0, True)]  # 30s outage > 15s threshold
    outcome = model().account(WINDOW, edges, edges)
    assert outcome.link_broken
    assert outcome.link_broken_at == pytest.approx(1115.0)
    # Received only the first 100s.
    assert outcome.bytes_received == pytest.approx(38400 / 8 * 100)


def test_chain_outage_without_tracking_outage_does_not_break():
    chain_edges = [(1100.0, False), (1130.0, True)]  # e.g. rtu down 30s
    outcome = model().account(WINDOW, chain_edges, [])
    assert not outcome.link_broken
    assert outcome.bytes_lost == pytest.approx(38400 / 8 * 30)


def test_outage_still_open_at_pass_end_breaks_if_long():
    edges = [(1880.0, False)]  # last 20s of the pass
    outcome = model().account(WINDOW, edges, edges)
    assert outcome.link_broken
    assert outcome.link_broken_at == pytest.approx(1895.0)


def test_outage_open_at_end_but_short_does_not_break():
    edges = [(1890.0, False)]  # last 10s
    outcome = model().account(WINDOW, edges, edges)
    assert not outcome.link_broken
    assert outcome.bytes_lost == pytest.approx(38400 / 8 * 10)


def test_initially_down_chain():
    outcome = model().account(
        WINDOW, [(1050.0, True)], [], initial_chain_up=False
    )
    assert outcome.bytes_lost == pytest.approx(38400 / 8 * 50)


def test_initially_down_tracking_breaks_quickly():
    outcome = model().account(
        WINDOW, [], [(1100.0, True)], initial_tracking_up=False
    )
    assert outcome.link_broken
    assert outcome.link_broken_at == pytest.approx(1015.0)


def test_two_short_outages_do_not_break():
    edges = [
        (1100.0, False), (1110.0, True),
        (1200.0, False), (1212.0, True),
    ]
    outcome = model().account(WINDOW, edges, edges)
    assert not outcome.link_broken
    assert outcome.bytes_lost == pytest.approx(38400 / 8 * 22)


def test_edge_outside_window_rejected():
    with pytest.raises(ExperimentError):
        model().account(WINDOW, [], [(10.0, False)])


def test_whole_pass_lost_classification():
    edges = [(1000.5, False)]
    outcome = model().account(WINDOW, edges, edges)
    assert outcome.whole_pass_lost
    assert outcome.link_broken


def test_summary_aggregates():
    summary = DownlinkSummary()
    clean = model().account(WINDOW, [], [])
    broken = model().account(WINDOW, [(1000.5, False)], [(1000.5, False)])
    summary.outcomes.extend([clean, broken])
    assert summary.passes == 2
    assert summary.broken_links == 1
    assert summary.whole_passes_lost == 1
    assert summary.total_expected_bytes == pytest.approx(2 * clean.bytes_expected)
    assert 0.0 < summary.loss_fraction < 1.0


def test_empty_summary():
    summary = DownlinkSummary()
    assert summary.passes == 0
    assert summary.loss_fraction == 0.0
    assert summary.total_lost_bytes == 0.0
