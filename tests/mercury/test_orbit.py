"""Tests for the synthetic orbit / pass-prediction model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.mercury.orbit import (
    PassWindow,
    Satellite,
    default_satellites,
    iterate_passes,
    predict_passes,
)


def test_default_satellites_are_leo_like():
    sats = default_satellites()
    assert {s.name for s in sats} == {"opal", "sapphire"}
    for sat in sats:
        assert 5000 < sat.period_s < 7000
        assert 3.0 < sat.expected_passes_per_day < 5.0


def test_predicted_pass_rate_matches_expectation():
    sat = Satellite("test", period_s=5700.0, visible_fraction=0.27)
    horizon = 30 * 86400.0
    passes = predict_passes(sat, horizon)
    per_day = len(passes) / 30.0
    assert per_day == pytest.approx(sat.expected_passes_per_day, rel=0.2)


def test_pass_durations_bounded_by_max():
    sat = Satellite("test")
    for window in predict_passes(sat, 14 * 86400.0):
        assert 60.0 <= window.duration <= sat.max_pass_duration_s + 1e-9


def test_passes_sorted_and_non_overlapping_per_satellite():
    sat = Satellite("test")
    passes = predict_passes(sat, 14 * 86400.0)
    for a, b in zip(passes, passes[1:]):
        assert a.start < b.start
        assert a.end <= b.start


def test_prediction_is_deterministic():
    sat = Satellite("test", phase_offset=0.25)
    assert predict_passes(sat, 86400.0) == predict_passes(sat, 86400.0)


def test_prediction_window_respected():
    sat = Satellite("test")
    passes = predict_passes(sat, horizon_s=86400.0, start=86400.0)
    for window in passes:
        assert 86400.0 <= window.start < 2 * 86400.0


def test_iterate_passes_matches_predict():
    sat = Satellite("test")
    predicted = predict_passes(sat, 7 * 86400.0)
    iterated = []
    for window in iterate_passes(sat):
        if window.start >= 7 * 86400.0:
            break
        iterated.append(window)
    assert iterated == predicted


def test_max_elevation_in_range():
    sat = Satellite("test")
    for window in predict_passes(sat, 30 * 86400.0):
        assert 0.0 < window.max_elevation_deg <= 90.0


def test_look_angles_sweep():
    window = PassWindow("opal", start=100.0, duration=600.0, max_elevation_deg=80.0)
    azimuth_start, elevation_start = window.look_angles(100.0)
    azimuth_mid, elevation_mid = window.look_angles(400.0)
    assert elevation_mid == pytest.approx(80.0)
    assert elevation_start == pytest.approx(0.0, abs=1e-9)
    assert azimuth_mid != azimuth_start


def test_look_angles_outside_window_rejected():
    window = PassWindow("opal", start=100.0, duration=600.0, max_elevation_deg=80.0)
    with pytest.raises(ExperimentError):
        window.look_angles(99.0)


def test_contains_and_end():
    window = PassWindow("opal", start=10.0, duration=5.0, max_elevation_deg=45.0)
    assert window.end == 15.0
    assert window.contains(10.0)
    assert window.contains(14.999)
    assert not window.contains(15.0)
    assert not window.contains(9.999)


def test_invalid_satellite_parameters():
    with pytest.raises(ExperimentError):
        Satellite("bad", period_s=0.0)
    with pytest.raises(ExperimentError):
        Satellite("bad", visible_fraction=0.0)
    with pytest.raises(ExperimentError):
        Satellite("bad", visible_fraction=1.5)


def test_invalid_horizon():
    with pytest.raises(ExperimentError):
        predict_passes(Satellite("x"), horizon_s=0.0)


@given(
    phase=st.floats(min_value=0.0, max_value=0.999),
    fraction=st.floats(min_value=0.05, max_value=0.9),
)
@settings(max_examples=40, deadline=None)
def test_passes_always_valid(phase, fraction):
    sat = Satellite("h", phase_offset=phase, visible_fraction=fraction)
    for window in predict_passes(sat, 7 * 86400.0):
        assert window.duration > 0
        assert 0 < window.max_elevation_deg <= 90.0
        assert window.end > window.start
