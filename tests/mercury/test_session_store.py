"""Unit tests for the crash-only :class:`SessionStore` (PR 7 tentpole).

The store's contract is what makes microreboot/checkpoint-replay safe:
atomic replacement writes, copy-on-read (a component mutating its own
view must not corrupt the store), bounded replay logs, and cold-restart
``drop_all`` counting exactly the user-visible session losses.  Since
the store became a restartable citizen itself, the contract also covers
checksummed records: a torn or corrupted write is detected on read,
quarantined, and recovered from the last good version instead of being
trusted as-is.
"""

import pytest

from repro.faults.store_faults import (
    StoreFaultModel,
    StoreUnavailableError,
)
from repro.mercury.session_store import SessionStore
from repro.sim.kernel import Kernel


def test_session_roundtrip_and_copy_semantics():
    store = SessionStore()
    payload = {"peer": "str", "epoch": 3}
    store.save_session("ses", 10.0, payload)
    payload["epoch"] = 99  # caller mutates its own dict afterwards
    loaded = store.load_session("ses")
    assert loaded == {"peer": "str", "epoch": 3}
    loaded["epoch"] = 7  # and mutating the read view changes nothing
    assert store.load_session("ses") == {"peer": "str", "epoch": 3}
    assert store.has_session("ses")
    assert store.session_age("ses", 12.5) == 2.5
    assert store.load_session("str") is None
    assert store.session_age("str", 12.5) is None


def test_save_is_atomic_replace():
    store = SessionStore()
    store.save_session("ses", 1.0, {"epoch": 1})
    store.save_session("ses", 2.0, {"epoch": 2})
    assert store.load_session("ses") == {"epoch": 2}
    assert store.session_age("ses", 3.0) == 1.0
    assert store.sessions_saved == 2


def test_drop_session_counts_only_real_losses():
    store = SessionStore()
    assert store.drop_session("ses") is False
    assert store.sessions_lost == 0
    store.save_session("ses", 1.0, {})
    assert store.drop_session("ses") is True
    assert store.sessions_lost == 1
    assert not store.has_session("ses")


def test_mark_restored_tracks_instant_and_counter():
    store = SessionStore()
    store.save_session("ses", 1.0, {})
    assert store.restored_at("ses") is None
    store.mark_restored("ses", 5.0)
    assert store.restored_at("ses") == 5.0
    assert store.sessions_restored == 1
    # a later cold restart clears the restore evidence too
    store.drop_session("ses")
    assert store.restored_at("ses") is None


def test_checkpoint_roundtrip():
    store = SessionStore()
    store.save_checkpoint("fedr", 4.0, {"freq": 137.5})
    assert store.has_checkpoint("fedr")
    assert store.load_checkpoint("fedr") == {"freq": 137.5}
    assert store.checkpoint_age("fedr", 6.0) == 2.0
    assert store.checkpoints_taken == 1
    assert store.drop_checkpoint("fedr") is True
    assert store.drop_checkpoint("fedr") is False
    assert store.load_checkpoint("fedr") is None


def test_message_log_is_bounded_and_ordered():
    store = SessionStore(log_limit=3)
    for i in range(5):
        store.log_message("fedr", f"m{i}")
    assert store.messages_logged == 5
    # the window keeps only the newest log_limit entries, oldest first
    assert store.replay_log("fedr") == ["m2", "m3", "m4"]
    assert store.messages_replayed == 3
    # replay does not clear the log; drop does
    assert store.has_log("fedr")
    assert store.drop_log("fedr") is True
    assert store.replay_log("fedr") == []
    assert store.has_log("fedr") is False


def test_drop_all_reports_session_loss_only():
    store = SessionStore()
    store.save_checkpoint("fedr", 1.0, {})
    store.log_message("fedr", "m")
    # checkpoint + log but no session: a cold restart loses nothing visible
    assert store.drop_all("fedr") is False
    assert not store.has_checkpoint("fedr") and not store.has_log("fedr")
    store.save_session("ses", 1.0, {})
    assert store.drop_all("ses") is True


def test_counters_snapshot():
    store = SessionStore()
    store.save_session("ses", 1.0, {})
    store.mark_restored("ses", 2.0)
    store.save_checkpoint("fedr", 1.0, {})
    store.log_message("fedr", "m")
    store.replay_log("fedr")
    store.drop_session("ses")
    assert store.counters() == {
        "sessions_saved": 1,
        "sessions_restored": 1,
        "sessions_lost": 1,
        "checkpoints_taken": 1,
        "checkpoints_restored": 0,
        "messages_logged": 1,
        "messages_replayed": 1,
        "records_quarantined": 0,
        "records_recovered": 0,
        "ops_timed_out": 0,
    }


# ----------------------------------------------------------------------
# the failure model: checksums, quarantine, and the timeout ladder
# ----------------------------------------------------------------------


def _faulty_store(**kwargs):
    kernel = Kernel(seed=7)
    store = SessionStore()
    model = StoreFaultModel(kernel, **kwargs)
    store.attach_faults(model)
    return kernel, store, model


def test_torn_write_is_quarantined_and_recovers_last_good():
    # Force every write to tear: the first (torn) record is unreadable,
    # but once a good version exists a later torn write falls back to it.
    kernel, store, model = _faulty_store(torn_write_probability=1.0)
    store.save_session("ses", 1.0, {"peer": "str", "epoch": 1})
    assert store.has_session("ses") is False  # torn first write: no good copy
    assert store.records_quarantined == 1
    assert store.records_recovered == 0

    model.torn_write_probability = 0.0
    store.save_session("ses", 2.0, {"peer": "str", "epoch": 2})
    model.torn_write_probability = 1.0
    store.save_session("ses", 3.0, {"peer": "str", "epoch": 3})
    # The torn epoch-3 write garbles only the in-flight record; the read
    # detects the checksum mismatch and recovers epoch 2.
    assert store.load_session("ses") == {"peer": "str", "epoch": 2}
    assert store.records_quarantined == 2
    assert store.records_recovered == 1
    # Recovery is durable: subsequent reads see the recovered version.
    assert store.session_age("ses", 5.0) == 3.0


def test_corrupt_write_detected_by_checksum():
    kernel, store, model = _faulty_store(corrupt_write_probability=1.0)
    store.save_checkpoint("fedr", 1.0, {"frequency": "137.5"})
    assert store.load_checkpoint("fedr") is None  # garbage is never trusted
    assert store.records_quarantined == 1
    assert model.writes_corrupted == 1


def test_crash_window_times_out_ops_then_recovers():
    kernel, store, model = _faulty_store()
    store.save_session("ses", 0.0, {"peer": "str"})
    model.crash(5.0)
    with pytest.raises(StoreUnavailableError) as exc_info:
        store.has_session("ses")
    # A crash fails fast: only the ladder's backoff gaps are burned.
    assert exc_info.value.waited == pytest.approx(sum(model.retry_backoff))
    assert store.ops_timed_out == 1
    ok, waited = store.probe()
    assert ok is False and waited > 0.0
    # Drops are tombstones: a cold restart never blocks on the store.
    assert store.drop_session("ses") is True
    kernel.run(until=6.0)
    assert store.probe() == (True, 0.0)
    assert not store.has_session("ses")


def test_hang_window_burns_full_per_op_timeouts():
    kernel, store, model = _faulty_store()
    model.hang(5.0)
    with pytest.raises(StoreUnavailableError) as exc_info:
        store.load_session("ses")
    ladder = sum(model.retry_backoff)
    per_op = model.op_timeout * (len(model.retry_backoff) + 1)
    assert exc_info.value.waited == pytest.approx(ladder + per_op)


def test_fault_model_is_inert_by_default():
    # No model attached: no RNG, no guards, no checksum failures — the
    # always-up storelet contract the classic paths rely on.
    store = SessionStore()
    store.save_session("ses", 1.0, {"peer": "str"})
    assert store.has_session("ses")
    assert store.probe() == (True, 0.0)
    assert store.records_quarantined == 0
    assert store.ops_timed_out == 0
