"""Unit tests for the crash-only :class:`SessionStore` (PR 7 tentpole).

The store's contract is what makes microreboot/checkpoint-replay safe:
atomic replacement writes, copy-on-read (a component mutating its own
view must not corrupt the store), bounded replay logs, and cold-restart
``drop_all`` counting exactly the user-visible session losses.
"""

from repro.mercury.session_store import SessionStore


def test_session_roundtrip_and_copy_semantics():
    store = SessionStore()
    payload = {"peer": "str", "epoch": 3}
    store.save_session("ses", 10.0, payload)
    payload["epoch"] = 99  # caller mutates its own dict afterwards
    loaded = store.load_session("ses")
    assert loaded == {"peer": "str", "epoch": 3}
    loaded["epoch"] = 7  # and mutating the read view changes nothing
    assert store.load_session("ses") == {"peer": "str", "epoch": 3}
    assert store.has_session("ses")
    assert store.session_age("ses", 12.5) == 2.5
    assert store.load_session("str") is None
    assert store.session_age("str", 12.5) is None


def test_save_is_atomic_replace():
    store = SessionStore()
    store.save_session("ses", 1.0, {"epoch": 1})
    store.save_session("ses", 2.0, {"epoch": 2})
    assert store.load_session("ses") == {"epoch": 2}
    assert store.session_age("ses", 3.0) == 1.0
    assert store.sessions_saved == 2


def test_drop_session_counts_only_real_losses():
    store = SessionStore()
    assert store.drop_session("ses") is False
    assert store.sessions_lost == 0
    store.save_session("ses", 1.0, {})
    assert store.drop_session("ses") is True
    assert store.sessions_lost == 1
    assert not store.has_session("ses")


def test_mark_restored_tracks_instant_and_counter():
    store = SessionStore()
    store.save_session("ses", 1.0, {})
    assert store.restored_at("ses") is None
    store.mark_restored("ses", 5.0)
    assert store.restored_at("ses") == 5.0
    assert store.sessions_restored == 1
    # a later cold restart clears the restore evidence too
    store.drop_session("ses")
    assert store.restored_at("ses") is None


def test_checkpoint_roundtrip():
    store = SessionStore()
    store.save_checkpoint("fedr", 4.0, {"freq": 137.5})
    assert store.has_checkpoint("fedr")
    assert store.load_checkpoint("fedr") == {"freq": 137.5}
    assert store.checkpoint_age("fedr", 6.0) == 2.0
    assert store.checkpoints_taken == 1
    assert store.drop_checkpoint("fedr") is True
    assert store.drop_checkpoint("fedr") is False
    assert store.load_checkpoint("fedr") is None


def test_message_log_is_bounded_and_ordered():
    store = SessionStore(log_limit=3)
    for i in range(5):
        store.log_message("fedr", f"m{i}")
    assert store.messages_logged == 5
    # the window keeps only the newest log_limit entries, oldest first
    assert store.replay_log("fedr") == ["m2", "m3", "m4"]
    assert store.messages_replayed == 3
    # replay does not clear the log; drop does
    assert store.has_log("fedr")
    assert store.drop_log("fedr") is True
    assert store.replay_log("fedr") == []
    assert store.has_log("fedr") is False


def test_drop_all_reports_session_loss_only():
    store = SessionStore()
    store.save_checkpoint("fedr", 1.0, {})
    store.log_message("fedr", "m")
    # checkpoint + log but no session: a cold restart loses nothing visible
    assert store.drop_all("fedr") is False
    assert not store.has_checkpoint("fedr") and not store.has_log("fedr")
    store.save_session("ses", 1.0, {})
    assert store.drop_all("ses") is True


def test_counters_snapshot():
    store = SessionStore()
    store.save_session("ses", 1.0, {})
    store.mark_restored("ses", 2.0)
    store.save_checkpoint("fedr", 1.0, {})
    store.log_message("fedr", "m")
    store.replay_log("fedr")
    store.drop_session("ses")
    assert store.counters() == {
        "sessions_saved": 1,
        "sessions_restored": 1,
        "sessions_lost": 1,
        "checkpoints_taken": 1,
        "checkpoints_restored": 0,
        "messages_logged": 1,
        "messages_replayed": 1,
    }
