"""Tests for the simulated ground-station hardware."""

import pytest

from repro.errors import ComponentError
from repro.mercury.hardware import Antenna, GroundStationHardware, Radio, SerialPort


def test_serial_exclusive_acquisition(kernel):
    port = SerialPort(kernel)
    port.acquire("pbcom")
    assert port.holder == "pbcom"
    with pytest.raises(ComponentError):
        port.acquire("fedrcom")


def test_serial_reacquire_by_holder_ok(kernel):
    port = SerialPort(kernel)
    port.acquire("pbcom")
    port.acquire("pbcom")
    assert port.opens == 2


def test_serial_release_then_reacquire(kernel):
    port = SerialPort(kernel)
    port.acquire("a")
    port.release("a")
    port.acquire("b")
    assert port.holder == "b"


def test_serial_release_by_non_holder_is_noop(kernel):
    port = SerialPort(kernel)
    port.acquire("a")
    port.release("b")
    assert port.holder == "a"


def test_radio_negotiation_lifecycle(kernel):
    radio = Radio(kernel)
    assert not radio.ready
    radio.negotiate("pbcom")
    radio.tune(437.1e6, by="pbcom")
    assert radio.ready
    radio.drop_negotiation("pbcom")
    assert not radio.ready


def test_radio_drop_by_other_component_is_noop(kernel):
    radio = Radio(kernel)
    radio.negotiate("pbcom")
    radio.drop_negotiation("fedrcom")
    assert radio.negotiated_by == "pbcom"


def test_radio_rejects_bad_frequency(kernel):
    radio = Radio(kernel)
    with pytest.raises(ComponentError):
        radio.tune(0.0, by="x")


def test_radio_tune_counter(kernel):
    radio = Radio(kernel)
    for _ in range(3):
        radio.tune(437.1e6, by="x")
    assert radio.tune_count == 3
    assert radio.tuned_at == kernel.now


def test_antenna_pointing(kernel):
    antenna = Antenna(kernel)
    antenna.point(143.2, 67.9, by="str")
    assert antenna.azimuth_deg == pytest.approx(143.2)
    assert antenna.elevation_deg == pytest.approx(67.9)
    assert antenna.point_count == 1


def test_antenna_rejects_out_of_range(kernel):
    antenna = Antenna(kernel)
    with pytest.raises(ComponentError):
        antenna.point(400.0, 45.0, by="str")
    with pytest.raises(ComponentError):
        antenna.point(0.0, 95.0, by="str")


def test_antenna_tracking_staleness(kernel):
    antenna = Antenna(kernel)
    assert not antenna.is_tracking(kernel.now)
    antenna.point(10.0, 10.0, by="str")
    assert antenna.is_tracking(kernel.now)
    assert antenna.is_tracking(kernel.now + 4.0)
    assert not antenna.is_tracking(kernel.now + 6.0)


def test_hardware_bundle(kernel):
    hardware = GroundStationHardware(kernel)
    assert hardware.serial.holder is None
    assert not hardware.radio.ready
    assert hardware.antenna.point_count == 0
