"""Tests for the calibrated station configuration."""

import pytest

from repro.mercury.config import HOUR, MINUTE, MONTH, PAPER_CONFIG


def test_paper_mttfs_match_table1():
    mttf = PAPER_CONFIG.mttf_seconds
    assert mttf["mbus"] == 1 * MONTH
    assert mttf["fedrcom"] == 10 * MINUTE
    assert mttf["ses"] == mttf["str"] == mttf["rtu"] == 5 * HOUR


def test_mean_detection_composition():
    assert PAPER_CONFIG.mean_detection == pytest.approx(
        PAPER_CONFIG.ping_period / 2 + PAPER_CONFIG.reply_timeout
    )


def test_station_components_by_generation():
    assert PAPER_CONFIG.station_components(split_fedrcom=False) == (
        "mbus", "fedrcom", "ses", "str", "rtu",
    )
    assert PAPER_CONFIG.station_components(split_fedrcom=True) == (
        "mbus", "fedr", "pbcom", "ses", "str", "rtu",
    )


def test_restart_seconds_lone_includes_penalty():
    lone = PAPER_CONFIG.restart_seconds(lone=True)
    joint = PAPER_CONFIG.restart_seconds(lone=False)
    assert lone["ses"] == pytest.approx(joint["ses"] + 3.50)
    assert lone["str"] == pytest.approx(joint["str"] + 3.89)
    assert lone["rtu"] == joint["rtu"]  # no resync peer


def test_restart_seconds_excludes_supervisors():
    seconds = PAPER_CONFIG.restart_seconds()
    assert "fd" not in seconds and "rec" not in seconds


def test_calibration_identities():
    """The derivations documented in the module docstring."""
    config = PAPER_CONFIG
    detect = config.mean_detection
    timings = config.timings
    # Tree II columns: detect + work == paper value.
    assert detect + timings["mbus"].work == pytest.approx(5.73, abs=0.01)
    assert detect + timings["rtu"].work == pytest.approx(5.59, abs=0.01)
    assert detect + timings["fedrcom"].work == pytest.approx(20.93, abs=0.01)
    # Tree I: whole-system batch of 5.
    factor = 1 + config.contention_coefficient * 4
    assert detect + timings["fedrcom"].work * factor == pytest.approx(24.75, abs=0.3)
    # Tree IV consolidated pair (batch of 2).
    pair = 1 + config.contention_coefficient
    assert detect + timings["ses"].work * pair == pytest.approx(6.25, abs=0.05)
    assert detect + timings["str"].work * pair == pytest.approx(6.11, abs=0.05)
    # Tree II lone restarts with resync penalty.
    assert detect + timings["ses"].work + timings["ses"].lone_penalty == pytest.approx(9.50, abs=0.01)
    assert detect + timings["str"].work + timings["str"].lone_penalty == pytest.approx(9.76, abs=0.01)


def test_with_overrides_is_functional():
    changed = PAPER_CONFIG.with_overrides(ping_period=2.0)
    assert changed.ping_period == 2.0
    assert PAPER_CONFIG.ping_period == 1.0
    assert changed.timings is PAPER_CONFIG.timings


def test_timing_for_unknown_raises():
    with pytest.raises(KeyError):
        PAPER_CONFIG.timing_for("ghost")


def test_config_is_frozen():
    with pytest.raises(Exception):
        PAPER_CONFIG.ping_period = 9.0  # type: ignore[misc]


def test_session_chain_covers_radio_and_tracking():
    chain = set(PAPER_CONFIG.session_chain)
    assert {"ses", "str", "mbus"} <= chain
    assert {"fedrcom", "fedr", "pbcom"} <= chain


def test_link_break_between_tree_v_and_tree_i_recovery():
    """The §5.2 threshold sits between the evolved trees' tracking
    recovery (~6 s) and tree I's full reboot (~25 s)."""
    assert 7.0 < PAPER_CONFIG.link_break_outage_s < 24.0
