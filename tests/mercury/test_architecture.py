"""Tests for the live architecture introspection (Figure 1 machinery)."""

from repro.mercury.architecture import describe_connections, render_architecture
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_ii, tree_v


def booted(tree, seed=111):
    station = MercuryStation(tree=tree, seed=seed)
    station.boot()
    station.run_for(5.0)
    return station


def test_split_station_edges():
    station = booted(tree_v())
    edges = describe_connections(station)
    assert "fedr <-TCP-> pbcom (low-level radio commands)" in edges
    assert "pbcom <-serial-> radio" in edges
    assert "fd <-TCP-> rec (dedicated control channel)" in edges
    assert any(e.startswith("ses <-XML-> mbus") for e in edges)


def test_unsplit_station_edges():
    station = booted(tree_ii())
    edges = describe_connections(station)
    assert not any("fedr <-TCP-> pbcom" in e for e in edges)
    assert "fedrcom <-serial-> radio" in edges
    assert any(e.startswith("fedrcom <-XML-> mbus") for e in edges)


def test_edges_reflect_outages():
    station = booted(tree_v())
    station.manager.fail("pbcom")
    station.run_for(0.5)
    edges = describe_connections(station)
    assert not any("pbcom <-serial-> radio" in e for e in edges)
    station.run_until_quiescent()
    edges = describe_connections(station)
    assert "pbcom <-serial-> radio" in edges


def test_render_contains_all_components():
    station = booted(tree_v())
    diagram = render_architecture(station)
    for name in station.station_components:
        assert name in diagram
    assert "mbus" in diagram
    assert "Live connections:" in diagram
