"""Tests for the tree I–V factories."""

from repro.mercury.trees import (
    SPLIT_COMPONENTS,
    TREE_BUILDERS,
    UNSPLIT_COMPONENTS,
    tree_i,
    tree_ii,
    tree_ii_prime,
    tree_iii,
    tree_iv,
    tree_v,
    uses_split_components,
)


def test_tree_i_single_group():
    tree = tree_i()
    assert len(tree.groups()) == 1
    assert tree.components == frozenset(UNSPLIT_COMPONENTS)


def test_tree_ii_per_component_cells():
    tree = tree_ii()
    assert len(tree.groups()) == 6  # root + 5 leaves
    for component in UNSPLIT_COMPONENTS:
        assert tree.components_restarted_by(tree.cell_of_component(component)) == frozenset([component])


def test_tree_ii_prime_splits_fedrcom():
    tree = tree_ii_prime()
    assert tree.components == frozenset(SPLIT_COMPONENTS)
    assert tree.parent_of(tree.cell_of_component("fedr")) == "R_mercury"


def test_tree_iii_joint_cell():
    tree = tree_iii()
    assert tree.components_restarted_by("R_fedr_pbcom") == frozenset(["fedr", "pbcom"])
    assert tree.minimal_cell_covering(["fedr", "pbcom"]) == "R_fedr_pbcom"
    # Individual buttons survive.
    assert tree.components_restarted_by("R_fedr") == frozenset(["fedr"])


def test_tree_iv_consolidates_ses_str():
    tree = tree_iv()
    assert tree.get_cell("R_ses_str").is_leaf
    assert tree.minimal_cell_covering(["ses"]) == "R_ses_str"
    assert not tree.has_cell("R_ses")


def test_tree_v_promotes_pbcom():
    tree = tree_v()
    assert tree.cell_of_component("pbcom") == "R_fedr_pbcom"
    assert not tree.has_cell("R_pbcom")
    assert tree.components_restarted_by("R_fedr_pbcom") == frozenset(["fedr", "pbcom"])


def test_builders_registry_complete():
    assert set(TREE_BUILDERS) == {"I", "II", "II'", "III", "IV", "V"}
    for label, builder in TREE_BUILDERS.items():
        tree = builder()
        assert tree.components in (
            frozenset(UNSPLIT_COMPONENTS),
            frozenset(SPLIT_COMPONENTS),
        )


def test_uses_split_components():
    assert not uses_split_components(tree_i())
    assert not uses_split_components(tree_ii())
    assert uses_split_components(tree_iii())
    assert uses_split_components(tree_v())


def test_factories_are_pure():
    a, b = tree_v(), tree_v()
    assert a is not b
    assert a.structurally_equal(b)


def test_history_narrates_evolution():
    history = " ".join(tree_v().history)
    for marker in ("depth_augment", "replace_component", "insert_joint_node",
                   "consolidate_groups", "promote_component"):
        assert marker in history
