"""Tests for live pass accounting on a running station."""

import pytest

from repro.mercury.orbit import PassWindow
from repro.mercury.passes import PassAccountant, tracking_solution_for
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_v


def make_station(seed=41, **kw):
    station = MercuryStation(tree=tree_v(), seed=seed, **kw)
    station.boot()
    return station


def upcoming_window(station, offset=30.0, duration=300.0):
    return PassWindow(
        "opal", start=station.kernel.now + offset, duration=duration,
        max_elevation_deg=75.0,
    )


def test_clean_pass_full_data(kernel):
    station = make_station()
    window = upcoming_window(station)
    accountant = PassAccountant(station, [window])
    station.run_for(400.0)
    assert accountant.summary.passes == 1
    outcome = accountant.summary.outcomes[0]
    assert outcome.loss_fraction == pytest.approx(0.0)
    assert not outcome.link_broken


def test_failure_during_pass_loses_data():
    station = make_station()
    window = upcoming_window(station, offset=30.0, duration=300.0)
    accountant = PassAccountant(station, [window])
    station.run_for(60.0)  # inside the pass
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    station.run_for(400.0)
    outcome = accountant.summary.outcomes[0]
    assert outcome.bytes_lost > 0
    assert outcome.failures_during_pass == 1
    assert not outcome.link_broken  # rtu recovery ~5.6s < threshold


def test_pbcom_failure_during_pass_breaks_link():
    station = make_station(seed=43)
    window = upcoming_window(station, offset=30.0, duration=600.0)
    accountant = PassAccountant(station, [window])
    station.run_for(60.0)
    failure = station.injector.inject_simple("pbcom")  # ~22s joint recovery
    station.run_until_recovered(failure)
    station.run_for(700.0)
    outcome = accountant.summary.outcomes[0]
    assert outcome.link_broken
    assert outcome.loss_fraction > 0.5  # rest of the pass forfeited


def test_failure_outside_pass_costs_nothing():
    station = make_station(seed=44)
    window = upcoming_window(station, offset=120.0, duration=300.0)
    accountant = PassAccountant(station, [window])
    failure = station.injector.inject_simple("ses")
    station.run_until_recovered(failure)
    station.run_until_quiescent()
    station.run_for(500.0)
    outcome = accountant.summary.outcomes[0]
    assert outcome.loss_fraction == pytest.approx(0.0)


def test_multiple_passes_accounted(kernel):
    station = make_station(seed=45)
    windows = [
        upcoming_window(station, offset=30.0, duration=120.0),
        upcoming_window(station, offset=300.0, duration=120.0),
    ]
    accountant = PassAccountant(station, windows)
    station.run_for(600.0)
    assert accountant.summary.passes == 2


def test_tracking_solution_for_schedule():
    windows = [PassWindow("opal", start=100.0, duration=600.0, max_elevation_deg=80.0)]
    solution = tracking_solution_for(windows)
    assert solution(50.0) is None
    azimuth, elevation, frequency = solution(400.0)
    assert elevation == pytest.approx(80.0, abs=1.0)
    assert frequency == pytest.approx(437.1e6, rel=0.001)
    assert solution(800.0) is None


def test_tracking_solution_doppler_ramp():
    windows = [PassWindow("opal", start=0.0, duration=600.0, max_elevation_deg=80.0)]
    solution = tracking_solution_for(windows)
    _, _, early = solution(1.0)
    _, _, late = solution(599.0)
    assert early > 437.1e6 > late  # approaching then receding
