"""Tests for the hardened (adaptive-timeout) failure detector."""

import pytest

from repro.mercury.config import PAPER_CONFIG
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_v
from repro.obs import events as ev


def make_station(seed, policy, net_faults=True):
    station = MercuryStation(
        tree=tree_v(),
        config=PAPER_CONFIG.with_overrides(timeout_policy=policy),
        seed=seed,
        supervisor="full",
        trace_capacity=50_000,
        net_faults=net_faults,
    )
    station.boot()
    station.run_until_quiescent()
    return station


def test_unknown_timeout_policy_rejected():
    from repro.errors import ExperimentError

    with pytest.raises((ValueError, ExperimentError)):
        make_station(1, "psychic")


# ----------------------------------------------------------------------
# the timeout and threshold math (unit level, on a built FD)
# ----------------------------------------------------------------------

def test_fixed_policy_timeout_is_constant():
    fd = make_station(21, "fixed").fd
    fd._observe_rtt(0.5)
    fd._observe_rtt(0.8)
    assert fd._current_timeout() == fd.reply_timeout


def test_adaptive_timeout_tracks_rtt_jacobson_karels():
    fd = make_station(22, "adaptive").fd
    fd._srtt = None  # forget boot-time observations
    fd._rttvar = 0.0
    fd._observe_rtt(0.1)
    # First sample seeds the estimator: srtt=rtt, rttvar=rtt/2.
    assert fd._current_timeout() == pytest.approx(0.1 + 4 * 0.05 + fd.adaptive_margin)
    before = fd._current_timeout()
    for _ in range(5):
        fd._observe_rtt(0.3)  # jittery network: timeout must widen
    assert fd._current_timeout() > before


def test_adaptive_timeout_clamped_inside_the_round():
    fd = make_station(23, "adaptive").fd
    for _ in range(20):
        fd._observe_rtt(5.0)  # absurd RTTs cannot push past the next tick
    assert fd._current_timeout() == pytest.approx(0.9 * fd.ping_period)


def test_required_misses_scales_with_loss_ewma():
    fd = make_station(24, "adaptive").fd
    base = fd.misses_to_declare
    fd._loss_ewma = 0.0
    assert fd._required_misses() == base
    fd._loss_ewma = 0.05
    assert fd._required_misses() == base + 1
    fd._loss_ewma = 0.2
    assert fd._required_misses() == base + 2


def test_fixed_policy_ignores_loss_ewma():
    fd = make_station(25, "fixed").fd
    fd._loss_ewma = 0.9
    assert fd._required_misses() == fd.misses_to_declare


# ----------------------------------------------------------------------
# behaviour: delay spikes fool the fixed detector, not the adaptive one
# ----------------------------------------------------------------------

def test_spiky_network_false_positives_fixed_vs_adaptive():
    """Pure delay spikes (no loss): every reply arrives, just late.  The
    fixed 0.2 s timeout reads lateness as death; the adaptive timeout
    widens to cover the observed RTT distribution."""
    counts = {}
    for policy in ("fixed", "adaptive"):
        station = make_station(26, policy)
        station.network.faults.degrade(
            spike_probability=0.6, spike_seconds=(0.2, 0.35)
        )
        station.run_for(60.0)
        counts[policy] = len(
            station.trace.filter(kind=ev.DETECTION_FALSE_POSITIVE)
        )
    assert counts["fixed"] > 0
    assert counts["adaptive"] < counts["fixed"]


def test_adaptive_still_detects_real_crashes_promptly():
    station = make_station(27, "adaptive")
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    detected = station.trace.first(ev.DETECTION, component="rtu")
    assert detected is not None
    assert detected.data.get("via") == "ping"
