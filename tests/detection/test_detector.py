"""Tests for the full-fidelity failure detector (FD) inside the station."""

import pytest

from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_v


@pytest.fixture
def station():
    s = MercuryStation(tree=tree_v(), seed=11)
    s.boot()
    return s


def detection_delay(station, component):
    failure = station.injector.inject_simple(component)
    injected_at = station.kernel.now
    station.run_until_recovered(failure)
    detected = station.trace.first(
        "detection", component=component
    )
    return detected.time - injected_at


def test_detects_failed_component_within_period_plus_timeout(station):
    delay = detection_delay(station, "rtu")
    assert 0.0 < delay <= station.config.ping_period + station.config.reply_timeout + 0.1


def test_detection_reported_to_rec(station):
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    assert station.trace.first("failure_reported", component="rtu") is not None
    assert station.fd.reports_sent >= 1


def test_mbus_failure_detected_and_attributed(station):
    failure = station.injector.inject_simple("mbus")
    station.run_until_recovered(failure)
    detections = {r.data["component"] for r in station.trace.filter(kind="detection")}
    assert detections == {"mbus"}  # no false accusations of other components


def test_no_detections_when_healthy(station):
    station.run_for(30.0)
    assert station.trace.filter(kind="detection") == []


def test_suppression_during_restart(station):
    """Components bounced by REC are not reported as failed."""
    failure = station.injector.inject_simple("ses")  # joint ses+str restart
    station.run_until_recovered(failure)
    detections = [r.data["component"] for r in station.trace.filter(kind="detection")]
    assert detections == ["ses"]  # str's expected downtime never reported


def test_redetection_after_insufficient_restart():
    station = MercuryStation(tree=tree_v(), seed=12, oracle="naive")
    station.boot()
    # Joint-curable failure; the naive oracle restarts the joint cell in
    # tree V (pbcom home IS the joint cell), so use fedr instead: cure
    # requires both, naive restarts fedr alone -> re-detection -> escalate.
    failure = station.injector.inject_joint("fedr", ["fedr", "pbcom"])
    recovery = station.run_until_recovered(failure)
    detections = [r for r in station.trace.filter(kind="detection", component="fedr")]
    assert len(detections) >= 2  # initial + post-restart re-detection
    assert recovery > 20.0  # paid the escalated joint restart


def test_detection_of_multiple_sequential_failures(station):
    for component in ("rtu", "fedr", "rtu"):
        failure = station.injector.inject_simple(component)
        station.run_until_recovered(failure)
        station.run_until_quiescent()
    assert len(station.trace.filter(kind="detection")) == 3


def test_fd_pings_are_xml_on_the_wire(station):
    """Liveness is judged via parsed XML replies, not object identity."""
    assert station.fd.connected
    station.run_for(5.0)
    # The broker routed traffic; if parsing were broken nothing would flow.
    assert station.manager.get("mbus").behavior.routed > 0


def test_warmup_prevents_boot_storm():
    """During a cold boot FD must not report slow-starting components."""
    station = MercuryStation(tree=tree_v(), seed=13)
    station.boot()  # raises if the station cannot stabilise
    assert station.trace.filter(kind="detection") == []
    assert station.policy.restarts_ordered == 0
