"""Crash-only lifecycle tests for the AbstractSupervisor tier.

The supervisor itself is a restartable node: a :class:`SupervisorWatchdog`
heartbeat restarts a crashed/hung supervisor, the fresh incarnation
reconciles half-done episodes against observable process state, rebuilds
the learning oracle from the session store, rescans for deaths it never
observed — and the generation guard fences any pre-crash recovery plan
callback so a stale plan can never execute after its author restarted.
"""

import pytest

from repro.core.oracle import LearningOracle, PerfectOracle
from repro.core.policy import RestartPolicy
from repro.core.recovery_strategies import StrategyMap
from repro.core.tree import RestartTree, cell
from repro.detection.abstract import AbstractSupervisor, SupervisorWatchdog
from repro.faults.injector import FaultInjector
from repro.faults.store_faults import StoreFaultModel
from repro.mercury.session_store import SessionStore

from tests.conftest import spawn_simple


def _tree():
    return RestartTree(
        cell("root", children=[
            cell("R_a", ["a"]),
            cell("R_bc", children=[cell("R_b", ["b"]), cell("R_c", ["c"])]),
        ]),
        name="rig",
    )


def _rig(kernel, manager, *, oracle=None, store=None, strategies=None, **kwargs):
    for name in ("a", "b", "c"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    policy = RestartPolicy(_tree(), oracle or PerfectOracle(manager))
    supervisor = AbstractSupervisor(
        kernel, manager, policy, monitored=["a", "b", "c"],
        observation_window=2.0, session_store=store, strategies=strategies,
        **kwargs,
    )
    return injector, supervisor, policy


def _kinds(kernel, kind):
    return kernel.trace.filter(kind=kind)


def test_watchdog_restarts_crashed_supervisor(kernel, manager):
    _, supervisor, _ = _rig(kernel, manager)
    watchdog = SupervisorWatchdog(kernel, supervisor, period=1.0, grace=2.0)
    kernel.run(until=3.0)
    supervisor.crash()
    assert not supervisor.responsive
    kernel.run(until=10.0)
    assert supervisor.responsive
    assert supervisor.restart_count == 1
    assert watchdog.restarts == 1
    records = _kinds(kernel, "supervisor_restarted")
    assert len(records) == 1
    assert records[0].data["generation"] == 2
    # The restart needs `grace/period` missed heartbeats: at least one
    # full period of silence, at most grace + one period of detection lag.
    assert 3.0 + 1.0 - 1.0 < records[0].time <= 3.0 + 2.0 + 1.0 + 1e-9


def test_hung_supervisor_misses_death_until_rescan(kernel, manager):
    injector, supervisor, _ = _rig(kernel, manager)
    SupervisorWatchdog(kernel, supervisor, period=1.0, grace=2.0)
    kernel.run(until=2.0)
    supervisor.hang()
    failure = injector.inject_simple("a")
    kernel.run(until=3.5)
    # Dead to the system: the death went undeclared.
    assert not _kinds(kernel, "detection")
    kernel.run(until=30.0)
    assert supervisor.responsive
    restarted_at = _kinds(kernel, "supervisor_restarted")[0].time
    detections = _kinds(kernel, "detection")
    # The death was only declared by the post-restart rescan.
    assert detections and detections[0].time > restarted_at
    assert not injector.is_active(failure.failure_id)
    assert manager.all_running()


def test_stale_plan_fenced_after_supervisor_restart(kernel, manager):
    """The ISSUE-pinned regression: a recovery-plan callback authored
    before the supervisor's crash must fence, not execute."""
    injector, supervisor, _ = _rig(kernel, manager, restart_timeout=5.0)
    SupervisorWatchdog(kernel, supervisor, period=1.0, grace=2.0)
    injector.inject_simple("a")
    while not _kinds(kernel, "restart_ordered"):
        assert kernel.step(), "no restart ever ordered"
    ordered_at = kernel.now
    supervisor.crash()
    kernel.run(until=ordered_at + 20.0)
    assert supervisor.restart_count == 1
    fenced = _kinds(kernel, "plan_fenced")
    assert fenced, "stale restart watchdog was never fenced"
    assert fenced[0].data["stale_generation"] == 1
    assert fenced[0].data["generation"] == 2
    # The stale callback fenced instead of re-kicking: exactly one order,
    # and the manager-level restart still completed underneath.
    assert len(_kinds(kernel, "restart_ordered")) == 1
    assert not _kinds(kernel, "restart_rekick")
    assert manager.all_running()


def test_restart_reconciles_open_episode_to_observing(kernel, manager):
    injector, supervisor, policy = _rig(kernel, manager)
    SupervisorWatchdog(kernel, supervisor, period=1.0, grace=2.0)
    failure = injector.inject_simple("a")
    while not _kinds(kernel, "restart_ordered"):
        assert kernel.step()
    supervisor.crash()
    kernel.run(until=kernel.now + 30.0)
    record = _kinds(kernel, "supervisor_restarted")[0]
    # "a" had already restarted at the manager level when the fresh
    # incarnation came up, so its wedged episode reconciled to observing.
    assert record.data["reconciled"] == 1
    assert record.data["dropped"] == 0
    assert not injector.is_active(failure.failure_id)
    assert not policy.open_episodes()
    assert manager.all_running()


def test_oracle_rebuilt_from_store_snapshot(kernel, manager):
    oracle = LearningOracle(min_samples=1, confidence=0.5)
    store = SessionStore()
    _, supervisor, policy = _rig(kernel, manager, oracle=oracle, store=store)
    SupervisorWatchdog(kernel, supervisor, period=1.0, grace=2.0)
    oracle.notify_outcome(policy.tree, "b", "R_bc", cured=True)
    store.save_snapshot("oracle", kernel.now, oracle.export_state())
    kernel.run(until=1.0)
    supervisor.crash()
    kernel.run(until=10.0)
    rebuilt = _kinds(kernel, "oracle_rebuilt")
    assert len(rebuilt) == 1
    assert rebuilt[0].data["origin"] == "store"
    assert rebuilt[0].data["entries"] == 1
    # The estimates survived the crash via the store.
    assert oracle.recommend(policy.tree, "b") == "R_bc"


def test_oracle_rebuilt_naive_when_store_down(kernel, manager):
    oracle = LearningOracle(min_samples=1, confidence=0.5)
    store = SessionStore()
    faults = None
    _, supervisor, policy = _rig(kernel, manager, oracle=oracle, store=store)
    faults = StoreFaultModel(kernel)
    store.attach_faults(faults)
    SupervisorWatchdog(kernel, supervisor, period=1.0, grace=2.0)
    oracle.notify_outcome(policy.tree, "b", "R_bc", cured=True)
    store.save_snapshot("oracle", kernel.now, oracle.export_state())
    kernel.run(until=1.0)
    faults.crash(30.0)  # the snapshot exists but cannot be read
    supervisor.crash()
    kernel.run(until=10.0)
    rebuilt = _kinds(kernel, "oracle_rebuilt")
    assert len(rebuilt) == 1
    assert rebuilt[0].data["origin"] == "naive"
    # Amnesiac: back to the naive recommendation.
    assert oracle.recommend(policy.tree, "b") == "R_b"


def test_recovery_persists_oracle_snapshot(kernel, manager):
    oracle = LearningOracle(min_samples=1, confidence=0.5)
    store = SessionStore()
    injector, supervisor, _ = _rig(kernel, manager, oracle=oracle, store=store)
    failure = injector.inject_simple("a")
    kernel.run(until=30.0)
    assert not injector.is_active(failure.failure_id)
    assert store.load_snapshot("oracle") is not None


def test_microreboot_falls_back_to_restart_when_store_down(kernel, manager):
    store = SessionStore()
    faults = StoreFaultModel(kernel)
    store.attach_faults(faults)
    injector, supervisor, _ = _rig(
        kernel, manager, store=store,
        strategies=StrategyMap(default="microreboot"),
    )
    faults.crash(20.0)
    failure = injector.inject_simple("a")
    kernel.run(until=40.0)
    fallbacks = _kinds(kernel, "strategy_fallback")
    assert len(fallbacks) == 1
    assert fallbacks[0].data["strategy"] == "microreboot"
    assert fallbacks[0].data["fallback"] == "restart"
    assert fallbacks[0].data["waited"] == pytest.approx(
        sum(faults.retry_backoff)
    )
    # The fallback is announced before (or with) its order, never after.
    order = _kinds(kernel, "restart_ordered")[0]
    assert fallbacks[0].time == pytest.approx(order.time)
    assert not injector.is_active(failure.failure_id)
    assert manager.all_running()


def test_watchdog_validation_and_stop(kernel, manager):
    _, supervisor, _ = _rig(kernel, manager)
    with pytest.raises(ValueError, match="period"):
        SupervisorWatchdog(kernel, supervisor, period=0.0)
    watchdog = SupervisorWatchdog(kernel, supervisor, period=1.0, grace=2.0)
    watchdog.stop()
    supervisor.crash()
    kernel.run(until=10.0)
    assert not supervisor.responsive  # a stopped watchdog restarts nothing
    assert watchdog.restarts == 0
