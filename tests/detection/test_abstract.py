"""Tests for the collapsed AbstractSupervisor."""

import pytest

from repro.core.oracle import NaiveOracle, PerfectOracle
from repro.core.policy import RestartPolicy
from repro.core.tree import RestartTree, cell
from repro.detection.abstract import AbstractSupervisor
from repro.faults.injector import FaultInjector

from tests.conftest import spawn_simple


@pytest.fixture
def rig(kernel, manager):
    """Three supervised components under a two-level tree."""
    tree = RestartTree(
        cell("root", children=[
            cell("R_a", ["a"]),
            cell("R_bc", children=[cell("R_b", ["b"]), cell("R_c", ["c"])]),
        ]),
        name="rig",
    )
    for name in ("a", "b", "c"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    policy = RestartPolicy(tree, PerfectOracle(manager))
    supervisor = AbstractSupervisor(
        kernel, manager, policy, monitored=["a", "b", "c"], observation_window=2.0
    )
    return injector, supervisor, policy


def recover(kernel, manager, injector, failure, timeout=120.0):
    deadline = kernel.now + timeout
    while kernel.now < deadline:
        if not injector.is_active(failure.failure_id) and manager.all_running():
            return kernel.now - failure.injected_at
        if not kernel.step():
            break
    raise AssertionError("failure not recovered")


def test_detects_and_restarts(kernel, manager, rig):
    injector, supervisor, _ = rig
    failure = injector.inject_simple("a")
    recovery = recover(kernel, manager, injector, failure)
    assert supervisor.detections == 1
    # detection (<=1.2) + restart (1.0)
    assert 1.0 < recovery < 2.5


def test_detection_latency_distribution(kernel, manager, rig):
    injector, supervisor, _ = rig
    delays = []
    for index in range(60):
        kernel.run(until=kernel.now + 5.0)
        failure = injector.inject_simple("a")
        injected = kernel.now
        recover(kernel, manager, injector, failure)
        record = kernel.trace.filter(kind="detection", component="a")[-1]
        delays.append(record.time - injected)
    mean = sum(delays) / len(delays)
    assert mean == pytest.approx(0.5 + 0.2, abs=0.1)  # U(0,1)/2 + timeout
    assert all(0.2 <= d <= 1.25 for d in delays)


def test_joint_failure_escalates(kernel, manager, rig):
    injector, supervisor, policy = rig
    failure = injector.inject_joint("b", ["b", "c"])
    recover(kernel, manager, injector, failure)
    ordered = [r.data["cell"] for r in kernel.trace.filter(kind="restart_ordered")]
    assert ordered == ["R_bc"]  # perfect oracle goes straight to the pair


def test_naive_oracle_escalates_step_by_step(kernel, manager):
    tree = RestartTree(
        cell("root", children=[
            cell("R_bc", children=[cell("R_b", ["b"]), cell("R_c", ["c"])]),
        ]),
    )
    for name in ("b", "c"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    policy = RestartPolicy(tree, NaiveOracle())
    AbstractSupervisor(kernel, manager, policy, monitored=["b", "c"])
    failure = injector.inject_joint("b", ["b", "c"])
    recover(kernel, manager, injector, failure)
    ordered = [r.data["cell"] for r in kernel.trace.filter(kind="restart_ordered")]
    assert ordered == ["R_b", "R_bc"]
    assert policy.escalations == 1


def test_concurrent_failures_serialized(kernel, manager, rig):
    injector, supervisor, _ = rig
    fa = injector.inject_simple("a")
    fb = injector.inject_simple("b")
    deadline = kernel.now + 60.0
    while kernel.now < deadline and (
        injector.active_failures or not manager.all_running()
    ):
        kernel.step()
    assert not injector.active_failures
    assert manager.all_running()
    ordered = [r.data["cell"] for r in kernel.trace.filter(kind="restart_ordered")]
    assert sorted(ordered) == ["R_a", "R_b"]


def test_member_refailing_during_batch_does_not_wedge(kernel, manager):
    """The regression behind the availability deadlock: a batch member that
    completes its restart and immediately dies again (while a slower member
    is still starting) must be re-detected, not swallowed."""
    tree = RestartTree(
        cell("root", children=[cell("R_fast", ["fast"]), cell("R_pair", ["slow", "fast2"])]),
    )
    spawn_simple(manager, "fast", work=0.5)
    spawn_simple(manager, "slow", work=10.0)
    spawn_simple(manager, "fast2", work=0.5)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    policy = RestartPolicy(tree, PerfectOracle(manager))
    AbstractSupervisor(kernel, manager, policy, monitored=["fast", "slow", "fast2"])
    failure = injector.inject_simple("fast2")  # restarts the R_pair cell
    # While 'slow' grinds through its 10s startup, kill fast2 again.
    kernel.run(until=kernel.now + 3.0)
    assert manager.get("fast2").is_running
    second = injector.inject_simple("fast2")
    deadline = kernel.now + 120.0
    while kernel.now < deadline and (
        injector.active_failures or not manager.all_running()
    ):
        kernel.step()
    assert not injector.active_failures
    assert manager.all_running()


def test_rekick_watchdog_recovers_member_killed_mid_start(kernel, manager):
    tree = RestartTree(
        cell("root", children=[cell("R_pair", ["x", "slow"])]),
    )
    spawn_simple(manager, "x", work=5.0)
    spawn_simple(manager, "slow", work=20.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    policy = RestartPolicy(tree, PerfectOracle(manager))
    AbstractSupervisor(
        kernel, manager, policy, monitored=["x", "slow"], restart_timeout=30.0
    )
    injector.inject_simple("x")  # restarts both; slow takes 20s
    kernel.run(until=kernel.now + 3.0)
    # Kill x *while it is starting* inside the in-flight batch (only an
    # external actor can do this; failures only hit running processes).
    from repro.types import ProcessState

    assert manager.get("x").state is ProcessState.STARTING
    manager.kill("x")
    deadline = kernel.now + 120.0
    while kernel.now < deadline and not manager.all_running():
        kernel.step()
    assert manager.all_running()
    assert kernel.trace.first("restart_rekick") is not None
