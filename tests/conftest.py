"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.procmgr.manager import ProcessManager
from repro.procmgr.process import ProcessSpec, constant_work
from repro.sim.kernel import Kernel
from repro.transport.network import Network


@pytest.fixture
def kernel() -> Kernel:
    """A fresh deterministic kernel."""
    return Kernel(seed=1234)


@pytest.fixture
def network(kernel: Kernel) -> Network:
    """A simulated network on the shared kernel."""
    return Network(kernel)


@pytest.fixture
def manager(kernel: Kernel) -> ProcessManager:
    """A process manager with mild batch contention."""
    return ProcessManager(kernel, contention_coefficient=0.05)


def spawn_simple(manager: ProcessManager, name: str, work: float = 1.0):
    """Helper: register a bare process with constant startup work."""
    return manager.spawn(ProcessSpec(name, constant_work(work)))
