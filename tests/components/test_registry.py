"""Tests for the component registry."""

import pytest

from repro.components.base import Behavior
from repro.components.registry import ComponentRegistry
from repro.errors import DuplicateComponentError
from repro.procmgr.process import ProcessSpec, constant_work


def make_behavior(manager, name):
    process = manager.spawn(ProcessSpec(name, constant_work(1.0)))
    return Behavior(process)


def test_add_and_get(manager):
    registry = ComponentRegistry()
    behavior = make_behavior(manager, "a")
    registry.add(behavior)
    assert registry.get("a") is behavior
    assert registry.maybe_get("a") is behavior
    assert "a" in registry


def test_duplicate_rejected(manager):
    registry = ComponentRegistry()
    registry.add(make_behavior(manager, "a"))
    with pytest.raises(DuplicateComponentError):
        registry.add(make_behavior(manager, "a2").__class__(manager.get("a")))


def test_missing_lookups(manager):
    registry = ComponentRegistry()
    assert registry.maybe_get("ghost") is None
    with pytest.raises(KeyError):
        registry.get("ghost")
    assert "ghost" not in registry


def test_iteration_and_len(manager):
    registry = ComponentRegistry()
    for name in ("x", "y"):
        registry.add(make_behavior(manager, name))
    assert len(registry) == 2
    assert [b.name for b in registry] == ["x", "y"]
    assert registry.names == ["x", "y"]
