"""Tests for health-summary beacons (§7 future-work extension)."""

import pytest

from repro.bus.broker import BusBroker
from repro.bus.client import BusClient
from repro.components.base import BusAttachedBehavior
from repro.components.health import HealthBeacon, HealthSummary
from repro.procmgr.process import ProcessSpec, constant_work
from repro.xmlcmd.commands import CommandMessage


class BeaconedBehavior(BusAttachedBehavior):
    def __init__(self, process, network):
        super().__init__(process, network)
        self.beacon = HealthBeacon(self, period=2.0, target="ops")

    def on_start(self):
        super().on_start()
        self.beacon.start()

    def on_kill(self):
        self.beacon.stop()
        super().on_kill()


def build(kernel, network, manager):
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.2), lambda p: BusBroker(p, network, "mbus:7000"))
    )
    beaconed = manager.spawn(
        ProcessSpec("comp", constant_work(0.2), lambda p: BeaconedBehavior(p, network))
    )
    manager.start_all()
    kernel.run(until=kernel.now + 1.0)
    ops = BusClient(kernel, network, "ops")
    ops.connect()
    return beaconed.behavior, ops


def health_messages(ops):
    return [
        m for m in ops.received
        if isinstance(m, CommandMessage) and m.verb == "health-summary"
    ]


def test_beacon_publishes_periodically(kernel, network, manager):
    behavior, ops = build(kernel, network, manager)
    kernel.run(until=kernel.now + 10.0)
    assert len(health_messages(ops)) >= 4
    assert behavior.beacon.published >= 4


def test_summary_carries_default_metrics(kernel, network, manager):
    _behavior, ops = build(kernel, network, manager)
    kernel.run(until=kernel.now + 5.0)
    message = health_messages(ops)[0]
    summary = HealthSummary.from_message(message, at=kernel.now)
    assert summary.component == "comp"
    assert "uptime_s" in summary.metrics
    assert summary.metrics["restarts"] == 1.0
    assert not summary.degraded


def test_beacon_stops_when_killed(kernel, network, manager):
    _behavior, ops = build(kernel, network, manager)
    kernel.run(until=kernel.now + 5.0)
    count_before = len(health_messages(ops))
    manager.fail("comp")
    kernel.run(until=kernel.now + 10.0)
    assert len(health_messages(ops)) == count_before


def test_beacon_resumes_after_restart(kernel, network, manager):
    _behavior, ops = build(kernel, network, manager)
    manager.fail("comp")
    manager.restart(["comp"])
    kernel.run(until=kernel.now + 6.0)
    assert health_messages(ops)


def test_custom_supplier_and_warnings(kernel, network, manager):
    summary = HealthSummary(
        component="c", time=1.0,
        metrics={"heap_mb": 120.5},
        warnings=["queue depth rising", "latency spike"],
        degraded=True,
    )
    params = summary.to_params()
    message = CommandMessage("c", "fd", "health-summary", params)
    parsed = HealthSummary.from_message(message, at=1.0)
    assert parsed.metrics == {"heap_mb": 120.5}
    assert sorted(parsed.warnings) == ["latency spike", "queue depth rising"]
    assert parsed.degraded


def test_summary_roundtrip_empty():
    summary = HealthSummary(component="c", time=0.0)
    message = CommandMessage("c", "fd", "health-summary", summary.to_params())
    parsed = HealthSummary.from_message(message, at=0.0)
    assert parsed.metrics == {}
    assert parsed.warnings == []
    assert not parsed.degraded


# ----------------------------------------------------------------------
# the end-to-end prober (zombie unmasking machinery)
# ----------------------------------------------------------------------

from repro.components.health import EndToEndProber, make_probe, probe_reply_info
from repro.components.base import E2E_PROBE_REPLY_VERB


class FakeWire:
    """Captures outgoing probes; replies are scripted per component."""

    def __init__(self, answering):
        self.answering = set(answering)
        self.sent = []

    def send(self, message):
        self.sent.append(message)
        return True


def prober_on(kernel, wire, suspects, recovered, **kwargs):
    prober = EndToEndProber(
        kernel,
        ["rtu", "ses"],
        wire.send,
        period=2.0,
        timeout=0.5,
        misses_to_suspect=2,
        on_suspect=suspects.append,
        on_recovered=recovered.append,
        **kwargs,
    )
    prober.start()
    return prober


def pump(kernel, wire, prober, seconds):
    """Run the sim, answering probes for components on the 'wire'."""
    deadline = kernel.now + seconds
    while kernel.now < deadline:
        kernel.run(until=min(deadline, kernel.now + 0.25))
        for message in wire.sent:
            if message.target in wire.answering:
                prober.on_reply(message.target, int(message.params["seq"]))
        wire.sent.clear()


def test_prober_validates_timeout_inside_period(kernel):
    with pytest.raises(ValueError):
        EndToEndProber(kernel, ["rtu"], lambda m: True, period=1.0, timeout=1.5)
    with pytest.raises(ValueError):
        EndToEndProber(kernel, ["rtu"], lambda m: True, misses_to_suspect=0)


def test_prober_suspects_after_consecutive_misses(kernel):
    suspects, recovered = [], []
    wire = FakeWire(answering=["ses"])  # rtu never answers
    prober = prober_on(kernel, wire, suspects, recovered)
    pump(kernel, wire, prober, 7.0)
    assert suspects == ["rtu"]
    assert recovered == []


def test_prober_recovers_when_component_answers_again(kernel):
    suspects, recovered = [], []
    wire = FakeWire(answering=["ses"])
    prober = prober_on(kernel, wire, suspects, recovered)
    pump(kernel, wire, prober, 7.0)
    wire.answering.add("rtu")  # the zombie was restarted
    pump(kernel, wire, prober, 5.0)
    assert recovered == ["rtu"]
    assert prober.probe_misses >= 2


def test_prober_skip_forgives_outstanding_misses(kernel):
    suspects, recovered = [], []
    wire = FakeWire(answering=["ses"])
    skipped = {"rtu"}
    prober = prober_on(
        kernel, wire, suspects, recovered, skip=lambda c: c in skipped
    )
    pump(kernel, wire, prober, 10.0)
    assert suspects == []  # suppressed components are never judged


def test_stale_reply_ignored(kernel):
    suspects, recovered = [], []
    wire = FakeWire(answering=[])
    prober = prober_on(kernel, wire, suspects, recovered)
    kernel.run(until=kernel.now + 2.1)  # one round sent
    assert wire.sent
    stale_seq = int(wire.sent[0].params["seq"]) - 100
    prober.on_reply(wire.sent[0].target, stale_seq)  # must not zero misses
    pump(kernel, wire, prober, 5.0)
    assert set(suspects) == {"rtu", "ses"}


def test_probe_reply_info_round_trip():
    probe = make_probe("fd", "rtu", 17)
    reply = CommandMessage(
        sender="rtu", target="fd", verb=E2E_PROBE_REPLY_VERB,
        params={"seq": probe.params["seq"]},
    )
    assert probe_reply_info(reply) == ("rtu", 17)
    assert probe_reply_info(probe) is None  # a request is not a reply
    bad = CommandMessage(sender="rtu", target="fd",
                         verb=E2E_PROBE_REPLY_VERB, params={"seq": "nope"})
    assert probe_reply_info(bad) is None
