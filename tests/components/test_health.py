"""Tests for health-summary beacons (§7 future-work extension)."""

from repro.bus.broker import BusBroker
from repro.bus.client import BusClient
from repro.components.base import BusAttachedBehavior
from repro.components.health import HealthBeacon, HealthSummary
from repro.procmgr.process import ProcessSpec, constant_work
from repro.xmlcmd.commands import CommandMessage


class BeaconedBehavior(BusAttachedBehavior):
    def __init__(self, process, network):
        super().__init__(process, network)
        self.beacon = HealthBeacon(self, period=2.0, target="ops")

    def on_start(self):
        super().on_start()
        self.beacon.start()

    def on_kill(self):
        self.beacon.stop()
        super().on_kill()


def build(kernel, network, manager):
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.2), lambda p: BusBroker(p, network, "mbus:7000"))
    )
    beaconed = manager.spawn(
        ProcessSpec("comp", constant_work(0.2), lambda p: BeaconedBehavior(p, network))
    )
    manager.start_all()
    kernel.run(until=kernel.now + 1.0)
    ops = BusClient(kernel, network, "ops")
    ops.connect()
    return beaconed.behavior, ops


def health_messages(ops):
    return [
        m for m in ops.received
        if isinstance(m, CommandMessage) and m.verb == "health-summary"
    ]


def test_beacon_publishes_periodically(kernel, network, manager):
    behavior, ops = build(kernel, network, manager)
    kernel.run(until=kernel.now + 10.0)
    assert len(health_messages(ops)) >= 4
    assert behavior.beacon.published >= 4


def test_summary_carries_default_metrics(kernel, network, manager):
    _behavior, ops = build(kernel, network, manager)
    kernel.run(until=kernel.now + 5.0)
    message = health_messages(ops)[0]
    summary = HealthSummary.from_message(message, at=kernel.now)
    assert summary.component == "comp"
    assert "uptime_s" in summary.metrics
    assert summary.metrics["restarts"] == 1.0
    assert not summary.degraded


def test_beacon_stops_when_killed(kernel, network, manager):
    _behavior, ops = build(kernel, network, manager)
    kernel.run(until=kernel.now + 5.0)
    count_before = len(health_messages(ops))
    manager.fail("comp")
    kernel.run(until=kernel.now + 10.0)
    assert len(health_messages(ops)) == count_before


def test_beacon_resumes_after_restart(kernel, network, manager):
    _behavior, ops = build(kernel, network, manager)
    manager.fail("comp")
    manager.restart(["comp"])
    kernel.run(until=kernel.now + 6.0)
    assert health_messages(ops)


def test_custom_supplier_and_warnings(kernel, network, manager):
    summary = HealthSummary(
        component="c", time=1.0,
        metrics={"heap_mb": 120.5},
        warnings=["queue depth rising", "latency spike"],
        degraded=True,
    )
    params = summary.to_params()
    message = CommandMessage("c", "fd", "health-summary", params)
    parsed = HealthSummary.from_message(message, at=1.0)
    assert parsed.metrics == {"heap_mb": 120.5}
    assert sorted(parsed.warnings) == ["latency spike", "queue depth rising"]
    assert parsed.degraded


def test_summary_roundtrip_empty():
    summary = HealthSummary(component="c", time=0.0)
    message = CommandMessage("c", "fd", "health-summary", summary.to_params())
    parsed = HealthSummary.from_message(message, at=0.0)
    assert parsed.metrics == {}
    assert parsed.warnings == []
    assert not parsed.degraded
