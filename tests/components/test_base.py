"""Tests for the behavior framework: attach, ping replies, reconnection."""

from repro.bus.broker import BusBroker
from repro.bus.client import BusClient
from repro.components.base import BusAttachedBehavior
from repro.procmgr.process import ProcessSpec, constant_work
from repro.xmlcmd.commands import CommandMessage, PingReply, PingRequest


class EchoBehavior(BusAttachedBehavior):
    """Test behavior: records messages, echoes 'echo' commands back."""

    def __init__(self, process, network):
        super().__init__(process, network)
        self.messages = []
        self.connects = 0

    def on_bus_connected(self):
        self.connects += 1

    def on_message(self, message):
        self.messages.append(message)
        if isinstance(message, CommandMessage) and message.verb == "echo":
            self.send(CommandMessage(self.name, message.sender, "echo-reply", message.params))


def build(kernel, network, manager):
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.5), lambda p: BusBroker(p, network, "mbus:7000"))
    )
    echo = manager.spawn(
        ProcessSpec("echo", constant_work(0.5), lambda p: EchoBehavior(p, network))
    )
    manager.start_all()
    kernel.run(until=kernel.now + 3.0)
    return echo.behavior


def ops_client(kernel, network):
    client = BusClient(kernel, network, "ops")
    client.connect()
    kernel.run(until=kernel.now + 0.5)
    return client


def test_behavior_attaches_on_start(kernel, network, manager):
    behavior = build(kernel, network, manager)
    assert behavior.connected
    assert behavior.connects == 1


def test_behavior_replies_to_pings(kernel, network, manager):
    build(kernel, network, manager)
    ops = ops_client(kernel, network)
    ops.send(PingRequest("ops", "echo", 3))
    kernel.run(until=kernel.now + 0.5)
    assert PingReply(sender="echo", target="ops", seq=3) in ops.received


def test_behavior_dispatches_commands(kernel, network, manager):
    behavior = build(kernel, network, manager)
    ops = ops_client(kernel, network)
    ops.send(CommandMessage("ops", "echo", "echo", {"k": "v"}))
    kernel.run(until=kernel.now + 0.5)
    assert len(behavior.messages) == 1
    replies = [m for m in ops.received if getattr(m, "verb", "") == "echo-reply"]
    assert replies and replies[0].params == {"k": "v"}


def test_pings_not_passed_to_on_message(kernel, network, manager):
    behavior = build(kernel, network, manager)
    ops = ops_client(kernel, network)
    ops.send(PingRequest("ops", "echo", 1))
    kernel.run(until=kernel.now + 0.5)
    assert behavior.messages == []


def test_dead_behavior_does_not_reply(kernel, network, manager):
    build(kernel, network, manager)
    ops = ops_client(kernel, network)
    manager.fail("echo")
    kernel.run(until=kernel.now + 0.2)
    ops.send(PingRequest("ops", "echo", 9))
    kernel.run(until=kernel.now + 1.0)
    assert not any(isinstance(m, PingReply) and m.seq == 9 for m in ops.received)


def test_behavior_reconnects_after_bus_restart(kernel, network, manager):
    behavior = build(kernel, network, manager)
    manager.fail("mbus")
    manager.restart(["mbus"])
    kernel.run(until=kernel.now + 5.0)
    assert behavior.connected
    assert behavior.connects == 2


def test_behavior_restart_reattaches(kernel, network, manager):
    behavior_box = build(kernel, network, manager)
    manager.fail("echo")
    manager.restart(["echo"])
    kernel.run(until=kernel.now + 3.0)
    behavior = manager.get("echo").behavior
    assert behavior.connected
    ops = ops_client(kernel, network)
    ops.send(PingRequest("ops", "echo", 77))
    kernel.run(until=kernel.now + 0.5)
    assert any(isinstance(m, PingReply) and m.seq == 77 for m in ops.received)


def test_send_while_disconnected_returns_false(kernel, network, manager):
    behavior = build(kernel, network, manager)
    manager.fail("mbus")
    kernel.run(until=kernel.now + 0.1)
    assert behavior.send(CommandMessage("echo", "x", "v")) is False


def test_behavior_starts_before_bus_and_retries(kernel, network, manager):
    echo = manager.spawn(
        ProcessSpec("echo", constant_work(0.5), lambda p: EchoBehavior(p, network))
    )
    manager.start("echo")
    kernel.run(until=kernel.now + 2.0)
    assert not echo.behavior.connected
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.5), lambda p: BusBroker(p, network, "mbus:7000"))
    )
    manager.start("mbus")
    kernel.run(until=kernel.now + 2.0)
    assert echo.behavior.connected
