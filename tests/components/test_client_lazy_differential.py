"""Client-side lazy delivery vs REPRO_BUS_FULLPARSE=1: observationally equal.

The broker's differential suite (``tests/bus/test_fastpath_differential``)
pins *routing*; this one pins the **client** half of the fast path:
``BusAttachedBehavior._on_raw`` answers pings straight off the wire and
hands non-ping traffic to ``on_message`` as a :class:`LazyMessage` instead
of full-parsing it.  A consumer must not be able to tell which mode built
its component — same dispatch decisions, same replies on the bus, same
station-level measurements — except by reaching for the concrete type.
"""

from repro.bus.broker import BusBroker
from repro.bus.client import BusClient
from repro.components.base import BusAttachedBehavior
from repro.experiments.recovery import measure_recovery
from repro.experiments.snapshot import clear_templates
from repro.mercury.trees import tree_ii
from repro.procmgr.manager import ProcessManager
from repro.procmgr.process import ProcessSpec, constant_work
from repro.sim.kernel import Kernel
from repro.transport.network import Network
from repro.xmlcmd.commands import (
    CommandMessage,
    FailureReport,
    PingReply,
    PingRequest,
    RestartOrder,
    TelemetryFrame,
)
from repro.xmlcmd.fastpath import LazyMessage


class RecorderBehavior(BusAttachedBehavior):
    """Records everything dispatched to ``on_message``; echoes commands."""

    def __init__(self, process, network):
        super().__init__(process, network)
        self.messages = []

    def on_message(self, message):
        self.messages.append(message)
        if isinstance(message, CommandMessage) and message.verb == "echo":
            self.send(
                CommandMessage(self.name, message.sender, "echo-reply", message.params)
            )


#: Every registered shape a client can receive, canonical and not.
TRAFFIC = [
    PingRequest("ops", "rec", 1),
    CommandMessage("ops", "rec", "echo", {"az": "1.5"}),
    CommandMessage("ops", "rec", "track", {"el": "2"}),
    TelemetryFrame("ops", "rec", "opal", "p7", 512),
    FailureReport("ops", "rec", ("ses",), 4.5),
    RestartOrder("ops", "rec", "R_ses", ("ses",), "begin"),
    PingRequest("ops", "rec", 2),
]


def drive(fullparse: bool, monkeypatch):
    if fullparse:
        monkeypatch.setenv("REPRO_BUS_FULLPARSE", "1")
    else:
        monkeypatch.delenv("REPRO_BUS_FULLPARSE", raising=False)
    kernel = Kernel(seed=4321)
    network = Network(kernel)
    manager = ProcessManager(kernel, contention_coefficient=0.05)
    manager.spawn(
        ProcessSpec(
            "mbus", constant_work(0.5), lambda p: BusBroker(p, network, "mbus:7000")
        )
    )
    recorder = manager.spawn(
        ProcessSpec("rec", constant_work(0.5), lambda p: RecorderBehavior(p, network))
    )
    manager.start_all()
    kernel.run(until=kernel.now + 3.0)
    ops = BusClient(kernel, network, "ops")
    ops.connect()
    kernel.run(until=kernel.now + 0.5)
    for message in TRAFFIC:
        ops.send(message)
        kernel.run(until=kernel.now + 0.5)
    return recorder.behavior, ops


def test_dispatch_and_replies_identical_across_modes(monkeypatch):
    lazy_rec, lazy_ops = drive(False, monkeypatch)
    full_rec, full_ops = drive(True, monkeypatch)

    # Same messages dispatched (LazyMessage proxies dataclass equality) and
    # same replies observed on the bus, ping replies included.
    assert lazy_rec.messages == full_rec.messages
    assert lazy_ops.received == full_ops.received
    assert [m for m in lazy_ops.received if isinstance(m, PingReply)]

    # The lazy mode really was lazy — and fullparse really was not.  The
    # flat wires (commands, telemetry) ride the envelope fast path; the
    # child-bearing kinds (failure reports, restart orders) are outside
    # ``scan_envelope``'s vouched subset and take the legacy parse.
    non_ping = len(TRAFFIC) - 2  # pings never reach on_message
    assert len(lazy_rec.messages) == non_ping
    lazy_kinds = {
        m.__class__.__name__ for m in lazy_rec.messages if type(m) is LazyMessage
    }
    assert lazy_kinds == {"CommandMessage", "TelemetryFrame"}
    assert not any(type(m) is LazyMessage for m in full_rec.messages)


def test_lazy_messages_are_interchangeable_with_parsed(monkeypatch):
    recorder, _ = drive(False, monkeypatch)
    frames = [m for m in recorder.messages if isinstance(m, TelemetryFrame)]
    assert len(frames) == 1
    assert frames[0] == TelemetryFrame("ops", "rec", "opal", "p7", 512)
    assert frames[0].satellite == "opal"


def test_station_measurements_identical_across_modes(monkeypatch):
    def measure(fullparse: bool):
        if fullparse:
            monkeypatch.setenv("REPRO_BUS_FULLPARSE", "1")
        else:
            monkeypatch.delenv("REPRO_BUS_FULLPARSE", raising=False)
        clear_templates()  # templates capture the mode at boot time
        return measure_recovery(tree_ii(), "rtu", trials=3, seed=9, snapshot=False)

    lazy = measure(False)
    full = measure(True)
    assert lazy.samples == full.samples
    assert lazy.phases == full.phases
