"""Serializer tests, including the hypothesis parse∘serialize round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlcmd.document import Element
from repro.xmlcmd.parser import parse_xml
from repro.xmlcmd.serializer import escape_attr, escape_text, serialize_xml


def test_empty_element_self_closes():
    assert serialize_xml(Element("a")) == "<a/>"


def test_attributes_rendered():
    xml = serialize_xml(Element("a", {"x": "1", "y": "two"}))
    assert xml == '<a x="1" y="two"/>'


def test_text_rendered():
    assert serialize_xml(Element("a", text="hi")) == "<a>hi</a>"


def test_children_rendered_in_order():
    element = Element("a", children=[Element("b"), Element("c")])
    assert serialize_xml(element) == "<a><b/><c/></a>"


def test_special_chars_escaped_in_text():
    xml = serialize_xml(Element("a", text="<&>"))
    assert xml == "<a>&lt;&amp;&gt;</a>"


def test_special_chars_escaped_in_attrs():
    xml = serialize_xml(Element("a", {"v": '<&>"'}))
    assert '&lt;' in xml and "&amp;" in xml and "&quot;" in xml


def test_pretty_print_multiline():
    element = Element("a", children=[Element("b", text="t"), Element("c")])
    pretty = serialize_xml(element, compact=False)
    assert pretty == "<a>\n  <b>t</b>\n  <c/>\n</a>"


def test_escape_helpers():
    assert escape_text("a&b") == "a&amp;b"
    assert escape_attr('a"b') == "a&quot;b"


# ----------------------------------------------------------------------
# property: parse(serialize(tree)) == tree
# ----------------------------------------------------------------------

_names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9._-]{0,8}", fullmatch=True)
# Text without leading/trailing whitespace (the parser strips), printable.
_texts = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FF, exclude_characters="<>&\"'"),
    max_size=12,
)


def _elements(depth: int):
    children = (
        st.lists(_elements(depth - 1), max_size=3) if depth > 0 else st.just([])
    )
    return st.builds(
        Element,
        tag=_names,
        attrs=st.dictionaries(_names, _texts, max_size=3),
        text=_texts,
        children=children,
    )


@given(_elements(3))
@settings(max_examples=150, deadline=None)
def test_roundtrip_parse_serialize(element):
    assert parse_xml(serialize_xml(element)) == element


@given(st.dictionaries(_names, st.text(max_size=20), max_size=4))
@settings(max_examples=100, deadline=None)
def test_roundtrip_arbitrary_attr_values(attrs):
    """Attribute values survive even with quotes/angle brackets/newlines-ish."""
    element = Element("m", attrs)
    parsed = parse_xml(serialize_xml(element))
    assert parsed.attrs == attrs
