"""Fast-path equivalence tests: envelope scan, ping templating, memoized
ping decode, and property-style round trips shared between the legacy
(full-parse) and fast decode paths.

Every test here enforces the same invariant: a fast path either produces a
result byte/field-identical to the full pipeline, or refuses (returns
``None``) so callers fall back to the full pipeline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XmlError
from repro.xmlcmd.commands import (
    CommandMessage,
    FailureReport,
    PingReply,
    PingRequest,
    RestartOrder,
    TelemetryFrame,
    encode_message,
    parse_message,
    parse_message_full,
)
from repro.xmlcmd.fastpath import encode_ping_wire, scan_envelope, split_ping_wire
from repro.xmlcmd.serializer import serialize_xml

#: Both decode paths; every round-trip test runs under each.
DECODERS = [
    pytest.param(parse_message, id="fast"),
    pytest.param(parse_message_full, id="legacy"),
]

REGISTRY_MESSAGES = [
    PingRequest("fd", "ses", 17),
    PingReply("ses", "fd", 17),
    CommandMessage("a", "mbus", "attach"),
    CommandMessage("ses", "str", "track", {"azimuth": "143.2", "elevation": "67.9"}),
    TelemetryFrame("fedr", "ops", "opal", "p42", 4800),
    FailureReport("fd", "rec", ("ses", "str"), 12.125),
    RestartOrder("rec", "fd", "R_ses_str", ("ses", "str"), "begin"),
]


@pytest.mark.parametrize("decode", DECODERS)
@pytest.mark.parametrize("message", REGISTRY_MESSAGES, ids=lambda m: type(m).__name__)
def test_roundtrip_identical_on_both_paths(decode, message):
    assert decode(encode_message(message)) == message


@pytest.mark.parametrize("message", REGISTRY_MESSAGES, ids=lambda m: type(m).__name__)
def test_fast_encode_matches_generic_serializer(message):
    assert encode_message(message) == serialize_xml(message.to_element())


@pytest.mark.parametrize("decode", DECODERS)
@pytest.mark.parametrize(
    "bad",
    [
        "<not-xml",
        "",
        '<msg type="ping" from="a" to="b" seq="NaN"/>',
        '<msg type="ping" from="a" seq="1"/>',
        '<msg type="mystery" from="a" to="b"/>',
        '<note type="ping" from="a" to="b" seq="1"/>',
        '<msg type="ping" from="a" to="b" seq="1"/>junk',
        '<msg type="ping" from="a" to="b" seq="1" seq="2"/>',
        '<msg type="failure-report" from="fd" to="rec" detected-at="1.0"/>',
    ],
)
def test_malformed_rejected_on_both_paths(decode, bad):
    with pytest.raises(XmlError):
        decode(bad)


# ----------------------------------------------------------------------
# ping templating and memoized decode
# ----------------------------------------------------------------------

def test_encode_ping_wire_escapes_like_serializer():
    ping = PingRequest('we&"ird', "<x>", 3)
    assert encode_ping_wire("ping", ping.sender, ping.target, ping.seq) == serialize_xml(
        ping.to_element()
    )


def test_split_ping_wire_roundtrip():
    raw = encode_ping_wire("ping-reply", "ses", "fd", 99)
    assert split_ping_wire(raw) == ("ping-reply", "ses", "fd", 99)


def test_split_ping_wire_memo_hits_same_pair():
    first = split_ping_wire(encode_ping_wire("ping", "fd", "ses", 1))
    second = split_ping_wire(encode_ping_wire("ping", "fd", "ses", 2))
    assert first == ("ping", "fd", "ses", 1)
    assert second == ("ping", "fd", "ses", 2)
    # interned identity: the memo returns the same sender/target objects
    assert first[1] is second[1] and first[2] is second[2]


@pytest.mark.parametrize(
    "raw",
    [
        "<other/>",
        '<msg type="ping" from="a" to="b"/>',  # no seq
        "<msg type='ping' from='a' to='b' seq='1'/>",  # non-canonical quoting
        '<msg  type="ping" from="a" to="b" seq="1"/>',  # non-canonical spacing
        '<msg type="ping" from="a" to="b" seq="1" extra="x"/>',
        '<msg type="ping" from="a&amp;b" to="c" seq="1"/>',  # needs decoding
        '<msg type="command" from="a" to="b" verb="v" seq="1"/>',
    ],
)
def test_split_ping_wire_refuses_non_canonical(raw):
    assert split_ping_wire(raw) is None


def test_split_ping_refusals_still_parse_identically():
    # a schema-valid ping in a non-canonical spelling: the fast decoder
    # refuses, the fallback accepts — parse_message output is unchanged.
    raw = "<msg type='ping' from='a' to='b' seq='1'/>"
    assert split_ping_wire(raw) is None
    assert parse_message(raw) == parse_message_full(raw) == PingRequest("a", "b", 1)


def test_split_ping_wire_embedded_seq_decoy():
    # an attribute value containing ' seq="' must not fool the prefix split
    raw = '<msg type="ping" from="a" to="b" seq="5"/>'.replace(
        'from="a"', 'from="a seq="'
    )
    decoy = split_ping_wire(raw)
    assert decoy is None
    assert parse_message(raw) == parse_message_full(raw)


# ----------------------------------------------------------------------
# envelope scan
# ----------------------------------------------------------------------

@pytest.mark.parametrize("message", REGISTRY_MESSAGES, ids=lambda m: type(m).__name__)
def test_envelope_agrees_with_full_parse(message):
    raw = encode_message(message)
    envelope = scan_envelope(raw)
    if envelope is None:
        # refusal is always allowed — the caller full-parses instead
        return
    parsed = parse_message_full(raw)
    assert envelope.sender == parsed.sender
    assert envelope.target == parsed.target
    if envelope.verb is not None:
        assert envelope.verb == parsed.verb
    if envelope.seq is not None:
        assert envelope.seq == parsed.seq


def test_envelope_covers_the_hot_shapes():
    # the shapes that dominate bus traffic must NOT fall back
    assert scan_envelope(encode_message(PingRequest("fd", "mbus", 1))) is not None
    assert scan_envelope(encode_message(PingReply("mbus", "fd", 1))) is not None
    assert scan_envelope(encode_message(CommandMessage("a", "mbus", "attach"))) is not None
    assert scan_envelope(encode_message(TelemetryFrame("a", "b", "s", "p", 10))) is not None
    # commands with canonical <param> bodies are the mixed-traffic shape
    # that used to stall on the full-parse fallback (ROADMAP item 5)
    track = CommandMessage("ses", "str", "track", {"azimuth": "143.2", "elevation": "67.9"})
    envelope = scan_envelope(encode_message(track))
    assert envelope is not None and envelope.verb == "track"
    empty = CommandMessage("a", "b", "v", {"flag": ""})
    assert scan_envelope(encode_message(empty)) is not None


@pytest.mark.parametrize(
    "raw",
    [
        "<not-xml",
        "<other from='a' to='b'/>",
        '<msg type="ping" from="a" to="b" seq="NaN"/>',
        '<msg type="ping" from="a" to="b" seq="1" seq="2"/>',  # duplicate
        '<msg type="ping" from="a" to="b" seq="1"/>junk',  # trailing junk
        '<msg type="mystery" from="a" to="b"/>',  # unknown kind
        '<msg type="command" from="a" to="b"/>',  # command without verb
        '<msg type="telemetry" from="a" to="b" satellite="s" pass="p" bytes="x"/>',
        '<msg type="failure-report" from="fd" to="rec" detected-at="1.0"/>',
        # non-canonical command bodies: only the exact serializer shape is
        # envelope-scannable, everything else needs the full parser
        '<msg type="command" from="a" to="b" verb="v"><param name="x">1</param>',
        '<msg type="command" from="a" to="b" verb="v"> <param name="x">1</param></msg>',
        '<msg type="command" from="a" to="b" verb="v"><other/></msg>',
        '<msg type="command" from="a" to="b" verb="v"><param name="x">a&amp;b</param></msg>',
        "<msg type=\"command\" from=\"a\" to=\"b\" verb=\"v\"><param name='x'>1</param></msg>",
        '<msg type="command" from="a" to="b" verb="v"><param>1</param></msg>',
        '<msg type="ping" from="a" to="b" seq="1"></msg>',  # only commands may have a body
    ],
)
def test_envelope_refuses_anything_it_cannot_guarantee(raw):
    """Inputs the full parser rejects, or whose judgement needs children,
    must never be envelope-routed."""
    assert scan_envelope(raw) is None


# ----------------------------------------------------------------------
# property-style round trips, shared across both decode paths
# ----------------------------------------------------------------------

_names = st.from_regex(r"[a-z][a-z0-9_-]{0,10}", fullmatch=True)
_attr_text = st.text(max_size=15).map(str.strip)


@pytest.mark.parametrize("decode", DECODERS)
@given(sender=_names, target=_names, seq=st.integers(min_value=0, max_value=10**9))
@settings(max_examples=50, deadline=None)
def test_ping_roundtrip_property_both_paths(decode, sender, target, seq):
    for cls in (PingRequest, PingReply):
        message = cls(sender, target, seq)
        assert decode(encode_message(message)) == message


@pytest.mark.parametrize("decode", DECODERS)
@given(
    sender=_names,
    target=_names,
    verb=_names,
    params=st.dictionaries(_names, _attr_text, max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_command_roundtrip_property_both_paths(decode, sender, target, verb, params):
    message = CommandMessage(sender, target, verb, params)
    assert decode(encode_message(message)) == message


@given(sender=_attr_text, target=_attr_text, seq=st.integers())
@settings(max_examples=60, deadline=None)
def test_ping_template_matches_serializer_property(sender, target, seq):
    """Escaping-heavy names: the cached template must stay byte-identical."""
    message = PingRequest(sender, target, seq)
    wire = encode_message(message)
    assert wire == serialize_xml(message.to_element())
    assert parse_message_full(wire) == message


@given(raw=st.text(max_size=40))
@settings(max_examples=100, deadline=None)
def test_arbitrary_text_never_diverges(raw):
    """Fuzz: both decode paths agree on accept/reject and on the result."""
    try:
        fast = parse_message(raw)
    except XmlError:
        with pytest.raises(XmlError):
            parse_message_full(raw)
        return
    assert fast == parse_message_full(raw)
