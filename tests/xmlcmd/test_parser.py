"""Tests for the from-scratch XML parser."""

import pytest

from repro.errors import XmlParseError
from repro.xmlcmd.parser import parse_xml, try_parse_xml


def test_self_closing_element():
    doc = parse_xml("<msg/>")
    assert doc.tag == "msg"
    assert doc.attrs == {}
    assert doc.children == []


def test_attributes_double_and_single_quotes():
    doc = parse_xml("<msg a=\"1\" b='two'/>")
    assert doc.attrs == {"a": "1", "b": "two"}


def test_text_content():
    doc = parse_xml("<m>hello world</m>")
    assert doc.text == "hello world"


def test_text_is_stripped():
    doc = parse_xml("<m>  padded  </m>")
    assert doc.text == "padded"


def test_nested_children():
    doc = parse_xml("<a><b><c/></b><d/></a>")
    assert [c.tag for c in doc.children] == ["b", "d"]
    assert doc.children[0].children[0].tag == "c"


def test_entities_decoded_in_text():
    doc = parse_xml("<m>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</m>")
    assert doc.text == "<tag> & \"q\" 'a'"


def test_entities_decoded_in_attributes():
    doc = parse_xml('<m v="a&amp;b&lt;c"/>')
    assert doc.attrs["v"] == "a&b<c"


def test_numeric_entities():
    doc = parse_xml("<m>&#65;&#x42;</m>")
    assert doc.text == "AB"


def test_comments_skipped():
    doc = parse_xml("<!-- head --><a><!-- inner --><b/></a><!-- tail -->")
    assert doc.tag == "a"
    assert [c.tag for c in doc.children] == ["b"]


def test_xml_declaration_skipped():
    doc = parse_xml('<?xml version="1.0" encoding="utf-8"?><root/>')
    assert doc.tag == "root"


def test_whitespace_around_document():
    doc = parse_xml("   \n <root/> \n  ")
    assert doc.tag == "root"


def test_names_with_digits_dots_dashes():
    doc = parse_xml("<msg-v2.1 attr-x.y='1'/>")
    assert doc.tag == "msg-v2.1"
    assert doc.attrs["attr-x.y"] == "1"


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "no xml at all",
        "<unclosed>",
        "<a><b></a></b>",
        "<a attr=unquoted/>",
        "<a attr='unterminated/>",
        "<a/><b/>",  # two document elements
        "<a>&unknown;</a>",
        "<a>&unterminated</a>",
        "<1badname/>",
        "<a a='1' a='2'/>",  # duplicate attribute
        "<!-- unterminated comment <a/>",
        "<a><!-- unterminated inner</a>",
        "<a>stray trailing</a>junk",
    ],
)
def test_malformed_inputs_raise(bad):
    with pytest.raises(XmlParseError):
        parse_xml(bad)


def test_parse_error_reports_position():
    with pytest.raises(XmlParseError) as excinfo:
        parse_xml("<a attr=bad/>")
    assert excinfo.value.position >= 0


def test_try_parse_success():
    ok, doc = try_parse_xml("<a/>")
    assert ok
    assert doc.tag == "a"


def test_try_parse_failure():
    ok, error = try_parse_xml("<a")
    assert not ok
    assert isinstance(error, XmlParseError)


def test_mixed_text_and_children_text_collected():
    doc = parse_xml("<a>before<b/>after</a>")
    assert doc.children[0].tag == "b"
    assert "before" in doc.text and "after" in doc.text


def test_deep_nesting():
    depth = 50
    text = "".join(f"<n{i}>" for i in range(depth)) + "x" + "".join(
        f"</n{i}>" for i in reversed(range(depth))
    )
    doc = parse_xml(text)
    node = doc
    for _ in range(depth - 1):
        node = node.children[0]
    assert node.text == "x"
