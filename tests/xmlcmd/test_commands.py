"""Tests for the typed command schema."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommandSchemaError, XmlParseError
from repro.xmlcmd.commands import (
    CommandMessage,
    FailureReport,
    PingReply,
    PingRequest,
    RestartOrder,
    TelemetryFrame,
    encode_message,
    parse_message,
)


def roundtrip(message):
    return parse_message(encode_message(message))


def test_ping_roundtrip():
    ping = PingRequest(sender="fd", target="ses", seq=17)
    assert roundtrip(ping) == ping


def test_ping_reply_roundtrip():
    reply = PingReply(sender="ses", target="fd", seq=17)
    assert roundtrip(reply) == reply


def test_command_roundtrip_with_params():
    command = CommandMessage(
        sender="ses", target="str", verb="track",
        params={"azimuth": "143.2", "elevation": "67.9"},
    )
    assert roundtrip(command) == command


def test_command_roundtrip_empty_params():
    command = CommandMessage(sender="a", target="b", verb="attach")
    assert roundtrip(command) == command


def test_telemetry_roundtrip():
    frame = TelemetryFrame(
        sender="fedr", target="ops", satellite="opal", pass_id="p42",
        payload_bytes=4800,
    )
    assert roundtrip(frame) == frame


def test_failure_report_roundtrip():
    report = FailureReport(
        sender="fd", target="rec", failed_components=("ses", "str"),
        detected_at=12.125,
    )
    assert roundtrip(report) == report


def test_restart_order_roundtrip():
    order = RestartOrder(
        sender="rec", target="fd", cell_id="R_ses_str",
        components=("ses", "str"), reason="begin",
    )
    assert roundtrip(order) == order


def test_unknown_type_rejected():
    with pytest.raises(CommandSchemaError):
        parse_message('<msg type="mystery" from="a" to="b"/>')


def test_wrong_document_element_rejected():
    with pytest.raises(CommandSchemaError):
        parse_message('<note type="ping" from="a" to="b" seq="1"/>')


def test_missing_required_attribute_rejected():
    with pytest.raises(CommandSchemaError):
        parse_message('<msg type="ping" from="a" seq="1"/>')  # no "to"


def test_non_integer_seq_rejected():
    with pytest.raises(CommandSchemaError):
        parse_message('<msg type="ping" from="a" to="b" seq="NaN"/>')


def test_empty_failure_report_rejected():
    with pytest.raises(CommandSchemaError):
        parse_message('<msg type="failure-report" from="fd" to="rec" detected-at="1.0"/>')


def test_param_without_name_rejected():
    with pytest.raises(CommandSchemaError):
        parse_message(
            '<msg type="command" from="a" to="b" verb="v"><param>x</param></msg>'
        )


def test_malformed_xml_raises_parse_error():
    with pytest.raises(XmlParseError):
        parse_message("<msg")


_names = st.from_regex(r"[a-z][a-z0-9_-]{0,10}", fullmatch=True)


@given(
    sender=_names,
    target=_names,
    verb=_names,
    params=st.dictionaries(
        _names, st.text(max_size=15).map(str.strip), max_size=4
    ),
)
@settings(max_examples=100, deadline=None)
def test_command_roundtrip_property(sender, target, verb, params):
    command = CommandMessage(sender, target, verb, params)
    assert roundtrip(command) == command


@given(sender=_names, target=_names, seq=st.integers(min_value=0, max_value=10**9))
@settings(max_examples=50, deadline=None)
def test_ping_roundtrip_property(sender, target, seq):
    assert roundtrip(PingRequest(sender, target, seq)) == PingRequest(sender, target, seq)
