"""The workload plane against live stations: service, loss, accounting."""

import pytest

from repro.mercury.station import MercuryStation
from repro.mercury.trees import TREE_BUILDERS
from repro.obs import events
from repro.workload.effects import UserEffects, merge_effects_payloads
from repro.workload.plane import WorkloadPlane
from repro.workload.generator import WorkloadSpec


def _booted(label: str, seed: int = 21) -> MercuryStation:
    station = MercuryStation(tree=TREE_BUILDERS[label](), seed=seed)
    station.boot()
    return station


@pytest.fixture(scope="module")
def healthy_run():
    """30 s of traffic against an undisturbed tree-V station."""
    events.set_validation(True)
    try:
        station = _booted("V")
        plane = WorkloadPlane(station, WorkloadSpec(session_rate=10.0))
        effects = plane.run(30.0)
    finally:
        events.set_validation(False)
    return plane, effects


def test_healthy_station_serves_everything(healthy_run):
    plane, effects = healthy_run
    assert effects.sessions_started > 100
    assert effects.sessions_completed == effects.sessions_started
    assert effects.sessions_abandoned == 0
    assert effects.requests_ok == effects.requests_offered
    assert effects.requests_failed == 0
    assert effects.requests_abandoned == 0
    assert effects.retries_sent == 0
    assert plane.in_flight == 0


def test_healthy_latency_is_sub_timeout(healthy_run):
    _, effects = healthy_run
    assert effects.latency.n == effects.requests_ok
    assert 0.0 < effects.latency.maximum < WorkloadSpec().request_timeout_s
    assert effects.goodput_rps > 0.0
    assert effects.goodput_rps <= effects.offered_rps


def test_all_three_services_answer(healthy_run):
    plane, _ = healthy_run
    # The split tree routes uplinks to fedr; ses and str serve directly.
    assert plane.targets == {
        "telemetry": "ses",
        "schedule": "str",
        "uplink": "fedr",
    }
    for name in ("ses", "str", "fedr"):
        behavior = plane.station.manager.get(name).behavior
        assert behavior.svc_requests > 0


def test_monolithic_tree_routes_uplink_to_fedrcom():
    station = _booted("I")
    plane = WorkloadPlane(station, WorkloadSpec(session_rate=10.0))
    assert plane.targets["uplink"] == "fedrcom"
    effects = plane.run(20.0)
    assert effects.requests_failed == 0
    assert station.manager.get("fedrcom").behavior.svc_requests > 0


def test_crash_during_traffic_is_user_visible():
    station = _booted("V")
    plane = WorkloadPlane(station, WorkloadSpec(session_rate=30.0))
    plane.start()
    station.run_for(5.0)
    failure = station.injector.inject_simple("ses", kind="crash")
    station.run_until_recovered(failure, timeout=120.0)
    station.run_for(5.0)
    plane.stop()
    plane.drain()
    effects = plane.finalize()
    # The outage stalls or kills telemetry requests; every loss carries a
    # real phase attribution (the blame is pinned at first stall, so the
    # "none" bucket stays empty even though final timeouts fire after the
    # episode closes).
    assert effects.retries_sent > 0
    assert effects.requests_failed > 0
    assert effects.failed_by_phase["none"] == 0
    assert sum(effects.failed_by_phase.values()) == effects.requests_failed
    assert effects.sessions_abandoned == effects.requests_failed
    # Conservation: every started session ended exactly one way.
    assert (
        effects.sessions_completed + effects.sessions_abandoned
        == effects.sessions_started
    )


def test_stop_halts_arrivals():
    station = _booted("V")
    plane = WorkloadPlane(station, WorkloadSpec(session_rate=10.0))
    plane.start()
    station.run_for(10.0)
    plane.stop()
    plane.drain()
    started = plane.effects.sessions_started
    station.run_for(20.0)
    assert plane.effects.sessions_started == started


def test_effects_payload_roundtrip(healthy_run):
    _, effects = healthy_run
    payload = effects.to_payload()
    clone = UserEffects.from_payload(payload)
    assert clone.to_payload() == payload
    assert clone.goodput_rps == pytest.approx(effects.goodput_rps)


def test_effects_merge_is_associative():
    def ledger(ok: int, failed: int, latency: float) -> UserEffects:
        effects = UserEffects()
        for _ in range(ok):
            effects.record_ok(latency=latency, retried=False)
        for _ in range(failed):
            effects.record_failure("restart", chain_remaining=1)
        effects.finalize(10.0)
        return effects

    # Power-of-two latencies keep the float sums exact, so associativity
    # holds bitwise (fleet merges are order-fixed anyway; this pins the
    # algebra, not float addition).
    a, b, c = ledger(5, 1, 0.125), ledger(3, 0, 0.25), ledger(7, 2, 0.0625)
    left = merge_effects_payloads(
        [merge_effects_payloads([a.to_payload(), b.to_payload()]), c.to_payload()]
    )
    right = merge_effects_payloads(
        [a.to_payload(), merge_effects_payloads([b.to_payload(), c.to_payload()])]
    )
    assert left == right
    merged = UserEffects.from_payload(left)
    assert merged.requests_ok == 15
    assert merged.requests_failed == 3
    assert merged.lost_requests == 3 + 3
    assert merged.elapsed_s == 10.0
