"""Arrival/session generation: deterministic, isolated, right-shaped."""

import pytest

from repro.sim.kernel import Kernel
from repro.workload.generator import (
    OPS,
    ArrivalProcess,
    SessionPlanner,
    WorkloadSpec,
)


def _stream(seed: int, name: str = "workload.arrivals"):
    return Kernel(seed=seed).rngs.stream(name)


def test_poisson_arrivals_deterministic():
    spec = WorkloadSpec(session_rate=20.0)
    a = ArrivalProcess(_stream(42), spec)
    b = ArrivalProcess(_stream(42), spec)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_poisson_arrivals_match_rate():
    spec = WorkloadSpec(session_rate=20.0)
    arrivals = ArrivalProcess(_stream(7), spec)
    draws = [arrivals.next() for _ in range(4000)]
    assert all(count == 1 for _, count in draws)
    mean_gap = sum(gap for gap, _ in draws) / len(draws)
    assert mean_gap == pytest.approx(1.0 / spec.session_rate, rel=0.1)


def test_burst_arrivals_consume_no_rng():
    spec = WorkloadSpec(arrival="burst", burst_period_s=5.0, burst_size=10)
    stream = _stream(3)
    arrivals = ArrivalProcess(stream, spec)
    assert arrivals.next() == (5.0, 10)
    assert arrivals.next() == (5.0, 10)
    # The stream is untouched: it still produces a fresh stream's output.
    assert stream.random() == _stream(3).random()


def test_arrival_spec_validation():
    with pytest.raises(ValueError):
        ArrivalProcess(_stream(1), WorkloadSpec(arrival="lognormal"))
    with pytest.raises(ValueError):
        ArrivalProcess(_stream(1), WorkloadSpec(session_rate=0.0))
    with pytest.raises(ValueError):
        SessionPlanner(_stream(1), WorkloadSpec(session_length=0))


def test_session_plans_deterministic():
    spec = WorkloadSpec()
    a = SessionPlanner(_stream(42, "workload.sessions"), spec)
    b = SessionPlanner(_stream(42, "workload.sessions"), spec)
    assert [a.plan() for _ in range(200)] == [b.plan() for _ in range(200)]


def test_session_plan_shape():
    spec = WorkloadSpec(session_length=3)
    planner = SessionPlanner(_stream(9, "workload.sessions"), spec)
    plans = [planner.plan() for _ in range(3000)]
    lengths = [len(plan) for plan in plans]
    assert min(lengths) >= 1
    assert max(lengths) <= 2 * spec.session_length - 1
    assert sum(lengths) / len(lengths) == pytest.approx(spec.session_length, rel=0.05)
    ops = [op for plan in plans for op in plan]
    assert set(ops) <= set(OPS)
    # The 60/30/10 service mix, loosely.
    share = ops.count("telemetry") / len(ops)
    assert share == pytest.approx(0.6, abs=0.05)
    share = ops.count("uplink") / len(ops)
    assert share == pytest.approx(0.1, abs=0.03)


def test_streams_are_isolated():
    # Draining the arrivals stream must not change the session plans —
    # the same isolation contract as the rest of the simulator.
    spec = WorkloadSpec()
    kernel_a, kernel_b = Kernel(seed=5), Kernel(seed=5)
    ArrivalProcess(kernel_a.rngs.stream("workload.arrivals"), spec)
    arrivals_b = ArrivalProcess(kernel_b.rngs.stream("workload.arrivals"), spec)
    for _ in range(500):
        arrivals_b.next()
    plans_a = SessionPlanner(kernel_a.rngs.stream("workload.sessions"), spec)
    plans_b = SessionPlanner(kernel_b.rngs.stream("workload.sessions"), spec)
    assert [plans_a.plan() for _ in range(50)] == [plans_b.plan() for _ in range(50)]
