"""Tests for the event schema registry and validation mode."""

import ast
import os

import pytest

from repro.obs import events as ev
from repro.obs.events import (
    EventRegistry,
    ObsValidationError,
    set_validation,
    validation_enabled,
)
from repro.sim.trace import Trace


@pytest.fixture
def validation():
    """Enable schema validation for the test, restoring the prior state."""
    before = validation_enabled()
    set_validation(True)
    yield
    set_validation(before)


# ----------------------------------------------------------------------
# registry basics
# ----------------------------------------------------------------------


def test_constants_are_kind_strings():
    assert ev.FAILURE_INJECTED == "failure_injected"
    assert ev.DETECTION == "detection"
    assert ev.RESTART_ORDERED == "restart_ordered"


def test_specs_carry_layer_and_phase():
    spec = ev.REGISTRY.get(ev.FAILURE_INJECTED)
    assert spec.layer == "faults"
    assert spec.phase == "inject"
    assert "component" in spec.required
    assert ev.REGISTRY.get(ev.RESTART_ORDERED).phase == "decide"
    assert ev.REGISTRY.get(ev.PROCESS_READY).phase == "ready"


def test_unregistered_kind_raises():
    with pytest.raises(ObsValidationError):
        ev.REGISTRY.get("no_such_kind")
    assert not ev.REGISTRY.is_registered("no_such_kind")


def test_duplicate_declaration_rejected():
    registry = EventRegistry()
    registry.register("x", "test")
    with pytest.raises(ObsValidationError):
        registry.register("x", "test")


def test_by_layer_partitions_declaration_order():
    faults = ev.REGISTRY.by_layer("faults")
    assert [s.kind for s in faults][:2] == [ev.FAILURE_INJECTED, ev.FAILURE_CURED]
    assert all(s.layer == "faults" for s in faults)


def test_validate_missing_required_key():
    with pytest.raises(ObsValidationError, match="missing required"):
        ev.REGISTRY.validate(ev.DETECTION, {})
    ev.REGISTRY.validate(ev.DETECTION, {"component": "rtu"})


def test_validate_rejects_undeclared_keys_when_strict():
    with pytest.raises(ObsValidationError, match="undeclared"):
        ev.REGISTRY.validate(ev.DETECTION, {"component": "rtu", "bogus": 1})


def test_validate_allows_optional_keys():
    ev.REGISTRY.validate(
        ev.RESTART_ORDERED,
        {"cell": "R_rtu", "components": ["rtu"], "trigger": "rtu"},
    )
    ev.REGISTRY.validate(ev.BAD_RADIO_COMMAND, {"error": "parse"})
    ev.REGISTRY.validate(ev.BAD_RADIO_COMMAND, {})


def test_narratives():
    assert ev.REGISTRY.narrative_for(ev.DETECTION, {"component": "ses"}) == (
        "FD detected ses"
    )
    assert ev.REGISTRY.narrative_for(ev.REC_RESTART, {}) == (
        "FD restarted unresponsive REC"
    )
    # Kinds without a declared narrative render nothing.
    assert ev.REGISTRY.narrative_for(ev.BUS_ATTACHED, {"client": "rtu"}) is None
    assert ev.REGISTRY.narrative_for("no_such_kind", {}) is None


# ----------------------------------------------------------------------
# validation mode wiring through Trace.emit
# ----------------------------------------------------------------------


def test_emit_validates_when_enabled(validation):
    trace = Trace()
    with pytest.raises(ObsValidationError):
        trace.emit("test", "no_such_kind", time=0.0)
    with pytest.raises(ObsValidationError):
        trace.emit("test", ev.DETECTION, time=0.0)  # missing component
    record = trace.emit("test", ev.DETECTION, time=0.0, component="rtu")
    assert record is not None


def test_emit_skips_validation_by_default():
    assert not validation_enabled()
    trace = Trace()
    assert trace.emit("test", "free_form_kind", time=0.0) is not None


def test_real_simulation_passes_validation(validation):
    """Every event a real recovery run emits satisfies its declared schema."""
    from repro.experiments.recovery import measure_recovery
    from repro.mercury.trees import tree_v

    result = measure_recovery(tree_v(), "rtu", trials=2, seed=11)
    assert len(result.samples) == 2


# ----------------------------------------------------------------------
# emit-site enumeration: every kind emitted anywhere in src/ is declared
# ----------------------------------------------------------------------


def _src_root():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _resolve_kind(node, assignments):
    """Kind strings an emit-site expression can evaluate to, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, ast.Attribute):
        # ev.SOME_KIND — resolve against the events module.
        resolved = getattr(ev, node.attr, None)
        return {resolved} if isinstance(resolved, str) else None
    if isinstance(node, ast.IfExp):
        body = _resolve_kind(node.body, assignments)
        orelse = _resolve_kind(node.orelse, assignments)
        if body is not None and orelse is not None:
            return body | orelse
        return None
    if isinstance(node, ast.Name):
        resolved = set()
        for value in assignments.get(node.id, []):
            kinds = _resolve_kind(value, assignments)
            if kinds is None:
                return None  # a forwarding parameter, not a literal kind
            resolved |= kinds
        return resolved or None
    return None


def _emit_sites(tree):
    """(call node, kind expression) for every trace emit in one module."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "emit" and len(node.args) >= 2:
            yield node, node.args[1]
        elif (
            func.attr == "trace"
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and len(node.args) >= 1
        ):
            # ComponentBehavior.trace(kind, ...) helper.
            yield node, node.args[0]


def test_every_emit_site_uses_a_registered_kind():
    """Walk src/: each statically resolvable emitted kind is declared."""
    root = _src_root()
    resolved_kinds = set()
    unresolved = []
    for dirpath, dirnames, filenames in os.walk(os.path.join(root, "repro")):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=path)
            assignments = {}
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        assignments.setdefault(target.id, []).append(node.value)
            for call, kind_expr in _emit_sites(tree):
                kinds = _resolve_kind(kind_expr, assignments)
                if kinds is None:
                    unresolved.append(f"{path}:{call.lineno}")
                    continue
                resolved_kinds |= kinds
    missing = sorted(k for k in resolved_kinds if not ev.REGISTRY.is_registered(k))
    assert not missing, f"emit sites use unregistered kinds: {missing}"
    # The refactor converted the whole codebase; expect wide coverage.
    assert len(resolved_kinds) >= 40
    # Only parameter-forwarding helpers (Trace.emit wrappers) may be
    # unresolvable; literal kind strings must never hide behind them.
    assert len(unresolved) <= 2, f"too many unresolvable emit sites: {unresolved}"
