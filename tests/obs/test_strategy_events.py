"""Schema-registry coverage for the strategy-lifecycle event kinds.

The strategy registry (PR 7) added two families of events: recovery-layer
strategy lifecycle (planned / bisect probe / verified, with plan→execute→
verify time attribution) and mercury-layer crash-only session-store
activity (session externalized/restored/lost, checkpoint taken/restored,
replay window).  These tests pin their registration — layer, required and
optional keys, narratives — and that validation rejects malformed
payloads, mirroring the exact shapes the recoverer and session hooks emit.
"""

import pytest

from repro.obs import events as ev
from repro.obs.events import ObsValidationError


def test_strategy_lifecycle_kinds_registered():
    assert ev.STRATEGY_PLANNED == "strategy_planned"
    assert ev.BISECT_PROBE == "bisect_probe"
    assert ev.STRATEGY_VERIFIED == "strategy_verified"
    for kind in (ev.STRATEGY_PLANNED, ev.BISECT_PROBE, ev.STRATEGY_VERIFIED):
        assert ev.REGISTRY.get(kind).layer == "recovery"


def test_session_store_kinds_registered():
    for kind in (
        ev.SESSION_EXTERNALIZED,
        ev.SESSION_RESTORED,
        ev.SESSION_LOST,
        ev.CHECKPOINT_TAKEN,
        ev.CHECKPOINT_RESTORED,
        ev.REPLAY_WINDOW,
    ):
        assert ev.REGISTRY.is_registered(kind)
        assert ev.REGISTRY.get(kind).layer == "mercury"


def test_strategy_payloads_validate_as_emitted():
    """The exact payload shapes the recoverer emits must validate."""
    ev.REGISTRY.validate(
        ev.STRATEGY_PLANNED,
        {
            "cell": "R_ses",
            "strategy": "microreboot",
            "batch": ("ses",),
            "expecting": ("ses",),
            "trigger": "ses",
        },
    )
    ev.REGISTRY.validate(
        ev.BISECT_PROBE, {"cell": "R_all", "components": ("fedr",), "round": 2}
    )
    ev.REGISTRY.validate(
        ev.STRATEGY_VERIFIED,
        {
            "cell": "R_ses",
            "strategy": "bisect",
            "plan_s": 0.0,
            "execute_s": 6.1,
            "verify_s": 0.25,
            "rounds": 2,
        },
    )


def test_session_store_payloads_validate_as_emitted():
    ev.REGISTRY.validate(ev.SESSION_EXTERNALIZED, {"component": "ses", "peer": "str"})
    ev.REGISTRY.validate(ev.SESSION_RESTORED, {"component": "ses", "age": 1.25})
    ev.REGISTRY.validate(ev.SESSION_LOST, {"component": "str"})
    ev.REGISTRY.validate(ev.CHECKPOINT_TAKEN, {"component": "fedr"})
    ev.REGISTRY.validate(ev.CHECKPOINT_RESTORED, {"component": "pbcom", "age": 3.5})
    ev.REGISTRY.validate(ev.REPLAY_WINDOW, {"component": "fedr", "messages": 14})


@pytest.mark.parametrize(
    ("kind", "payload"),
    [
        (ev.STRATEGY_PLANNED, {"cell": "R_ses"}),  # missing strategy
        (ev.BISECT_PROBE, {"cell": "R_all", "components": ("fedr",)}),  # no round
        (ev.STRATEGY_VERIFIED, {"strategy": "bisect"}),  # missing cell
        (ev.SESSION_RESTORED, {}),  # missing component
        (ev.REPLAY_WINDOW, {"component": "fedr"}),  # missing messages
    ],
)
def test_strategy_payloads_missing_required_rejected(kind, payload):
    with pytest.raises(ObsValidationError, match="missing required"):
        ev.REGISTRY.validate(kind, payload)


def test_strategy_payloads_undeclared_keys_rejected():
    with pytest.raises(ObsValidationError, match="undeclared"):
        ev.REGISTRY.validate(
            ev.SESSION_LOST, {"component": "ses", "mood": "somber"}
        )


def test_restart_ordered_accepts_strategy_key():
    """The recoverer adds ``strategy=`` to RESTART_ORDERED only for
    non-default strategies; both spellings must validate."""
    base = {"cell": "R_ses", "components": ("ses",), "trigger": "ses"}
    ev.REGISTRY.validate(ev.RESTART_ORDERED, base)
    ev.REGISTRY.validate(
        ev.RESTART_ORDERED, {**base, "strategy": "microreboot", "procedure": "micro"}
    )


def test_strategy_narratives_render():
    text = ev.REGISTRY.narrative_for(
        ev.STRATEGY_PLANNED,
        {"cell": "R_ses", "strategy": "microreboot", "expecting": ("ses", "str")},
    )
    assert "microreboot" in text and "ses+str" in text
    text = ev.REGISTRY.narrative_for(
        ev.BISECT_PROBE, {"cell": "R_all", "components": ("fedr", "pbcom"), "round": 1}
    )
    assert "bisect probe #1" in text
    assert "replayed 14" in ev.REGISTRY.narrative_for(
        ev.REPLAY_WINDOW, {"component": "fedr", "messages": 14}
    )
    assert "lost its session" in ev.REGISTRY.narrative_for(
        ev.SESSION_LOST, {"component": "str"}
    )
