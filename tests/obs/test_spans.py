"""Tests for recovery-episode spans, including the awkward timelines:

* overlapping episodes on the same component;
* restart-while-restarting (insufficient restart, re-manifestation,
  escalated second restart inside one episode);
* FD/REC mutual-restart watchdog moves.
"""

import pytest

from repro.obs import events as ev
from repro.obs.spans import EpisodeTracker, episodes_from_trace
from repro.sim.trace import Trace, TraceRecord


def feed(tracker, *events):
    """Feed (time, kind, data) tuples to a tracker as records."""
    for time, kind, data in events:
        tracker.accept(TraceRecord(time=time, source="test", kind=kind, data=data))


def injected(t, component, failure_id, cure_set=None):
    return (t, ev.FAILURE_INJECTED, {
        "component": component,
        "failure_id": failure_id,
        "cure_set": list(cure_set or [component]),
        "failure_kind": "crash",
    })


def detected(t, component):
    return (t, ev.DETECTION, {"component": component})


def ordered(t, cell, components, trigger=None):
    return (t, ev.RESTART_ORDERED, {
        "cell": cell, "components": list(components), "trigger": trigger,
    })


def ready(t, name):
    return (t, ev.PROCESS_READY, {"name": name})


def cured(t, component, failure_id):
    return (t, ev.FAILURE_CURED, {"component": component, "failure_id": failure_id})


def completed(t, components, cell=None):
    return (t, ev.RESTART_COMPLETE, {"components": list(components), "cell": cell})


# ----------------------------------------------------------------------
# the straightforward episode
# ----------------------------------------------------------------------


def test_simple_episode_phases():
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(100.0, "rtu", 1),
        detected(101.0, "rtu"),
        ordered(101.5, "R_rtu", ["rtu"], trigger="rtu"),
        cured(106.0, "rtu", 1),
        ready(106.0, "rtu"),
        completed(106.0, ["rtu"], cell="R_rtu"),
    )
    (episode,) = tracker.episodes
    assert episode.kind == "failure"
    assert episode.detection_latency == pytest.approx(1.0)
    assert episode.decision_latency == pytest.approx(0.5)
    assert episode.restart_duration == pytest.approx(4.5)
    assert episode.total_recovery == pytest.approx(6.0)
    assert episode.cell == "R_rtu"
    assert episode.is_complete
    assert not tracker.open_episodes()


def test_phases_sum_to_total():
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(0.0, "ses", 7),
        detected(2.25, "ses"),
        ordered(2.5, "R_ses", ["ses"], trigger="ses"),
        cured(9.0, "ses", 7),
        completed(9.0, ["ses"]),
    )
    (episode,) = tracker.episodes
    total = (
        episode.detection_latency
        + episode.decision_latency
        + episode.restart_duration
    )
    assert total == pytest.approx(episode.total_recovery)


def test_flush_finalizes_cured_but_unconfirmed():
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(0.0, "rtu", 1),
        detected(1.0, "rtu"),
        ordered(1.5, "R_rtu", ["rtu"], trigger="rtu"),
        cured(6.0, "rtu", 1),
        # run ends before restart_complete is emitted
    )
    assert tracker.episodes == []
    tracker.flush()
    (episode,) = tracker.episodes
    assert episode.total_recovery == pytest.approx(6.0)


def test_episode_closed_finalizes_and_annotates():
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(0.0, "rtu", 1),
        detected(1.0, "rtu"),
        ordered(1.5, "R_rtu", ["rtu"], trigger="rtu"),
        cured(6.0, "rtu", 1),
        (36.0, ev.EPISODE_CLOSED, {"component": "rtu"}),
    )
    (episode,) = tracker.episodes
    assert episode.closed_at == 36.0
    assert episode.total_recovery == pytest.approx(6.0)


def test_escalation_closes_episode_as_gave_up():
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(0.0, "ses", 3),
        detected(1.0, "ses"),
        (2.0, ev.OPERATOR_ESCALATION, {"component": "ses", "reason": "retries"}),
    )
    (episode,) = tracker.episodes
    assert episode.gave_up
    assert not episode.is_complete
    assert episode.total_recovery is None


# ----------------------------------------------------------------------
# satellite edge case: overlapping episodes on one component
# ----------------------------------------------------------------------


def test_overlapping_episodes_same_component():
    """A second failure lands while the first is mid-recovery.

    Episodes are keyed by failure id, so the second injection must not
    steal the first's detection or restart events.
    """
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(100.0, "rtu", 1),
        detected(101.0, "rtu"),
        ordered(101.5, "R_rtu", ["rtu"], trigger="rtu"),
        injected(103.0, "rtu", 2),  # overlaps: first not yet cured
        cured(106.0, "rtu", 1),
        completed(106.0, ["rtu"], cell="R_rtu"),
        detected(107.0, "rtu"),
        ordered(107.5, "R_rtu", ["rtu"], trigger="rtu"),
        cured(112.0, "rtu", 2),
        completed(112.0, ["rtu"], cell="R_rtu"),
    )
    tracker.flush()
    first, second = tracker.episodes
    assert (first.failure_id, second.failure_id) == (1, 2)
    assert first.total_recovery == pytest.approx(6.0)
    assert first.detected_at == 101.0
    # The second episode's detection is its own, not a redetection of #1.
    assert second.detected_at == 107.0
    assert second.total_recovery == pytest.approx(9.0)
    assert second.redetections == 0


def test_new_injection_finalizes_cured_predecessor():
    """A cured-but-unconfirmed episode must close before a new one opens."""
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(0.0, "rtu", 1),
        detected(1.0, "rtu"),
        ordered(1.5, "R_rtu", ["rtu"], trigger="rtu"),
        cured(6.0, "rtu", 1),
        injected(50.0, "rtu", 2),  # restart_complete for #1 never arrived
    )
    assert len(tracker.episodes) == 1
    assert tracker.episodes[0].failure_id == 1
    (open_episode,) = tracker.open_episodes()
    assert open_episode.failure_id == 2


# ----------------------------------------------------------------------
# satellite edge case: restart-while-restarting
# ----------------------------------------------------------------------


def test_restart_while_restarting_single_episode():
    """An insufficient restart completes, the failure re-manifests, and an
    escalated restart cures — all one episode, phases anchored to the
    FIRST decision so detection + decision + restart == total."""
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(0.0, "pbcom", 9, cure_set=["fedr", "pbcom"]),
        detected(1.0, "pbcom"),
        ordered(1.5, "R_pbcom", ["pbcom"], trigger="pbcom"),  # insufficient
        completed(6.0, ["pbcom"], cell="R_pbcom"),
        (6.0, ev.FAILURE_REMANIFESTED, {"component": "pbcom", "failure_id": 9}),
        detected(8.0, "pbcom"),  # re-detection, same failure
        ordered(8.5, "R_fedr_pbcom", ["fedr", "pbcom"], trigger="pbcom"),
        cured(20.0, "pbcom", 9),
        completed(20.0, ["fedr", "pbcom"], cell="R_fedr_pbcom"),
    )
    (episode,) = tracker.episodes
    assert episode.restarts == 2
    assert episode.remanifestations == 1
    assert episode.redetections == 1
    assert episode.cells == ["R_pbcom", "R_fedr_pbcom"]
    assert episode.cell == "R_fedr_pbcom"
    # Anchored to the first decision at 1.5, not the escalation at 8.5.
    assert episode.decision_latency == pytest.approx(0.5)
    assert episode.restart_duration == pytest.approx(18.5)
    assert episode.total_recovery == pytest.approx(20.0)
    assert (
        episode.detection_latency
        + episode.decision_latency
        + episode.restart_duration
    ) == pytest.approx(episode.total_recovery)


def test_insufficient_completion_does_not_end_episode():
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(0.0, "pbcom", 9, cure_set=["fedr", "pbcom"]),
        detected(1.0, "pbcom"),
        ordered(1.5, "R_pbcom", ["pbcom"], trigger="pbcom"),
        completed(6.0, ["pbcom"], cell="R_pbcom"),  # no cure yet
    )
    assert tracker.episodes == []
    (episode,) = tracker.open_episodes()
    assert not episode.is_complete
    assert episode.recovery_end is None


def test_rekicks_counted():
    tracker = EpisodeTracker()
    feed(
        tracker,
        injected(0.0, "rtu", 1),
        detected(1.0, "rtu"),
        ordered(1.5, "R_rtu", ["rtu"], trigger="rtu"),
        (3.0, ev.RESTART_REKICK, {"components": ["rtu"]}),
        cured(9.0, "rtu", 1),
        completed(9.0, ["rtu"]),
    )
    (episode,) = tracker.episodes
    assert episode.rekicks == 1


# ----------------------------------------------------------------------
# satellite edge case: FD/REC mutual restarts
# ----------------------------------------------------------------------


def test_fd_rec_mutual_restart_watchdog_spans():
    tracker = EpisodeTracker()
    feed(
        tracker,
        (10.0, ev.REC_RESTART, {"target": "rec"}),
        ready(14.0, "rec"),
        (30.0, ev.FD_RESTART, {"target": "fd"}),
        ready(33.0, "fd"),
    )
    rec_span, fd_span = tracker.episodes
    assert rec_span.kind == "watchdog"
    assert rec_span.component == "rec"
    assert rec_span.restart_duration == pytest.approx(4.0)
    # Watchdog moves have no injection: only the restart phase exists.
    assert rec_span.detection_latency is None
    assert rec_span.total_recovery is None
    assert fd_span.component == "fd"
    assert fd_span.restart_duration == pytest.approx(3.0)


def test_duplicate_watchdog_kick_tracked_once():
    tracker = EpisodeTracker()
    feed(
        tracker,
        (10.0, ev.REC_RESTART, {"target": "rec"}),
        (11.0, ev.REC_RESTART, {"target": "rec"}),  # watchdog fired again
        ready(14.0, "rec"),
    )
    (span,) = tracker.episodes
    assert span.decided_at == 10.0  # the first kick anchors the span


def test_proactive_restarts_counted_not_spanned():
    tracker = EpisodeTracker()
    feed(tracker, (5.0, ev.PROACTIVE_RESTART, {"cell": "R_rtu"}))
    assert tracker.proactive_restarts == 1
    assert tracker.episodes == []
    assert not tracker.open_episodes()


# ----------------------------------------------------------------------
# replay + live-simulation integration
# ----------------------------------------------------------------------


def test_episodes_from_trace_replays_retained_records():
    trace = Trace()
    trace.emit("faults", ev.FAILURE_INJECTED, time=0.0, component="rtu",
               failure_id=1, cure_set=["rtu"], failure_kind="crash")
    trace.emit("fd", ev.DETECTION, time=1.0, component="rtu")
    trace.emit("rec", ev.RESTART_ORDERED, time=1.5, cell="R_rtu",
               components=["rtu"], trigger="rtu")
    trace.emit("faults", ev.FAILURE_CURED, time=6.0, component="rtu",
               failure_id=1)
    tracker = episodes_from_trace(trace)
    (episode,) = tracker.episodes
    assert episode.total_recovery == pytest.approx(6.0)


def test_live_tracker_matches_replay_on_real_run():
    """Spans folded live (as a sink) equal spans replayed from the ring."""
    from repro.experiments.recovery import measure_recovery
    from repro.mercury.trees import tree_v

    live = EpisodeTracker()
    result = measure_recovery(
        tree_v(), "rtu", trials=3, seed=21, sinks=[live]
    )
    live.flush()
    totals = sorted(
        e.total_recovery for e in live.episodes if e.kind == "failure"
    )
    assert totals == pytest.approx(sorted(result.samples))
