"""Tests for the pluggable sinks and their mergeable aggregates."""

import io
import json
import math

import pytest

from repro.obs import events as ev
from repro.obs.sinks import (
    CallbackSink,
    JsonlSink,
    MetricsSink,
    RingSink,
    SummaryStat,
    merge_phase_snapshots,
    read_jsonl,
)
from repro.sim.trace import Trace, TraceRecord
from repro.types import Severity


def rec(time, kind, source="test", **data):
    return TraceRecord(time=time, source=source, kind=kind, data=data)


# ----------------------------------------------------------------------
# RingSink / CallbackSink
# ----------------------------------------------------------------------


def test_ring_sink_caps_and_counts_drops():
    ring = RingSink(capacity=3)
    for i in range(5):
        ring.accept(rec(float(i), "k"))
    assert len(ring) == 3
    assert ring.dropped == 2
    assert [r.time for r in ring.records] == [2.0, 3.0, 4.0]
    ring.clear()
    assert len(ring) == 0
    assert ring.dropped == 2  # the counter survives a clear


def test_ring_sink_unbounded_by_default():
    ring = RingSink()
    assert ring.capacity is None
    for i in range(10):
        ring.accept(rec(float(i), "k"))
    assert len(ring) == 10
    assert ring.dropped == 0


def test_callback_sink_forwards():
    seen = []
    sink = CallbackSink(seen.append)
    record = rec(1.0, "k")
    sink.accept(record)
    assert seen == [record]


# ----------------------------------------------------------------------
# JsonlSink
# ----------------------------------------------------------------------


def test_jsonl_sink_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    sink.accept(rec(1.5, ev.DETECTION, source="fd", component="rtu"))
    sink.accept(rec(2.5, ev.RESTART_ORDERED, source="rec",
                    cell="R_rtu", components=["rtu"]))
    sink.close()
    assert sink.written == 2
    rows = list(read_jsonl(path))
    assert rows[0] == {
        "t": 1.5,
        "source": "fd",
        "kind": "detection",
        "severity": "info",
        "data": {"component": "rtu"},
    }
    assert rows[1]["data"]["components"] == ["rtu"]


def test_jsonl_sink_stringifies_non_json_payloads(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    sink.accept(rec(0.0, "k", payload=frozenset(["a"])))  # not JSON-native
    sink.close()
    (row,) = read_jsonl(path)
    assert "a" in row["data"]["payload"]


def test_jsonl_sink_wraps_existing_stream():
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    sink.accept(rec(1.0, "k"))
    sink.close()  # flushes but must not close a caller-owned stream
    assert not buffer.closed
    assert json.loads(buffer.getvalue())["t"] == 1.0


# ----------------------------------------------------------------------
# SummaryStat
# ----------------------------------------------------------------------


def test_summary_stat_moments():
    stat = SummaryStat()
    for value in (1.0, 2.0, 3.0):
        stat.add(value)
    assert stat.n == 3
    assert stat.mean == 2.0
    assert stat.std == pytest.approx(math.sqrt(2.0 / 3.0))
    assert stat.minimum == 1.0
    assert stat.maximum == 3.0


def test_summary_stat_merge_is_associative():
    values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
    serial = SummaryStat()
    for value in values:
        serial.add(value)
    left, right = SummaryStat(), SummaryStat()
    for value in values[:2]:
        left.add(value)
    for value in values[2:]:
        right.add(value)
    left.merge(right)
    assert left == serial


def test_summary_stat_dict_round_trip():
    stat = SummaryStat()
    stat.add(2.0)
    stat.add(4.0)
    rebuilt = SummaryStat.from_dict(stat.to_dict())
    assert rebuilt == stat
    empty = SummaryStat.from_dict(SummaryStat().to_dict())
    assert empty.n == 0
    assert empty.mean == 0.0


def test_merge_phase_snapshots_matches_serial():
    a, b = SummaryStat(), SummaryStat()
    for value in (1.0, 2.0):
        a.add(value)
    for value in (3.0, 4.0):
        b.add(value)
    merged = merge_phase_snapshots(
        {"rtu": {"total": a.to_dict()}},
        {"rtu": {"total": b.to_dict()}, "ses": {"total": b.to_dict()}},
    )
    total = SummaryStat.from_dict(merged["rtu"]["total"])
    assert total.n == 4
    assert total.mean == 2.5
    assert SummaryStat.from_dict(merged["ses"]["total"]).n == 2


# ----------------------------------------------------------------------
# MetricsSink
# ----------------------------------------------------------------------


def episode_records(component="rtu", failure_id=1, base=100.0):
    """A minimal full recovery episode as a record sequence."""
    return [
        rec(base, ev.FAILURE_INJECTED, source="faults", component=component,
            failure_id=failure_id, cure_set=[component], failure_kind="crash"),
        rec(base + 1.0, ev.DETECTION, source="fd", component=component),
        rec(base + 1.5, ev.RESTART_ORDERED, source="rec",
            cell=f"R_{component}", components=[component], trigger=component),
        rec(base + 6.0, ev.FAILURE_CURED, source="faults",
            component=component, failure_id=failure_id),
        rec(base + 6.0, ev.PROCESS_READY, source=f"proc.{component}",
            name=component),
        rec(base + 6.0, ev.RESTART_COMPLETE, source="rec",
            components=[component], cell=f"R_{component}"),
    ]


def test_metrics_sink_counters_and_phases():
    sink = MetricsSink()
    for record in episode_records():
        sink.accept(record)
    assert sink.count(ev.DETECTION) == 1
    assert sink.source_counters[("rec", ev.RESTART_ORDERED)] == 1
    stats = sink.phase_stats("rtu")
    assert stats["detection"].mean == 1.0
    assert stats["decision"].mean == 0.5
    assert stats["restart"].mean == 4.5
    assert stats["total"].mean == 6.0


def test_metrics_sink_snapshot_merge_matches_single_pass():
    serial = MetricsSink()
    for record in episode_records(failure_id=1, base=100.0):
        serial.accept(record)
    for record in episode_records(failure_id=2, base=300.0):
        serial.accept(record)

    worker_a, worker_b = MetricsSink(), MetricsSink()
    for record in episode_records(failure_id=1, base=100.0):
        worker_a.accept(record)
    for record in episode_records(failure_id=2, base=300.0):
        worker_b.accept(record)
    worker_a.merge(worker_b)

    assert worker_a.counters == serial.counters
    assert worker_a.phase_snapshot() == serial.phase_snapshot()
    assert worker_a.source_counters == serial.source_counters


def test_metrics_sink_without_episode_tracking():
    sink = MetricsSink(track_episodes=False)
    for record in episode_records():
        sink.accept(record)
    assert sink.tracker is None
    assert sink.count(ev.FAILURE_INJECTED) == 1
    assert sink.phase_snapshot() == {}


# ----------------------------------------------------------------------
# sinks attached to a live Trace
# ----------------------------------------------------------------------


def test_metrics_sink_on_disabled_trace():
    """Availability runs disable retention; sinks must still aggregate."""
    trace = Trace()
    trace.enabled = False
    sink = trace.add_sink(MetricsSink())
    for record in episode_records():
        trace.emit(record.source, record.kind, severity=Severity.INFO,
                   time=record.time, **record.data)
    assert trace.records == []  # nothing retained
    assert sink.phase_stats("rtu")["total"].n == 1
