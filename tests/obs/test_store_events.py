"""Schema-registry coverage for the crash-only recovery-plane events.

The crash-only recovery plane added two families of kinds: store-layer
fault-model activity (outage open/close, op timeouts, checksum
quarantine) and recovery-layer crash-only supervision (strategy
fallback, supervisor restart, plan fencing, oracle rebuild).  These
tests pin their registration — layer, required/optional keys,
narratives — and that validation rejects malformed payloads, mirroring
the exact shapes the fault model, recoverer, and abstract supervisor
emit.
"""

import pytest

from repro.obs import events as ev
from repro.obs.events import ObsValidationError


def test_store_kinds_registered():
    for kind in (
        ev.STORE_CRASHED,
        ev.STORE_RECOVERED,
        ev.STORE_OP_TIMEOUT,
        ev.STORE_RECORD_QUARANTINED,
    ):
        assert ev.REGISTRY.is_registered(kind)
        assert ev.REGISTRY.get(kind).layer == "store"


def test_crash_only_supervision_kinds_registered():
    for kind in (
        ev.STRATEGY_FALLBACK,
        ev.SUPERVISOR_RESTARTED,
        ev.PLAN_FENCED,
        ev.ORACLE_REBUILT,
    ):
        assert ev.REGISTRY.is_registered(kind)
        assert ev.REGISTRY.get(kind).layer == "recovery"
    assert ev.REGISTRY.get(ev.STRATEGY_FALLBACK).phase == "decide"


def test_store_payloads_validate_as_emitted():
    """The exact payload shapes the fault model emits must validate."""
    ev.REGISTRY.validate(ev.STORE_CRASHED, {"mode": "crash", "duration": 10.0})
    ev.REGISTRY.validate(ev.STORE_RECOVERED, {})
    ev.REGISTRY.validate(
        ev.STORE_OP_TIMEOUT, {"op": "load", "component": "ses", "waited": 0.55}
    )
    ev.REGISTRY.validate(
        ev.STORE_RECORD_QUARANTINED,
        {"component": "ses", "record": "session", "recovered": True},
    )


def test_supervision_payloads_validate_as_emitted():
    ev.REGISTRY.validate(
        ev.STRATEGY_FALLBACK,
        {
            "cell": "R_ses",
            "strategy": "microreboot",
            "fallback": "restart",
            "reason": "store-unavailable",
            "waited": 0.35,
        },
    )
    ev.REGISTRY.validate(
        ev.SUPERVISOR_RESTARTED,
        {
            "supervisor": "rec",
            "generation": 2,
            "reconciled": ("ses",),
            "dropped": (),
        },
    )
    ev.REGISTRY.validate(
        ev.PLAN_FENCED, {"generation": 2, "stale_generation": 1, "cell": "R_ses"}
    )
    ev.REGISTRY.validate(ev.ORACLE_REBUILT, {"origin": "store", "entries": 4})
    ev.REGISTRY.validate(ev.ORACLE_REBUILT, {"origin": "naive"})


@pytest.mark.parametrize(
    ("kind", "payload"),
    [
        (ev.STORE_CRASHED, {"mode": "crash"}),  # missing duration
        (ev.STORE_OP_TIMEOUT, {"op": "load", "component": "ses"}),  # no waited
        (ev.STORE_RECORD_QUARANTINED, {"component": "ses"}),  # no record
        (ev.STRATEGY_FALLBACK, {"cell": "R_ses", "strategy": "microreboot"}),
        (ev.SUPERVISOR_RESTARTED, {"supervisor": "rec"}),  # no generation
        (ev.PLAN_FENCED, {}),  # missing generation
        (ev.ORACLE_REBUILT, {"entries": 4}),  # missing origin
    ],
)
def test_store_payloads_missing_required_rejected(kind, payload):
    with pytest.raises(ObsValidationError, match="missing required"):
        ev.REGISTRY.validate(kind, payload)


def test_store_payloads_undeclared_keys_rejected():
    with pytest.raises(ObsValidationError, match="undeclared"):
        ev.REGISTRY.validate(
            ev.STORE_CRASHED, {"mode": "crash", "duration": 1.0, "vibe": "bad"}
        )


def test_session_lost_accepts_reason():
    """Honest-accounting runs tag store-degraded losses with a reason."""
    ev.REGISTRY.validate(ev.SESSION_LOST, {"component": "ses"})
    ev.REGISTRY.validate(
        ev.SESSION_LOST, {"component": "ses", "reason": "store-unavailable"}
    )


def test_store_narratives_render():
    assert "crash for 10" in ev.REGISTRY.narrative_for(
        ev.STORE_CRASHED, {"mode": "crash", "duration": 10}
    )
    assert "quarantined" in ev.REGISTRY.narrative_for(
        ev.STORE_RECORD_QUARANTINED, {"component": "ses", "record": "session"}
    )
    assert "fell back to restart" in ev.REGISTRY.narrative_for(
        ev.STRATEGY_FALLBACK,
        {"cell": "R_ses", "strategy": "microreboot", "fallback": "restart"},
    )
    assert "generation 2" in ev.REGISTRY.narrative_for(
        ev.SUPERVISOR_RESTARTED, {"supervisor": "rec", "generation": 2}
    )
    assert "fenced" in ev.REGISTRY.narrative_for(ev.PLAN_FENCED, {"generation": 2})
    assert "rebuilt from store" in ev.REGISTRY.narrative_for(
        ev.ORACLE_REBUILT, {"origin": "store"}
    )
