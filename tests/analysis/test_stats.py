"""Tests for the statistics helpers, cross-checked against numpy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    bootstrap_mean_ci,
    coefficient_of_variation,
    mean,
    percentile,
    stddev,
)
from repro.errors import ExperimentError

_sample_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


def test_mean_simple():
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_mean_empty_rejected():
    with pytest.raises(ExperimentError):
        mean([])


@given(_sample_lists)
@settings(max_examples=100, deadline=None)
def test_mean_matches_numpy(samples):
    assert mean(samples) == pytest.approx(float(np.mean(samples)), rel=1e-9, abs=1e-6)


@given(_sample_lists)
@settings(max_examples=100, deadline=None)
def test_stddev_matches_numpy(samples):
    assert stddev(samples) == pytest.approx(float(np.std(samples)), rel=1e-9, abs=1e-6)
    assert stddev(samples, population=False) == pytest.approx(
        float(np.std(samples, ddof=1)) if len(samples) > 1 else 0.0,
        rel=1e-9,
        abs=1e-6,
    )


def test_stddev_single_sample_is_zero():
    assert stddev([5.0]) == 0.0


def test_coefficient_of_variation():
    assert coefficient_of_variation([10.0, 10.0]) == 0.0
    assert coefficient_of_variation([5.0, 15.0]) == pytest.approx(0.5)
    with pytest.raises(ExperimentError):
        coefficient_of_variation([1.0, -1.0])  # zero mean


@given(_sample_lists, st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_percentile_matches_numpy(samples, q):
    assert percentile(samples, q) == pytest.approx(
        float(np.percentile(samples, q)), rel=1e-9, abs=1e-6
    )


def test_percentile_bounds_rejected():
    with pytest.raises(ExperimentError):
        percentile([1.0], -1.0)
    with pytest.raises(ExperimentError):
        percentile([1.0], 101.0)
    with pytest.raises(ExperimentError):
        percentile([], 50.0)


def test_bootstrap_ci_contains_true_mean_for_tight_data():
    samples = [10.0 + 0.01 * i for i in range(50)]
    low, high = bootstrap_mean_ci(samples, seed=1)
    assert low <= mean(samples) <= high
    assert high - low < 0.2


def test_bootstrap_ci_widens_with_spread():
    tight = bootstrap_mean_ci([10.0, 10.1, 9.9, 10.0] * 10, seed=1)
    wide = bootstrap_mean_ci([1.0, 19.0, 2.0, 18.0] * 10, seed=1)
    assert (wide[1] - wide[0]) > (tight[1] - tight[0])


def test_bootstrap_is_deterministic():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert bootstrap_mean_ci(samples, seed=7) == bootstrap_mean_ci(samples, seed=7)


def test_bootstrap_validates_inputs():
    with pytest.raises(ExperimentError):
        bootstrap_mean_ci([], seed=0)
    with pytest.raises(ExperimentError):
        bootstrap_mean_ci([1.0], confidence=1.5)
