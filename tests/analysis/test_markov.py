"""Tests for the analytic availability model."""

import math

import pytest

from repro.analysis.markov import (
    ComponentModel,
    SeriesSystemModel,
    component_availability,
)
from repro.errors import ExperimentError
from repro.mercury.config import PAPER_CONFIG


def test_component_availability_ratio():
    assert component_availability(99.0, 1.0) == pytest.approx(0.99)
    assert component_availability(10.0, 0.0) == 1.0


def test_component_availability_validation():
    with pytest.raises(ExperimentError):
        component_availability(0.0, 1.0)
    with pytest.raises(ExperimentError):
        component_availability(1.0, -1.0)


def test_component_model_properties():
    model = ComponentModel("fedr", mttf=600.0, mttr=6.0)
    assert model.availability == pytest.approx(600 / 606)
    assert model.failure_rate == pytest.approx(1 / 600)


def test_series_availability_is_product():
    system = SeriesSystemModel(
        {
            "a": ComponentModel("a", 100.0, 1.0),
            "b": ComponentModel("b", 200.0, 2.0),
        }
    )
    expected = (100 / 101) * (200 / 202)
    assert system.system_availability() == pytest.approx(expected)


def test_series_failure_rate_superposes():
    system = SeriesSystemModel(
        {
            "a": ComponentModel("a", 100.0, 1.0),
            "b": ComponentModel("b", 50.0, 1.0),
        }
    )
    assert system.system_failure_rate() == pytest.approx(1 / 100 + 1 / 50)
    assert system.system_mttf() == pytest.approx(1 / (1 / 100 + 1 / 50))


def test_series_mttr_is_rate_weighted():
    system = SeriesSystemModel(
        {
            "often": ComponentModel("often", 10.0, 1.0),
            "rare": ComponentModel("rare", 1000.0, 100.0),
        }
    )
    rate_often, rate_rare = 1 / 10, 1 / 1000
    total = rate_often + rate_rare
    expected = rate_often / total * 1.0 + rate_rare / total * 100.0
    assert system.system_mttr() == pytest.approx(expected)


def test_from_tables_key_mismatch_rejected():
    with pytest.raises(ExperimentError):
        SeriesSystemModel.from_tables({"a": 1.0}, {"b": 1.0})


def test_empty_system_rejected():
    with pytest.raises(ExperimentError):
        SeriesSystemModel({})


def test_probability_failure_free_pass():
    """§5.2: 'A large MTTF does not guarantee a failure-free pass'."""
    config = PAPER_CONFIG
    mttr = {name: 6.0 for name in config.station_components(True)}
    system = SeriesSystemModel.from_tables(
        {n: config.mttf_seconds[n] for n in config.station_components(True)}, mttr
    )
    p = system.probability_failure_free(15 * 60.0)
    # fedr alone fails every ~10 minutes: most passes see a failure.
    assert p < 0.3
    assert p == pytest.approx(
        math.exp(-900.0 * system.system_failure_rate())
    )


def test_probability_failure_free_validation():
    system = SeriesSystemModel({"a": ComponentModel("a", 10.0, 1.0)})
    with pytest.raises(ExperimentError):
        system.probability_failure_free(-1.0)
    assert system.probability_failure_free(0.0) == 1.0


def test_mercury_tree_i_vs_tree_v_analytic_availability():
    """The paper's availability argument in closed form: shrinking MTTR
    from the tree-I full reboot to tree-V partial restarts lifts
    availability."""
    config = PAPER_CONFIG
    names = config.station_components(True)
    mttf = {n: config.mttf_seconds[n] for n in names}
    seconds = config.restart_seconds(lone=False)
    detect = config.mean_detection
    reboot = max(seconds.values()) * (1 + config.contention_coefficient * (len(names) - 1))
    tree_i_mttr = {n: detect + reboot for n in names}
    tree_v_mttr = {
        "mbus": detect + seconds["mbus"],
        "rtu": detect + seconds["rtu"],
        "ses": detect + seconds["ses"] * (1 + config.contention_coefficient),
        "str": detect + seconds["str"] * (1 + config.contention_coefficient),
        "fedr": detect + seconds["fedr"],
        "pbcom": detect + seconds["pbcom"] * (1 + config.contention_coefficient),
    }
    a_i = SeriesSystemModel.from_tables(mttf, tree_i_mttr).system_availability()
    a_v = SeriesSystemModel.from_tables(mttf, tree_v_mttr).system_availability()
    assert a_v > a_i
    assert (1 - a_i) / (1 - a_v) > 2.5  # downtime shrinks by ~the MTTR ratio


def test_annual_downtime_framing():
    system = SeriesSystemModel({"a": ComponentModel("a", 99.0, 1.0)})
    assert system.expected_annual_downtime_minutes() == pytest.approx(
        0.01 * 365 * 24 * 60
    )
