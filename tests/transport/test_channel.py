"""Tests for channel delivery semantics: FIFO, latency, close behaviour."""

import pytest

from repro.errors import ChannelClosedError


def connected_pair(network):
    server_side = []
    network.listen("srv:1", server_side.append)
    client = network.connect("client", "srv:1")
    return client, server_side[0]


def test_messages_arrive_after_latency(kernel, network):
    client, server = connected_pair(network)
    inbox = []
    server.on_message(inbox.append)
    client.send("hello")
    assert inbox == []  # not synchronous
    kernel.run()
    assert inbox == ["hello"]


def test_fifo_order_preserved(kernel, network):
    client, server = connected_pair(network)
    inbox = []
    server.on_message(inbox.append)
    for n in range(50):
        client.send(n)
    kernel.run()
    assert inbox == list(range(50))


def test_bidirectional_traffic(kernel, network):
    client, server = connected_pair(network)
    client_in, server_in = [], []
    client.on_message(client_in.append)
    server.on_message(server_in.append)
    client.send("to-server")
    server.send("to-client")
    kernel.run()
    assert server_in == ["to-server"]
    assert client_in == ["to-client"]


def test_messages_before_handler_are_buffered(kernel, network):
    client, server = connected_pair(network)
    client.send("early")
    kernel.run()
    inbox = []
    server.on_message(inbox.append)
    assert inbox == ["early"]


def test_send_on_closed_channel_raises(kernel, network):
    client, server = connected_pair(network)
    client.close()
    with pytest.raises(ChannelClosedError):
        client.send("x")
    with pytest.raises(ChannelClosedError):
        server.send("y")


def test_close_notifies_peer_not_initiator(kernel, network):
    client, server = connected_pair(network)
    closes = {"client": 0, "server": 0}
    client.on_close(lambda: closes.__setitem__("client", closes["client"] + 1))
    server.on_close(lambda: closes.__setitem__("server", closes["server"] + 1))
    client.close()
    kernel.run()
    assert closes == {"client": 0, "server": 1}


def test_close_is_idempotent(kernel, network):
    client, server = connected_pair(network)
    notified = []
    server.on_close(lambda: notified.append(1))
    client.close()
    client.close()
    server.close()
    kernel.run()
    assert notified == [1]


def test_in_flight_messages_dropped_on_close(kernel, network):
    """SIGKILL severs the connection; bytes in the pipe never arrive."""
    client, server = connected_pair(network)
    inbox = []
    server.on_message(inbox.append)
    client.send("doomed")
    client.close()  # close before the latency-delayed delivery
    kernel.run()
    assert inbox == []


def test_buffered_messages_dropped_on_close(kernel, network):
    """A handler installed after the close must not receive traffic that was
    buffered while no handler was set — closing drops in-flight messages,
    and the pre-handler buffer is in flight from the application's view."""
    client, server = connected_pair(network)
    client.send("early")
    kernel.run()  # delivered into the pre-handler buffer
    client.close()
    kernel.run()
    inbox = []
    server.on_message(inbox.append)
    assert inbox == []


def test_buffered_messages_dropped_on_own_close(kernel, network):
    """Same contract when the buffering side itself initiates the close."""
    client, server = connected_pair(network)
    client.send("early")
    kernel.run()
    server.close()
    inbox = []
    server.on_message(inbox.append)
    assert inbox == []


def test_open_property_tracks_state(kernel, network):
    client, server = connected_pair(network)
    assert client.open and server.open
    server.close()
    assert not client.open and not server.open


def test_message_counters(kernel, network):
    client, server = connected_pair(network)
    server.on_message(lambda m: None)
    for _ in range(3):
        client.send("m")
    kernel.run()
    channel = client._channel
    assert channel.messages_sent == 3
    assert channel.messages_delivered == 3
