"""Tests for the per-link network fault fabric (drops, spikes, partitions)."""

import pytest

from repro.errors import ConnectionRefusedError_
from repro.sim.kernel import Kernel
from repro.transport.network import (
    LatencyModel,
    LinkProfile,
    Network,
    NetworkFaultModel,
    link_key,
)


@pytest.fixture
def faults(kernel):
    return NetworkFaultModel(kernel)


def drain(kernel, faults, a="fd", b="mbus", n=400):
    """Plan ``n`` messages on one link; returns (delivered, outcomes)."""
    outcomes = [faults.plan(a, b) for _ in range(n)]
    return [o for o in outcomes if o is not None], outcomes


# ----------------------------------------------------------------------
# link keys and profiles
# ----------------------------------------------------------------------

def test_link_key_strips_ports_and_orders():
    assert link_key("mbus:7000", "fd") == ("fd", "mbus")
    assert link_key("fd", "mbus") == link_key("mbus", "fd")


@pytest.mark.parametrize("kwargs", [
    {"drop_probability": -0.1},
    {"drop_probability": 1.5},
    {"spike_probability": 2.0},
    {"duplicate_probability": -1.0},
    {"spike_seconds": (-0.1, 0.2)},
    {"spike_seconds": (0.3, 0.1)},
    {"duplicate_lag": -0.5},
])
def test_link_profile_validation(kwargs):
    with pytest.raises(ValueError):
        LinkProfile(**kwargs)


def test_latency_model_jitter_without_rng_raises():
    model = LatencyModel(base=0.001, jitter=0.002)  # no rng supplied
    with pytest.raises(ValueError, match="no RNG stream"):
        model.sample()


def test_network_binds_stream_into_bare_latency_model(kernel):
    model = LatencyModel(base=0.001, jitter=0.002)
    Network(kernel, latency=model)
    assert 0.001 <= model.sample() <= 0.003


# ----------------------------------------------------------------------
# inertness: a wired-but-unconfigured fabric perturbs nothing
# ----------------------------------------------------------------------

def test_inert_by_default(kernel, faults):
    assert not faults.active
    delivered, outcomes = drain(kernel, faults)
    assert all(o == (0.0,) for o in outcomes)
    # No named stream was ever drawn: the kernel's stream ledger stays clean.
    assert faults.messages_dropped == 0


def test_inactive_profile_counts_as_inert(kernel, faults):
    faults.degrade("fd", "mbus")  # all probabilities zero
    delivered, outcomes = drain(kernel, faults)
    assert all(o == (0.0,) for o in outcomes)


# ----------------------------------------------------------------------
# drops, spikes, duplicates
# ----------------------------------------------------------------------

def test_drop_probability_loses_messages(kernel, faults):
    faults.degrade("fd", "mbus", drop=0.5)
    delivered, outcomes = drain(kernel, faults)
    assert faults.messages_dropped == len(outcomes) - len(delivered)
    assert 0.3 < len(delivered) / len(outcomes) < 0.7


def test_spikes_add_bounded_delay(kernel, faults):
    faults.degrade("fd", "mbus", spike_probability=1.0, spike_seconds=(0.1, 0.2))
    delivered, _ = drain(kernel, faults, n=100)
    assert all(0.1 <= extras[0] <= 0.2 for extras in delivered)
    assert faults.messages_spiked == 100


def test_duplicates_deliver_two_copies_second_trailing(kernel, faults):
    faults.degrade("fd", "mbus", duplicate_probability=1.0)
    delivered, _ = drain(kernel, faults, n=50)
    assert all(len(extras) == 2 for extras in delivered)
    assert all(extras[1] >= extras[0] for extras in delivered)
    assert faults.messages_duplicated == 50


def test_named_degrade_only_hits_that_link(kernel, faults):
    faults.degrade("fd", "mbus", drop=1.0)
    assert faults.plan("fd", "mbus:7000") is None  # port stripped, still hit
    assert faults.plan("fd", "rtu") == (0.0,)


def test_wildcard_degrade_hits_every_link(kernel, faults):
    faults.degrade(drop=1.0)
    assert faults.plan("fd", "mbus") is None
    assert faults.plan("ses", "str") is None


# ----------------------------------------------------------------------
# per-link streams: fault decisions on one link never perturb another
# ----------------------------------------------------------------------

def test_per_link_streams_are_independent():
    def pattern(extra_link_traffic):
        kernel = Kernel(seed=99)
        faults = NetworkFaultModel(kernel)
        faults.degrade(drop=0.5)
        if extra_link_traffic:
            for _ in range(37):
                faults.plan("ses", "str")
        return [faults.plan("fd", "mbus") is None for _ in range(100)]

    assert pattern(False) == pattern(True)


def test_same_seed_replays_bit_identically():
    def run():
        kernel = Kernel(seed=7)
        faults = NetworkFaultModel(kernel)
        faults.degrade(drop=0.3, spike_probability=0.4, duplicate_probability=0.2)
        return [faults.plan("fd", "mbus") for _ in range(200)]

    assert run() == run()


# ----------------------------------------------------------------------
# partitions
# ----------------------------------------------------------------------

def test_partition_blocks_both_directions_then_heals(kernel, faults):
    faults.partition("fd", "mbus", 10.0)
    assert faults.is_partitioned("fd", "mbus")
    assert faults.plan("fd", "mbus") is None
    assert faults.plan("mbus", "fd") is None
    assert faults.partition_blocked == 2
    kernel.run(until=kernel.now + 10.5)
    assert not faults.is_partitioned("fd", "mbus")
    assert faults.plan("fd", "mbus") == (0.0,)


def test_partition_requires_positive_duration(faults):
    with pytest.raises(ValueError):
        faults.partition("fd", "mbus", 0.0)


def test_partition_refuses_new_connections(kernel):
    faults = NetworkFaultModel(kernel)
    network = Network(kernel, faults=faults)
    network.listen("mbus:7000", lambda e: None)
    faults.partition("fd", "mbus", 5.0)
    with pytest.raises(ConnectionRefusedError_, match="partitioned"):
        network.connect("fd", "mbus:7000")
    assert faults.connects_refused == 1
    kernel.run(until=kernel.now + 6.0)
    network.connect("fd", "mbus:7000")  # heals


def test_manual_heal_ends_partition_early(kernel, faults):
    faults.partition("fd", "mbus", 100.0)
    faults.heal("fd", "mbus")
    assert faults.plan("fd", "mbus") == (0.0,)


def test_repartition_supersedes_pending_heal(kernel, faults):
    faults.partition("fd", "mbus", 5.0)
    kernel.run(until=kernel.now + 4.0)
    faults.partition("fd", "mbus", 50.0)  # extend before the first heals
    kernel.run(until=kernel.now + 2.0)  # the first auto-heal fires here — must be a no-op
    assert faults.is_partitioned("fd", "mbus")


# ----------------------------------------------------------------------
# restore / clear / epoch guards
# ----------------------------------------------------------------------

def test_timed_degrade_auto_restores(kernel, faults):
    faults.degrade("fd", "mbus", duration=5.0, drop=1.0)
    assert faults.plan("fd", "mbus") is None
    kernel.run(until=kernel.now + 5.5)
    assert faults.plan("fd", "mbus") == (0.0,)


def test_redegrade_supersedes_pending_restore(kernel, faults):
    faults.degrade("fd", "mbus", duration=5.0, drop=1.0)
    kernel.run(until=kernel.now + 4.0)
    faults.degrade("fd", "mbus", drop=1.0)  # permanent, supersedes
    kernel.run(until=kernel.now + 2.0)  # the first auto-restore fires here — must no-op
    assert faults.plan("fd", "mbus") is None


def test_clear_restores_everything(kernel, faults):
    faults.degrade(drop=1.0)
    faults.degrade("fd", "mbus", drop=1.0)
    faults.partition("ses", "str", 100.0)
    faults.clear()
    assert not faults.active
    assert faults.plan("fd", "mbus") == (0.0,)
    assert faults.plan("ses", "str") == (0.0,)


# ----------------------------------------------------------------------
# exemption: links off the faulted fabric (FD <-> REC host-local IPC)
# ----------------------------------------------------------------------

def test_exempt_link_shielded_from_default_profile(kernel, faults):
    faults.exempt_link("fd", "rec")
    faults.degrade(drop=1.0)
    assert faults.plan("fd", "rec") == (0.0,)
    assert faults.plan("rec", "fd") == (0.0,)
    assert faults.plan("fd", "mbus") is None  # others still faulted


def test_named_degrade_overrides_exemption(kernel, faults):
    faults.exempt_link("fd", "rec")
    faults.degrade("fd", "rec", drop=1.0)
    assert faults.plan("fd", "rec") is None


def test_partition_ignores_exemption(kernel, faults):
    faults.exempt_link("fd", "rec")
    faults.partition("fd", "rec", 10.0)
    assert faults.plan("fd", "rec") is None
