"""Tests for the simulated network: listeners, connect, latency."""

import pytest

from repro.errors import AddressInUseError, ConnectionRefusedError_
from repro.transport.network import LatencyModel


def test_connect_requires_listener(kernel, network):
    with pytest.raises(ConnectionRefusedError_):
        network.connect("client", "nowhere:1")


def test_listen_and_connect(kernel, network):
    accepted = []
    network.listen("srv:1", accepted.append)
    endpoint = network.connect("client", "srv:1")
    assert len(accepted) == 1
    assert endpoint.peer is accepted[0]
    assert network.connections_established == 1


def test_duplicate_bind_rejected(kernel, network):
    network.listen("srv:1", lambda e: None)
    with pytest.raises(AddressInUseError):
        network.listen("srv:1", lambda e: None)


def test_closed_listener_refuses(kernel, network):
    listener = network.listen("srv:1", lambda e: None)
    listener.close()
    with pytest.raises(ConnectionRefusedError_):
        network.connect("client", "srv:1")
    assert not network.is_bound("srv:1")


def test_rebind_after_close(kernel, network):
    network.listen("srv:1", lambda e: None).close()
    network.listen("srv:1", lambda e: None)  # no AddressInUseError
    assert network.is_bound("srv:1")


def test_listener_counts_accepts(kernel, network):
    listener = network.listen("srv:1", lambda e: None)
    for _ in range(3):
        network.connect("c", "srv:1")
    assert listener.accepted == 3


def test_latency_model_bounds():
    import random

    model = LatencyModel(base=0.001, jitter=0.002, rng=random.Random(1))
    samples = [model.sample() for _ in range(200)]
    assert all(0.001 <= s <= 0.003 for s in samples)
    assert len(set(samples)) > 50


def test_latency_zero_jitter_is_constant():
    model = LatencyModel(base=0.005, jitter=0.0)
    assert model.sample() == 0.005


def test_latency_negative_rejected():
    with pytest.raises(ValueError):
        LatencyModel(base=-1.0)
