"""Unit tests for the recovery-strategy registry (PR 7 tentpole).

Covers the registry itself (lookup, registration errors), the
:class:`RecoveryPlan` gate semantics, each strategy's ``plan`` logic
against duck-typed process-manager fakes, the bisect verify ladder, and
the :class:`StrategyMap` resolution order.
"""

import pytest

from repro.core.recovery_strategies import (
    BisectStrategy,
    CheckpointReplayStrategy,
    MicrorebootStrategy,
    RecoveryPlan,
    RestartStrategy,
    StrategyContext,
    StrategyMap,
    get_strategy,
    observed_failure_kind,
    register_strategy,
    strategy_names,
)
from repro.core.tree import RestartTree, cell


# ----------------------------------------------------------------------
# fakes: just enough manager/process surface for plan()/verify()
# ----------------------------------------------------------------------


class _FakeState:
    def __init__(self, terminal):
        self.is_terminal = terminal


class _FakeProcess:
    def __init__(self, terminal=False, degraded=None):
        self.state = _FakeState(terminal)
        self.degraded_mode = degraded


class _FakeManager:
    def __init__(self, processes):
        self._processes = processes

    def maybe_get(self, name):
        return self._processes.get(name)


class _FakeProcedure:
    def describe(self):
        return "cold"


class _FakeProcedures:
    def for_cell(self, cell_id):
        return _FakeProcedure()


def _ctx(components, trigger, processes=None, cell_id="R_x"):
    return StrategyContext(
        manager=_FakeManager(processes or {}),
        kernel=None,
        tree=None,
        procedures=_FakeProcedures(),
        cell_id=cell_id,
        components=frozenset(components),
        trigger=trigger,
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


def test_shipped_strategies_registered():
    assert strategy_names() == ("bisect", "checkpoint-replay", "microreboot", "restart")
    assert isinstance(get_strategy("restart"), RestartStrategy)
    assert isinstance(get_strategy("microreboot"), MicrorebootStrategy)
    assert isinstance(get_strategy("checkpoint-replay"), CheckpointReplayStrategy)
    assert isinstance(get_strategy("bisect"), BisectStrategy)
    # stateless singletons: the registry hands out the same instance
    assert get_strategy("restart") is get_strategy("restart")


def test_unknown_strategy_lists_known_names():
    with pytest.raises(KeyError, match="known:.*restart"):
        get_strategy("reboot-harder")


def test_register_requires_a_name():
    class Nameless(RestartStrategy):
        name = ""

    with pytest.raises(ValueError, match="non-empty name"):
        register_strategy(Nameless())


def test_plan_gate_defaults_to_batch():
    plan = RecoveryPlan(batch=frozenset({"a", "b"}), label="x")
    assert plan.gate == frozenset({"a", "b"})
    probe = RecoveryPlan(
        batch=frozenset({"a", "b"}), label="x", expecting=frozenset({"a"})
    )
    assert probe.gate == frozenset({"a"})


# ----------------------------------------------------------------------
# per-strategy planning
# ----------------------------------------------------------------------


def test_restart_plan_is_full_batch_with_procedure_label():
    ctx = _ctx({"ses", "str"}, "ses")
    plan = RestartStrategy().plan(ctx)
    assert plan.batch == frozenset({"ses", "str"})
    assert plan.expecting is None
    assert plan.hint == "cold"
    assert plan.label == "cold"  # the cell's procedure description


def test_microreboot_plan_bounces_only_unhealthy_members():
    processes = {
        "ses": _FakeProcess(terminal=True),
        "str": _FakeProcess(),
        "fedr": _FakeProcess(),
    }
    ctx = _ctx({"ses", "str", "fedr"}, "ses", processes)
    plan = MicrorebootStrategy().plan(ctx)
    # the *claimed* batch is the whole cell (suppression must cover a
    # possible widening); only the unhealthy member actually bounces
    assert plan.batch == frozenset({"ses", "str", "fedr"})
    assert plan.expecting == frozenset({"ses"})
    assert plan.gate == frozenset({"ses"})
    assert plan.hint == "micro"
    assert plan.verify_delay == pytest.approx(MicrorebootStrategy.VERIFY_DELAY)


def test_microreboot_includes_degraded_and_trigger():
    processes = {
        "ses": _FakeProcess(),
        "str": _FakeProcess(degraded="hang"),
        "fedr": _FakeProcess(),
    }
    ctx = _ctx({"ses", "str", "fedr"}, "ses", processes)
    plan = MicrorebootStrategy().plan(ctx)
    # str is observably degraded; ses is the (healthy-looking) trigger
    assert plan.gate == frozenset({"ses", "str"})


def test_microreboot_all_healthy_falls_back_to_full_batch():
    processes = {"ses": _FakeProcess(), "str": _FakeProcess()}
    ctx = _ctx({"ses", "str"}, "mbus", processes)  # trigger outside the cell
    plan = MicrorebootStrategy().plan(ctx)
    assert plan.batch == frozenset({"ses", "str"})
    assert plan.expecting is None  # a full bounce needs no verify step


def test_microreboot_verify_completes_when_partial_bounce_cured():
    processes = {"ses": _FakeProcess(terminal=True), "str": _FakeProcess()}
    ctx = _ctx({"ses", "str"}, "ses", processes)
    strategy = MicrorebootStrategy()
    plan = strategy.plan(ctx)
    processes["ses"] = _FakeProcess()  # healthy again after the bounce
    assert strategy.verify(ctx, plan) is None


def test_microreboot_verify_widens_to_full_batch_on_remanifest():
    # a joint failure: ses manifests, the cure set includes healthy-looking
    # str — the partial bounce cannot cure it at any escalation level
    processes = {"ses": _FakeProcess(degraded="zombie"), "str": _FakeProcess()}
    ctx = _ctx({"ses", "str"}, "ses", processes)
    strategy = MicrorebootStrategy()
    plan = strategy.plan(ctx)
    follow = strategy.verify(ctx, plan)
    assert follow is not None
    assert follow.gate == frozenset({"ses", "str"})
    assert follow.hint == "micro"  # externalised state survives the widening
    # the widening runs at most once per action
    assert strategy.verify(ctx, follow) is None
    ctx.rounds = 1  # what the supervisor sets after running the follow-up
    assert strategy.verify(ctx, plan) is None


def test_checkpoint_replay_plan_is_full_batch_with_replay_hint():
    ctx = _ctx({"fedr", "pbcom"}, "fedr")
    plan = CheckpointReplayStrategy().plan(ctx)
    assert plan.batch == frozenset({"fedr", "pbcom"})
    assert plan.hint == "replay"


# ----------------------------------------------------------------------
# bisect ladder
# ----------------------------------------------------------------------


def test_bisect_ladder_probes_trigger_half_first():
    ctx = _ctx({"a", "b", "c", "d"}, "c")
    strategy = BisectStrategy()
    plan = strategy.plan(ctx)
    # ordered [a,b,c,d] splits to [a,b]/[c,d]; trigger c is in the second
    # half, so the ladder probes {c,d} first
    assert plan.batch == frozenset({"a", "b", "c", "d"})
    assert plan.expecting == frozenset({"c", "d"})
    assert plan.verify_delay == pytest.approx(BisectStrategy.VERIFY_DELAY)
    assert ctx.state["ladder"] == [
        frozenset({"c", "d"}),
        frozenset({"a", "b", "c"}),
        frozenset({"a", "b", "c", "d"}),
    ]


def test_bisect_verify_completes_when_trigger_cured():
    processes = {"c": _FakeProcess()}  # healthy again
    ctx = _ctx({"a", "b", "c", "d"}, "c", processes)
    strategy = BisectStrategy()
    plan = strategy.plan(ctx)
    assert strategy.verify(ctx, plan) is None


def test_bisect_verify_widens_then_gives_up():
    processes = {"c": _FakeProcess(degraded="zombie")}  # keeps re-manifesting
    ctx = _ctx({"a", "b", "c", "d"}, "c", processes)
    strategy = BisectStrategy()
    plan = strategy.plan(ctx)
    second = strategy.verify(ctx, plan)
    assert second is not None and second.expecting == frozenset({"a", "b", "c"})
    third = strategy.verify(ctx, second)
    assert third is not None and third.expecting == frozenset({"a", "b", "c", "d"})
    # the full-group probe ran and it is still sick: complete, let the
    # escalation policy take over
    assert strategy.verify(ctx, third) is None


def test_bisect_single_component_cell_degenerates_to_plain_restart():
    ctx = _ctx({"solo"}, "solo")
    strategy = BisectStrategy()
    plan = strategy.plan(ctx)
    assert plan.batch == frozenset({"solo"})
    assert plan.expecting is None
    assert strategy.verify(ctx, plan) is None


# ----------------------------------------------------------------------
# observed failure kind
# ----------------------------------------------------------------------


def test_observed_failure_kind():
    manager = _FakeManager(
        {
            "dead": _FakeProcess(terminal=True),
            "hung": _FakeProcess(degraded="hang"),
            "fine": _FakeProcess(),
        }
    )
    assert observed_failure_kind(manager, "dead") == "crash"
    assert observed_failure_kind(manager, "hung") == "hang"
    assert observed_failure_kind(manager, "fine") == "unknown"
    assert observed_failure_kind(manager, "ghost") == "unknown"


# ----------------------------------------------------------------------
# strategy map resolution
# ----------------------------------------------------------------------


def _annotated_tree():
    return RestartTree(
        cell(
            "root",
            children=[
                cell("R_a", ["a"], strategy="checkpoint-replay"),
                cell("R_b", ["b"]),
            ],
        )
    )


def test_strategy_map_resolution_order():
    tree = _annotated_tree()
    sm = StrategyMap(
        default="restart",
        cells={"R_a": "microreboot"},
        kinds={"zombie": "bisect"},
        cell_kinds={("R_a", "zombie"): "restart"},
    )
    # most specific wins: (cell, kind) > cell > kind > tree annotation > default
    assert sm.select(tree, "R_a", "zombie") == "restart"
    assert sm.select(tree, "R_a", "crash") == "microreboot"
    assert sm.select(tree, "R_b", "zombie") == "bisect"
    assert sm.select(tree, "R_b", "crash") == "restart"  # explicit default


def test_strategy_map_tree_annotation_and_fallbacks():
    tree = _annotated_tree()
    sm = StrategyMap()
    # no overrides: the tree node's own annotation applies
    assert sm.select(tree, "R_a", "crash") == "checkpoint-replay"
    # unannotated node, no default: the oracle hint, then restart
    assert sm.select(tree, "R_b", "crash", oracle_hint="microreboot") == "microreboot"
    assert sm.select(tree, "R_b", "crash") == "restart"


def test_strategy_map_explicit_default_outranks_oracle_hint():
    # a sweep forcing microreboot everywhere must measure microreboot,
    # whatever the oracle would have recommended
    sm = StrategyMap(default="microreboot")
    assert (
        sm.select(_annotated_tree(), "R_b", "crash", oracle_hint="bisect")
        == "microreboot"
    )


def test_strategy_map_rejects_typos_at_construction():
    with pytest.raises(KeyError, match="unknown recovery strategy"):
        StrategyMap(default="restrat")
    with pytest.raises(KeyError, match="unknown recovery strategy"):
        StrategyMap(cells={"R_a": "microboot"})
    with pytest.raises(KeyError, match="unknown recovery strategy"):
        StrategyMap().assign("bogus", cell_id="R_a")


def test_strategy_map_assign_is_chainable():
    sm = (
        StrategyMap()
        .assign("microreboot")
        .assign("bisect", failure_kind="zombie")
        .assign("restart", cell_id="R_a", failure_kind="crash")
    )
    tree = _annotated_tree()
    assert sm.select(tree, "R_b", "crash") == "microreboot"
    assert sm.select(tree, "R_b", "zombie") == "bisect"
    assert sm.select(tree, "R_a", "crash") == "restart"
    assert "default=microreboot" in sm.describe()
