"""Tests for recursive recovery (per-cell procedures, §7)."""

import pytest

from repro.core.oracle import NaiveOracle
from repro.core.policy import RestartPolicy
from repro.core.procedures import (
    ProcedureMap,
    RestartProcedure,
    WarmRecoveryProcedure,
)
from repro.core.tree import RestartTree, cell
from repro.detection.abstract import AbstractSupervisor
from repro.faults.injector import FaultInjector
from repro.procmgr.manager import ProcessManager
from repro.procmgr.process import ProcessSpec, StartupContext
from repro.sim.kernel import Kernel


def checkpointed_work(cold: float, warm: float):
    """A hard-state component: cold replay vs checkpoint restore."""

    def work(context: StartupContext) -> float:
        return warm if context.hint == "warm" else cold

    return work


@pytest.fixture
def rig():
    kernel = Kernel(seed=7)
    manager = ProcessManager(kernel)
    manager.spawn(ProcessSpec("web", lambda ctx: 2.0))
    manager.spawn(ProcessSpec("db", checkpointed_work(cold=30.0, warm=3.0)))
    manager.start_all()
    kernel.run()
    tree = RestartTree(
        cell("root", children=[cell("R_web", ["web"]), cell("R_db", ["db"])]),
        name="svc",
    )
    injector = FaultInjector(kernel, manager)
    return kernel, manager, tree, injector


def test_procedure_map_default_is_restart():
    procedures = ProcedureMap()
    assert isinstance(procedures.for_cell("anything"), RestartProcedure)
    assert procedures.describe("anything") == "restart"
    assert list(procedures.overridden_cells()) == []


def test_procedure_map_assignment_chains():
    procedures = ProcedureMap().assign("R_db", WarmRecoveryProcedure())
    assert procedures.describe("R_db") == "warm-recovery(warm)"
    assert procedures.describe("R_web") == "restart"
    assert list(procedures.overridden_cells()) == ["R_db"]


def test_warm_hint_reaches_startup_context(rig):
    kernel, manager, tree, injector = rig
    WarmRecoveryProcedure().execute(manager, frozenset(["db"]))
    kernel.run()
    ready = kernel.trace.last("process_ready", name="db")
    start = kernel.trace.last("process_start", name="db")
    assert start.data["work"] == pytest.approx(3.0)  # warm path taken


def test_cold_restart_unchanged(rig):
    kernel, manager, tree, injector = rig
    RestartProcedure().execute(manager, frozenset(["db"]))
    kernel.run()
    start = kernel.trace.last("process_start", name="db")
    assert start.data["work"] == pytest.approx(30.0)


def test_supervisor_uses_assigned_procedure(rig):
    kernel, manager, tree, injector = rig
    procedures = ProcedureMap().assign("R_db", WarmRecoveryProcedure())
    policy = RestartPolicy(tree, NaiveOracle())
    AbstractSupervisor(
        kernel, manager, policy, monitored=["web", "db"], procedures=procedures
    )
    failure = injector.inject_simple("db")
    deadline = kernel.now + 60.0
    while kernel.now < deadline and injector.is_active(failure.failure_id):
        kernel.step()
    assert not injector.is_active(failure.failure_id)
    recovery = kernel.now - failure.injected_at
    assert recovery < 5.0  # warm: ~0.7 detect + 3.0, not 30.0


def test_escalation_falls_back_to_cold_parent(rig):
    """A warm recovery that cannot cure escalates to the parent cell, whose
    default procedure is the cold restart — 'try the cheapest cure first'."""
    kernel, manager, tree, injector = rig
    procedures = ProcedureMap().assign("R_db", WarmRecoveryProcedure())
    policy = RestartPolicy(tree, NaiveOracle())
    AbstractSupervisor(
        kernel, manager, policy, monitored=["web", "db"], procedures=procedures
    )
    # Cure requires the whole root (both components together).
    failure = injector.inject_joint("db", ["db", "web"])
    deadline = kernel.now + 120.0
    while kernel.now < deadline and injector.is_active(failure.failure_id):
        kernel.step()
    assert not injector.is_active(failure.failure_id)
    ordered = [
        (r.data["cell"]) for r in kernel.trace.filter(kind="restart_ordered")
    ]
    assert ordered == ["R_db", "root"]
    # First attempt was the cheap warm one; the curing root restart was cold.
    db_starts = [r.data["work"] for r in kernel.trace.filter(kind="process_start", name="db")]
    assert db_starts[-2:] == [pytest.approx(3.0), pytest.approx(30.0)]


def test_components_ignoring_hints_are_unaffected(rig):
    kernel, manager, tree, injector = rig
    WarmRecoveryProcedure().execute(manager, frozenset(["web"]))
    kernel.run()
    start = kernel.trace.last("process_start", name="web")
    assert start.data["work"] == pytest.approx(2.0)


def test_rec_trace_names_procedure():
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_v

    station = MercuryStation(tree=tree_v(), seed=141)
    station.rec.procedures.assign("R_rtu", WarmRecoveryProcedure())
    station.boot()
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    order = station.trace.first("restart_ordered")
    assert order.data["procedure"] == "warm-recovery(warm)"
