"""Tests for the four tree transformations (paper §4, Table 3)."""

import pytest
from hypothesis import given, settings

from repro.core.transformations import (
    TRANSFORMATION_CATALOG,
    consolidate_groups,
    depth_augment,
    insert_joint_node,
    promote_component,
    replace_component,
)
from repro.core.tree import RestartTree, cell
from repro.errors import TransformationError
from repro.mercury.trees import (
    tree_i,
    tree_ii,
    tree_ii_prime,
    tree_iii,
    tree_iv,
    tree_v,
)

from tests.core.test_tree import random_trees


# ----------------------------------------------------------------------
# depth augmentation (tree I -> II, Figure 3)
# ----------------------------------------------------------------------


def test_depth_augment_gives_each_component_a_cell():
    t2 = depth_augment(tree_i())
    assert t2.components == tree_i().components
    for component in t2.components:
        home = t2.get_cell(t2.cell_of_component(component))
        assert home.is_leaf
        assert home.components == frozenset([component])


def test_depth_augment_root_loses_annotations():
    t2 = depth_augment(tree_i())
    assert t2.root.components == frozenset()
    assert len(t2.root.children) == 5


def test_depth_augment_on_cell_without_components_rejected():
    t2 = depth_augment(tree_i())
    with pytest.raises(TransformationError):
        depth_augment(t2)  # root now attaches nothing


def test_depth_augment_inner_cell():
    tree = RestartTree(cell("root", children=[cell("mid", ["a", "b"])]))
    out = depth_augment(tree, "mid")
    mid = out.get_cell("mid")
    assert mid.components == frozenset()
    assert {c.cell_id for c in mid.children} == {"R_a", "R_b"}


def test_depth_augment_records_history():
    t2 = depth_augment(tree_i(), name="tree-II")
    assert t2.name == "tree-II"
    assert any("depth_augment" in entry for entry in t2.history)


def test_depth_augment_avoids_id_collisions():
    tree = RestartTree(cell("root", ["a"], children=[cell("R_a", ["b"])]))
    out = depth_augment(tree, "root")
    assert out.cell_of_component("a") == "R_a_2"
    assert out.cell_of_component("b") == "R_a"


# ----------------------------------------------------------------------
# component split (tree II -> II')
# ----------------------------------------------------------------------


def test_replace_component_splits():
    t2p = replace_component(tree_ii(), "fedrcom", ["fedr", "pbcom"])
    assert "fedrcom" not in t2p.components
    assert {"fedr", "pbcom"} <= t2p.components
    assert t2p.parent_of(t2p.cell_of_component("fedr")) == t2p.root.cell_id
    assert t2p.parent_of(t2p.cell_of_component("pbcom")) == t2p.root.cell_id


def test_replace_component_on_shared_cell_keeps_others():
    tree = RestartTree(cell("root", children=[cell("x", ["a", "b"])]))
    out = replace_component(tree, "a", ["a1", "a2"])
    assert out.components == frozenset(["b", "a1", "a2"])
    assert out.cell_of_component("b") == "x"


def test_replace_component_requires_two_parts():
    with pytest.raises(TransformationError):
        replace_component(tree_ii(), "fedrcom", ["only-one"])


def test_replace_component_rejects_existing_names():
    with pytest.raises(TransformationError):
        replace_component(tree_ii(), "fedrcom", ["fedr", "ses"])


def test_replace_component_at_root():
    tree = RestartTree(cell("root", ["solo"]))
    out = replace_component(tree, "solo", ["p1", "p2"])
    assert out.components == frozenset(["p1", "p2"])
    assert out.root.cell_id == "root"


# ----------------------------------------------------------------------
# joint node insertion (tree II' -> III, Figure 4)
# ----------------------------------------------------------------------


def test_insert_joint_node_structure():
    t3 = insert_joint_node(tree_ii_prime(), ["R_fedr", "R_pbcom"], "R_fp")
    joint = t3.get_cell("R_fp")
    assert {c.cell_id for c in joint.children} == {"R_fedr", "R_pbcom"}
    assert t3.components_restarted_by("R_fp") == frozenset(["fedr", "pbcom"])
    assert t3.parent_of("R_fp") == t3.root.cell_id


def test_insert_joint_node_preserves_individual_buttons():
    t3 = insert_joint_node(tree_ii_prime(), ["R_fedr", "R_pbcom"], "R_fp")
    assert t3.components_restarted_by("R_fedr") == frozenset(["fedr"])


def test_insert_joint_requires_siblings():
    t3 = tree_iii()
    with pytest.raises(TransformationError):
        insert_joint_node(t3, ["R_fedr", "R_mbus"], "R_bad")  # different parents


def test_insert_joint_rejects_existing_id():
    with pytest.raises(TransformationError):
        insert_joint_node(tree_ii_prime(), ["R_fedr", "R_pbcom"], "R_mbus")


def test_insert_joint_rejects_root():
    tree = tree_ii_prime()
    with pytest.raises(TransformationError):
        insert_joint_node(tree, [tree.root.cell_id], "R_x")


# ----------------------------------------------------------------------
# group consolidation (tree III -> IV, Figure 5)
# ----------------------------------------------------------------------


def test_consolidation_merges_into_leaf():
    t4 = consolidate_groups(tree_iii(), ["R_ses", "R_str"], "R_ses_str")
    merged = t4.get_cell("R_ses_str")
    assert merged.is_leaf
    assert merged.components == frozenset(["ses", "str"])
    assert t4.minimal_cell_covering(["ses"]) == "R_ses_str"


def test_consolidation_removes_individual_buttons():
    t4 = consolidate_groups(tree_iii(), ["R_ses", "R_str"], "R_ses_str")
    assert not t4.has_cell("R_ses")
    assert not t4.has_cell("R_str")


def test_consolidation_requires_siblings():
    with pytest.raises(TransformationError):
        consolidate_groups(tree_iii(), ["R_ses", "R_fedr"], "R_bad")


def test_consolidation_of_subtrees_merges_components():
    t3 = tree_iii()
    merged = consolidate_groups(t3, ["R_fedr_pbcom", "R_ses"], "R_big")
    assert merged.components_restarted_by("R_big") == frozenset(["fedr", "pbcom", "ses"])
    assert merged.get_cell("R_big").is_leaf


def test_consolidation_requires_two_cells():
    with pytest.raises(TransformationError):
        consolidate_groups(tree_iii(), ["R_ses"], "R_x")


# ----------------------------------------------------------------------
# node promotion (tree IV -> V, Figure 6)
# ----------------------------------------------------------------------


def test_promotion_moves_annotation_to_parent():
    t5 = promote_component(tree_iv(), "pbcom")
    joint = t5.cell_of_component("pbcom")
    assert joint == "R_fedr_pbcom"
    assert not t5.get_cell(joint).is_leaf
    assert t5.components_restarted_by(joint) == frozenset(["fedr", "pbcom"])


def test_promotion_removes_empty_leaf():
    t5 = promote_component(tree_iv(), "pbcom")
    assert not t5.has_cell("R_pbcom")


def test_promotion_keeps_sibling_button():
    t5 = promote_component(tree_iv(), "pbcom")
    assert t5.components_restarted_by("R_fedr") == frozenset(["fedr"])


def test_promotion_eliminates_guess_too_low_site():
    """After promotion, the deepest cell holding pbcom IS the joint cell."""
    t5 = promote_component(tree_iv(), "pbcom")
    assert t5.minimal_cell_covering(["pbcom"]) == t5.cell_of_component("pbcom")


def test_promotion_of_root_component_rejected():
    with pytest.raises(TransformationError):
        promote_component(tree_i(), "mbus")  # attached to the root


def test_promotion_keeps_cell_with_other_components():
    tree = RestartTree(
        cell("root", children=[cell("pair", ["a", "b"], children=[])])
    )
    out = promote_component(tree, "a")
    assert out.cell_of_component("a") == "root"
    assert out.cell_of_component("b") == "pair"


# ----------------------------------------------------------------------
# the full paper evolution + invariants
# ----------------------------------------------------------------------


def test_full_evolution_matches_paper_structures():
    assert tree_i().height == 0
    assert tree_ii().height == 1
    assert tree_iii().height == 2
    assert tree_iv().height == 2
    t5 = tree_v()
    assert t5.cell_of_component("pbcom") == "R_fedr_pbcom"
    assert t5.components == frozenset(["mbus", "fedr", "pbcom", "ses", "str", "rtu"])


def test_history_accumulates_through_evolution():
    assert len(tree_v().history) == 5


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_transformations_preserve_component_sets(tree):
    """Every applicable transformation preserves the covered components
    (except replace_component, which renames by design)."""
    for component in sorted(tree.components):
        home = tree.cell_of_component(component)
        if tree.parent_of(home) is not None:
            promoted = promote_component(tree, component)
            assert promoted.components == tree.components
            break
    root = tree.root
    if root.components:
        augmented = depth_augment(tree)
        assert augmented.components == tree.components
    if len(root.children) >= 2:
        ids = [c.cell_id for c in root.children[:2]]
        joint = insert_joint_node(tree, ids, "JOINT_NEW")
        assert joint.components == tree.components
        merged = consolidate_groups(tree, ids, "MERGED_NEW")
        assert merged.components == tree.components


def test_catalog_matches_table3():
    keys = [t.key for t in TRANSFORMATION_CATALOG]
    assert keys == [
        "original",
        "depth_augment",
        "subtree_depth_augment",
        "consolidate",
        "promote",
    ]
    by_key = {t.key: t for t in TRANSFORMATION_CATALOG}
    assert by_key["original"].assumptions_embodied == ("A_cure", "A_entire")
    assert "A_independent" in by_key["depth_augment"].assumptions_embodied
    assert "A_independent" not in by_key["consolidate"].assumptions_embodied
    assert by_key["consolidate"].useful_when == "f_A + f_B << f_{A,B}"
    assert "faulty" in by_key["promote"].useful_when
