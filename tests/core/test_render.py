"""Tests for ASCII tree rendering."""

from hypothesis import given, settings

from repro.core.render import render_compact, render_side_by_side, render_tree
from repro.mercury.trees import tree_iv, tree_v

from tests.core.test_tree import random_trees


def test_render_tree_lists_every_cell_and_component():
    text = render_tree(tree_iv())
    for cell_id in tree_iv().cell_ids:
        assert cell_id in text
    for component in tree_iv().components:
        assert component in text


def test_render_tree_shows_name_by_default():
    assert render_tree(tree_iv()).splitlines()[0] == "tree-IV"
    assert render_tree(tree_iv(), show_name=False).splitlines()[0] == "R_mercury"


def test_render_tree_nesting_markers():
    text = render_tree(tree_iv(), show_name=False)
    assert "├── " in text
    assert "└── " in text
    assert "│   " in text


def test_render_compact_nested_parens():
    compact = render_compact(tree_v())
    assert compact.startswith("(R_mercury ")
    assert "(R_fedr_pbcom:pbcom (R_fedr:fedr))" in compact
    assert compact.count("(") == compact.count(")")


def test_render_side_by_side_contains_both_and_arrow():
    left = render_tree(tree_iv())
    right = render_tree(tree_v())
    combined = render_side_by_side(left, right)
    assert "=>" in combined
    assert "tree-IV" in combined and "tree-V" in combined


def test_render_side_by_side_unequal_heights():
    combined = render_side_by_side("a\nb\nc\nd", "x")
    assert combined.count("\n") == 3


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_render_covers_all_cells(tree):
    text = render_tree(tree)
    for cell_id in tree.cell_ids:
        assert cell_id in text


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_compact_parens_balanced(tree):
    compact = render_compact(tree)
    assert compact.count("(") == compact.count(")") == len(tree.cell_ids)
