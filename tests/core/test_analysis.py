"""Tests for the analytic MTTF/MTTR reasoning (§3.2, §4.1 formulas)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    availability,
    expected_group_mttr,
    group_mttf_bound,
    group_mttr_bound,
    minimal_curing_cell,
    predict_recovery_time,
    restart_duration,
    system_mttr_table,
)
from repro.errors import TreeError
from repro.mercury.config import PAPER_CONFIG
from repro.mercury.trees import tree_i, tree_ii, tree_iii, tree_iv, tree_v


def test_group_bounds():
    assert group_mttf_bound([10.0, 5.0, 20.0]) == 5.0
    assert group_mttr_bound([10.0, 5.0, 20.0]) == 20.0


def test_group_bounds_empty_rejected():
    with pytest.raises(TreeError):
        group_mttf_bound([])
    with pytest.raises(TreeError):
        group_mttr_bound([])


@given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_bounds_hold_per_paper_inequalities(values):
    """§3.2: MTTF_G <= min(MTTF_ci) and MTTR_G >= max(MTTR_ci)."""
    assert group_mttf_bound(values) <= min(values)
    assert group_mttr_bound(values) >= max(values)
    assert group_mttf_bound(values) == min(values)
    assert group_mttr_bound(values) == max(values)


def test_expected_group_mttr_formula():
    """§4.1: MTTR_G = sum f_ci * MTTR_ci."""
    f = {frozenset(["a"]): 0.8, frozenset(["b"]): 0.2}
    mttr = {frozenset(["a"]): 5.0, frozenset(["b"]): 20.0}
    assert expected_group_mttr(f, mttr) == pytest.approx(0.8 * 5 + 0.2 * 20)


def test_expected_group_mttr_requires_normalised_f():
    with pytest.raises(TreeError):
        expected_group_mttr({frozenset(["a"]): 0.5}, {frozenset(["a"]): 1.0})


def test_expected_group_mttr_requires_mttr_for_each_cure():
    with pytest.raises(TreeError):
        expected_group_mttr({frozenset(["a"]): 1.0}, {})


def test_restart_duration_singleton():
    seconds = PAPER_CONFIG.restart_seconds()
    duration = restart_duration(tree_ii(), "R_rtu", seconds, 0.047)
    assert duration == pytest.approx(seconds["rtu"])


def test_restart_duration_group_contention():
    seconds = PAPER_CONFIG.restart_seconds(lone=False)
    duration = restart_duration(tree_i(), "R_mercury", seconds, 0.047)
    assert duration == pytest.approx(max(seconds[c] for c in tree_i().components) * (1 + 0.047 * 4))


def test_restart_duration_missing_component_rejected():
    with pytest.raises(TreeError):
        restart_duration(tree_ii(), "R_rtu", {}, 0.0)


def test_minimal_curing_cell_matches_tree():
    assert minimal_curing_cell(tree_iii(), ["fedr", "pbcom"]) == "R_fedr_pbcom"


def test_predict_tree_i_full_reboot():
    """The analytic prediction lands on the Table 2 tree-I value."""
    config = PAPER_CONFIG
    predicted = predict_recovery_time(
        tree_i(),
        ["rtu"],
        config.restart_seconds(lone=False),
        mean_detection=config.mean_detection,
        contention_coefficient=config.contention_coefficient,
    )
    assert predicted == pytest.approx(24.75, abs=0.6)


def test_predict_tree_ii_rtu():
    config = PAPER_CONFIG
    predicted = predict_recovery_time(
        tree_ii(),
        ["rtu"],
        config.restart_seconds(),
        mean_detection=config.mean_detection,
        contention_coefficient=config.contention_coefficient,
    )
    assert predicted == pytest.approx(5.59, abs=0.2)


def test_predict_faulty_oracle_blends_mistake_path():
    config = PAPER_CONFIG
    base = predict_recovery_time(
        tree_iv(), ["fedr", "pbcom"], config.restart_seconds(lone=False),
        mean_detection=config.mean_detection,
        contention_coefficient=config.contention_coefficient,
        guess_too_low_probability=0.0, manifest_component="pbcom",
    )
    faulty = predict_recovery_time(
        tree_iv(), ["fedr", "pbcom"], config.restart_seconds(lone=False),
        mean_detection=config.mean_detection,
        contention_coefficient=config.contention_coefficient,
        guess_too_low_probability=0.3, manifest_component="pbcom",
    )
    assert faulty > base
    # Paper: 29.19s for tree IV with the 30% faulty oracle.
    assert faulty == pytest.approx(29.19, abs=1.5)


def test_predict_tree_v_immune_to_mistakes():
    """Tree V structurally forbids guess-too-low on pbcom (§4.4)."""
    config = PAPER_CONFIG
    perfect = predict_recovery_time(
        tree_v(), ["fedr", "pbcom"], config.restart_seconds(lone=False),
        mean_detection=config.mean_detection,
        contention_coefficient=config.contention_coefficient,
        guess_too_low_probability=0.0, manifest_component="pbcom",
    )
    faulty = predict_recovery_time(
        tree_v(), ["fedr", "pbcom"], config.restart_seconds(lone=False),
        mean_detection=config.mean_detection,
        contention_coefficient=config.contention_coefficient,
        guess_too_low_probability=0.3, manifest_component="pbcom",
    )
    assert faulty == perfect
    assert faulty == pytest.approx(21.63, abs=1.0)


def test_availability_ratio():
    assert availability(99.0, 1.0) == pytest.approx(0.99)
    with pytest.raises(TreeError):
        availability(0.0, 1.0)
    with pytest.raises(TreeError):
        availability(1.0, -1.0)


@given(
    mttf=st.floats(min_value=1e-3, max_value=1e9),
    mttr=st.floats(min_value=0.0, max_value=1e9),
)
@settings(max_examples=100, deadline=None)
def test_availability_in_unit_interval(mttf, mttr):
    a = availability(mttf, mttr)
    assert 0.0 < a <= 1.0


def test_system_mttr_table_orders_trees_correctly():
    """Theory predicts the paper's ordering: each evolution step helps the
    failures it targets and never hurts under a perfect oracle."""
    config = PAPER_CONFIG
    kwargs = dict(
        mean_detection=config.mean_detection,
        contention_coefficient=config.contention_coefficient,
    )
    t1 = system_mttr_table(tree_i(), config.restart_seconds(lone=False), **kwargs)
    t2 = system_mttr_table(tree_ii(), config.restart_seconds(), **kwargs)
    for component in t2:
        assert t2[component] <= t1[component] + 1e-9
    # Consolidation: ses/str improve from III (lone restarts) to IV (joint).
    t3 = system_mttr_table(tree_iii(), config.restart_seconds(), **kwargs)
    t4 = system_mttr_table(tree_iv(), config.restart_seconds(lone=False), **kwargs)
    assert t4["ses"] < t3["ses"]
    assert t4["str"] < t3["str"]
