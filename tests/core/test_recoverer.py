"""Tests for REC: restart execution, escalation, FD/REC mutual recovery."""

import pytest

from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_iii, tree_v
from repro.types import ProcessState


@pytest.fixture
def station():
    s = MercuryStation(tree=tree_v(), seed=31)
    s.boot()
    return s


def test_rec_executes_minimal_restart(station):
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    orders = station.trace.filter(kind="restart_ordered")
    assert len(orders) == 1
    assert orders[0].data["cell"] == "R_rtu"
    assert orders[0].data["components"] == ("rtu",)


def test_rec_notifies_fd_begin_and_complete(station):
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    station.run_for(1.0)  # the complete order crosses the ctl channel
    assert station.trace.first("suppression_begin", components=("rtu",))
    assert station.trace.first("suppression_end", components=("rtu",))


def test_rec_closes_episode_after_observation(station):
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    station.run_for(station.config.observation_window + 1.0)
    assert station.trace.first("episode_closed", component="rtu")
    assert station.policy.episode_for("rtu") is None


def test_rec_escalates_uncured_failure():
    station = MercuryStation(tree=tree_iii(), seed=32, oracle="naive")
    station.boot()
    failure = station.injector.inject_joint("pbcom", ["fedr", "pbcom"])
    station.run_until_recovered(failure, timeout=400.0)
    cells = [r.data["cell"] for r in station.trace.filter(kind="restart_ordered")]
    assert cells == ["R_pbcom", "R_fedr_pbcom"]
    assert station.policy.escalations == 1


def test_rec_serialises_concurrent_episodes(station):
    f1 = station.injector.inject_simple("rtu")
    f2 = station.injector.inject_simple("fedr")
    station.run_until_recovered(f1)
    station.run_until_recovered(f2)
    station.run_until_quiescent()
    cells = sorted(r.data["cell"] for r in station.trace.filter(kind="restart_ordered"))
    assert cells == ["R_fedr", "R_rtu"]


def test_restart_log_records_decisions(station):
    failure = station.injector.inject_simple("mbus")
    station.run_until_recovered(failure)
    restarts = [d for d in station.rec.restart_log if d.action == "restart"]
    assert restarts and restarts[0].cell_id == "R_mbus"


# ----------------------------------------------------------------------
# FD/REC mutual recovery (§2.2's special cases)
# ----------------------------------------------------------------------


def test_rec_restarts_failed_fd(station):
    station.manager.fail("fd")
    station.run_for(15.0)
    assert station.manager.get("fd").is_running
    assert station.trace.first("fd_restart") is not None


def test_fd_restarts_failed_rec(station):
    station.manager.fail("rec")
    station.run_for(15.0)
    assert station.manager.get("rec").is_running
    assert station.trace.first("rec_restart") is not None


def test_station_recovers_component_failure_after_fd_bounce(station):
    station.manager.fail("fd")
    station.run_for(15.0)
    failure = station.injector.inject_simple("rtu")
    recovery = station.run_until_recovered(failure)
    assert recovery < 60.0


def test_station_recovers_component_failure_after_rec_bounce(station):
    station.manager.fail("rec")
    station.run_for(15.0)
    failure = station.injector.inject_simple("rtu")
    recovery = station.run_until_recovered(failure)
    assert recovery < 60.0


def test_fd_and_rec_do_not_flap_when_healthy(station):
    station.run_for(120.0)
    assert station.trace.first("fd_restart") is None
    assert station.trace.first("rec_restart") is None
    assert station.manager.get("fd").start_count == 1
    assert station.manager.get("rec").start_count == 1


def test_component_down_across_fd_bounce_recovered_after_grace(station):
    """Blind-spot regression: rtu fails, then FD dies before reporting it.
    The fresh FD never saw rtu alive, but the warm-up grace deadline lets
    it judge (and report) the still-dead component eventually."""
    failure = station.injector.inject_simple("rtu")
    station.run_for(0.1)
    station.manager.fail("fd")
    station.run_for(station.fd.warmup_grace + 30.0)
    assert station.manager.get("rtu").is_running
    assert not station.injector.is_active(failure.failure_id)


def test_both_fd_and_rec_down_is_unrecoverable(station):
    """The paper's stated limitation: FD and REC failing together."""
    station.manager.fail("fd")
    station.manager.fail("rec")
    station.run_for(60.0)
    assert station.manager.get("fd").state is ProcessState.FAILED
    assert station.manager.get("rec").state is ProcessState.FAILED
