"""Tests for restart cells, trees and groups — including hypothesis
properties over randomly generated trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import RestartCell, RestartTree, cell
from repro.errors import (
    DuplicateCellError,
    TreeError,
    UnknownCellError,
    UnknownComponentError,
)


@pytest.fixture
def figure2():
    """The paper's Figure 2 example tree."""
    return RestartTree(
        cell("R_ABC", children=[
            cell("R_A", ["A"]),
            cell("R_BC", children=[cell("R_B", ["B"]), cell("R_C", ["C"])]),
        ]),
        name="figure-2",
    )


def test_empty_cell_rejected():
    with pytest.raises(TreeError):
        RestartCell("empty")


def test_empty_cell_id_rejected():
    with pytest.raises(TreeError):
        RestartCell("", components=["x"])


def test_duplicate_cell_id_rejected():
    with pytest.raises(DuplicateCellError):
        RestartTree(cell("R", children=[cell("X", ["a"]), cell("X", ["b"])]))


def test_component_attached_twice_rejected():
    with pytest.raises(TreeError):
        RestartTree(cell("R", children=[cell("X", ["a"]), cell("Y", ["a"])]))


def test_components_and_cells(figure2):
    assert figure2.components == frozenset("ABC")
    assert figure2.cell_ids == ["R_ABC", "R_A", "R_BC", "R_B", "R_C"]


def test_parent_lookup(figure2):
    assert figure2.parent_of("R_ABC") is None
    assert figure2.parent_of("R_A") == "R_ABC"
    assert figure2.parent_of("R_B") == "R_BC"
    with pytest.raises(UnknownCellError):
        figure2.parent_of("ghost")


def test_cell_of_component(figure2):
    assert figure2.cell_of_component("A") == "R_A"
    assert figure2.cell_of_component("C") == "R_C"
    with pytest.raises(UnknownComponentError):
        figure2.cell_of_component("Z")


def test_components_restarted_by(figure2):
    """Pushing a cell's button restarts its whole subtree (§3.1)."""
    assert figure2.components_restarted_by("R_B") == frozenset("B")
    assert figure2.components_restarted_by("R_BC") == frozenset("BC")
    assert figure2.components_restarted_by("R_ABC") == frozenset("ABC")


def test_five_restart_groups(figure2):
    """The paper counts 5 groups in the Figure 2 tree."""
    groups = figure2.groups()
    assert len(groups) == 5
    assert frozenset("ABC") in groups  # the system is always a group


def test_path_to_root(figure2):
    assert figure2.path_to_root("R_B") == ["R_B", "R_BC", "R_ABC"]
    assert figure2.path_to_root("R_ABC") == ["R_ABC"]


def test_is_ancestor(figure2):
    assert figure2.is_ancestor("R_ABC", "R_B")
    assert figure2.is_ancestor("R_BC", "R_C")
    assert figure2.is_ancestor("R_B", "R_B")  # reflexive
    assert not figure2.is_ancestor("R_B", "R_BC")
    assert not figure2.is_ancestor("R_A", "R_B")


def test_depth_and_height(figure2):
    assert figure2.depth_of("R_ABC") == 0
    assert figure2.depth_of("R_A") == 1
    assert figure2.depth_of("R_B") == 2
    assert figure2.height == 2


def test_minimal_cell_covering_single(figure2):
    assert figure2.minimal_cell_covering(["B"]) == "R_B"


def test_minimal_cell_covering_pair(figure2):
    assert figure2.minimal_cell_covering(["B", "C"]) == "R_BC"
    assert figure2.minimal_cell_covering(["A", "B"]) == "R_ABC"


def test_minimal_cell_covering_errors(figure2):
    with pytest.raises(TreeError):
        figure2.minimal_cell_covering([])
    with pytest.raises(UnknownComponentError):
        figure2.minimal_cell_covering(["B", "Z"])


def test_annotation_on_internal_cell():
    """Node promotion (§4.4) places a component on an internal cell."""
    tree = RestartTree(
        cell("root", children=[cell("joint", ["pbcom"], children=[cell("R_fedr", ["fedr"])])])
    )
    assert tree.cell_of_component("pbcom") == "joint"
    assert tree.components_restarted_by("joint") == frozenset(["pbcom", "fedr"])
    assert tree.minimal_cell_covering(["pbcom"]) == "joint"
    assert tree.minimal_cell_covering(["fedr"]) == "R_fedr"


def test_structural_equality(figure2):
    clone = RestartTree(
        cell("R_ABC", children=[
            cell("R_A", ["A"]),
            cell("R_BC", children=[cell("R_B", ["B"]), cell("R_C", ["C"])]),
        ]),
    )
    assert figure2.structurally_equal(clone)
    different = RestartTree(cell("R_ABC", ["A", "B", "C"]))
    assert not figure2.structurally_equal(different)


def test_validate_complete(figure2):
    figure2.validate_complete(["A", "B", "C"])
    with pytest.raises(TreeError):
        figure2.validate_complete(["A", "B"])
    with pytest.raises(TreeError):
        figure2.validate_complete(["A", "B", "C", "D"])


def test_with_name_records_history(figure2):
    renamed = figure2.with_name("fig2-v2", note="renamed for test")
    assert renamed.name == "fig2-v2"
    assert renamed.history == ("renamed for test",)
    assert renamed.structurally_equal(figure2)


# ----------------------------------------------------------------------
# hypothesis: random trees
# ----------------------------------------------------------------------

_ids = st.integers(min_value=0, max_value=10**6)


@st.composite
def random_trees(draw, max_depth=3, max_children=3):
    """Generate a random valid restart tree with unique ids/components."""
    counter = [0]

    def build(depth):
        counter[0] += 1
        my_id = f"cell{counter[0]}"
        n_children = draw(st.integers(0, max_children)) if depth > 0 else 0
        children = [build(depth - 1) for _ in range(n_children)]
        n_components = draw(st.integers(0 if children else 1, 2))
        components = []
        for _ in range(n_components):
            counter[0] += 1
            components.append(f"comp{counter[0]}")
        return RestartCell(my_id, components, children)

    return RestartTree(build(max_depth), name="random")


@given(random_trees())
@settings(max_examples=80, deadline=None)
def test_root_group_covers_everything(tree):
    assert tree.components_restarted_by(tree.root.cell_id) == tree.components


@given(random_trees())
@settings(max_examples=80, deadline=None)
def test_subtree_monotonicity(tree):
    """A child's restart set is always a subset of its parent's (§3.1)."""
    for cell_id in tree.cell_ids:
        parent = tree.parent_of(cell_id)
        if parent is not None:
            assert tree.components_restarted_by(cell_id) <= tree.components_restarted_by(parent)


@given(random_trees())
@settings(max_examples=80, deadline=None)
def test_minimal_covering_is_minimal_and_covers(tree):
    for component in tree.components:
        minimal = tree.minimal_cell_covering([component])
        covered = tree.components_restarted_by(minimal)
        assert component in covered
        # No strict descendant on the path also covers it.
        home = tree.cell_of_component(component)
        for cell_id in tree.path_to_root(home):
            if cell_id == minimal:
                break
            assert component not in tree.components_restarted_by(cell_id) or cell_id == minimal


@given(random_trees())
@settings(max_examples=80, deadline=None)
def test_paths_end_at_root(tree):
    for cell_id in tree.cell_ids:
        path = tree.path_to_root(cell_id)
        assert path[0] == cell_id
        assert path[-1] == tree.root.cell_id


@given(random_trees())
@settings(max_examples=80, deadline=None)
def test_groups_count_equals_cells(tree):
    assert len(tree.groups()) == len(tree.cell_ids)
