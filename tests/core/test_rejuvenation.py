"""Tests for proactive rejuvenation."""

import pytest

from repro.core.rejuvenation import RejuvenationScheduler, no_pass_imminent
from repro.errors import TreeError, UnknownCellError
from repro.mercury.orbit import PassWindow
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_v


@pytest.fixture
def station():
    s = MercuryStation(tree=tree_v(), seed=101)
    s.boot()
    return s


def test_proactive_restart_via_rec(station):
    accepted = station.rec.request_restart("R_rtu", reason="rejuvenation")
    assert accepted
    station.run_for(10.0)
    assert station.manager.get("rtu").start_count == 2
    # No failure was ever injected or detected; FD stayed quiet.
    assert station.trace.filter(kind="detection") == []
    order = station.trace.first("restart_ordered")
    assert order.data["trigger"] == "rejuvenation"


def test_proactive_restart_rejected_while_busy(station):
    station.injector.inject_simple("pbcom")
    station.run_for(2.0)  # joint restart in flight (~22s)
    assert not station.rec.request_restart("R_rtu")


def test_proactive_restart_rejected_when_member_down(station):
    station.injector.inject_simple("rtu")
    station.run_for(0.2)  # not yet detected, but already down
    assert not station.rec.request_restart("R_rtu")
    station.run_until_quiescent()


def test_proactive_restart_unknown_cell_rejected(station):
    assert not station.rec.request_restart("R_ghost")


def test_scheduler_runs_rounds(station):
    scheduler = RejuvenationScheduler(
        station.kernel, station.rec, station.tree, ["R_rtu"], period=30.0
    )
    station.run_for(100.0)
    assert scheduler.rounds_executed >= 3
    assert station.manager.get("rtu").start_count >= 4
    assert station.all_station_running()


def test_scheduler_respects_idle_predicate(station):
    scheduler = RejuvenationScheduler(
        station.kernel, station.rec, station.tree, ["R_rtu"],
        period=20.0, idle_predicate=lambda now: False,
    )
    station.run_for(100.0)
    assert scheduler.rounds_executed == 0
    assert scheduler.rounds_skipped_not_idle >= 4
    assert station.manager.get("rtu").start_count == 1


def test_scheduler_stop(station):
    scheduler = RejuvenationScheduler(
        station.kernel, station.rec, station.tree, ["R_rtu"], period=20.0
    )
    scheduler.stop()
    station.run_for(100.0)
    assert scheduler.rounds_executed == 0


def test_scheduler_validates_inputs(station):
    with pytest.raises(TreeError):
        RejuvenationScheduler(
            station.kernel, station.rec, station.tree, ["R_rtu"], period=0.0
        )
    with pytest.raises(UnknownCellError):
        RejuvenationScheduler(
            station.kernel, station.rec, station.tree, ["R_typo"], period=10.0
        )


def test_rejuvenation_resets_pbcom_age(station):
    """The Mercury payoff: a proactive pbcom restart resets disconnect age."""
    station.aging._threshold = 100  # keep pbcom from aging out mid-test
    for _ in range(3):
        failure = station.injector.inject_simple("fedr")
        station.run_until_recovered(failure)
        station.run_until_quiescent()
    assert station.aging.age == 3
    assert station.rec.request_restart("R_fedr_pbcom", reason="rejuvenation")
    station.run_for(30.0)
    assert station.aging.age == 0
    assert station.all_station_running()


def test_abstract_supervisor_proactive_restart():
    station = MercuryStation(tree=tree_v(), seed=102, supervisor="abstract")
    station.manager.start_all(station.station_components)
    station.kernel.run(until=60.0)
    assert station.abstract_supervisor.request_restart("R_rtu", "rejuvenation")
    station.run_for(10.0)
    assert station.manager.get("rtu").start_count == 2
    assert station.all_station_running()


def test_no_pass_imminent_predicate():
    windows = [
        PassWindow("opal", start=100.0, duration=600.0, max_elevation_deg=60.0),
        PassWindow("opal", start=2000.0, duration=600.0, max_elevation_deg=60.0),
    ]
    idle = no_pass_imminent(windows, margin_s=60.0)
    assert idle(0.0)          # pass starts at 100, margin ends at 60
    assert not idle(50.0)     # pass would start inside the margin
    assert not idle(300.0)    # mid-pass
    assert idle(800.0)        # between passes, next one far away
    assert not idle(1950.0)   # second pass imminent
    assert idle(2700.0)       # after the last pass
