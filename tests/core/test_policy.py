"""Tests for the restart policy: episodes, escalation, budgets."""

import pytest

from repro.core.oracle import LearningOracle, NaiveOracle
from repro.core.policy import RestartPolicy
from repro.mercury.trees import tree_ii, tree_iii


def make_policy(tree=None, oracle=None, **kw):
    return RestartPolicy(tree or tree_iii(), oracle or NaiveOracle(), **kw)


def test_fresh_failure_gets_oracle_recommendation():
    policy = make_policy()
    decision = policy.report_failure("rtu", now=10.0)
    assert decision.action == "restart"
    assert decision.cell_id == "R_rtu"
    assert decision.components == frozenset(["rtu"])


def test_unknown_component_ignored():
    policy = make_policy()
    decision = policy.report_failure("ghost", now=0.0)
    assert decision.action == "ignore"


def test_duplicate_report_while_deciding_ignored():
    policy = make_policy()
    policy.report_failure("rtu", now=0.0)
    decision = policy.report_failure("rtu", now=0.1)
    assert decision.action == "ignore"


def test_report_during_restart_ignored():
    policy = make_policy()
    decision = policy.report_failure("rtu", now=0.0)
    policy.restart_began(decision.components, now=0.1)
    assert policy.report_failure("rtu", now=0.5).action == "ignore"


def test_persisting_failure_escalates_to_parent():
    policy = make_policy()
    first = policy.report_failure("pbcom", now=0.0)
    assert first.cell_id == "R_pbcom"
    policy.restart_began(first.components, now=0.5)
    policy.restart_completed(first.components, now=21.0)
    second = policy.report_failure("pbcom", now=22.0)
    assert second.action == "restart"
    assert second.cell_id == "R_fedr_pbcom"
    assert policy.escalations == 1


def test_escalation_chain_reaches_root_then_gives_up():
    policy = make_policy()
    cells = []
    now = 0.0
    for _ in range(4):
        decision = policy.report_failure("pbcom", now=now)
        if decision.action != "restart":
            cells.append(decision.action)
            break
        cells.append(decision.cell_id)
        policy.restart_began(decision.components, now + 1)
        policy.restart_completed(decision.components, now + 2)
        now += 10.0
    assert cells == ["R_pbcom", "R_fedr_pbcom", "R_mercury", "give_up"]
    assert policy.give_ups == 1


def test_observation_expiry_closes_episode():
    policy = make_policy()
    decision = policy.report_failure("rtu", now=0.0)
    policy.restart_began(decision.components, 0.5)
    policy.restart_completed(decision.components, 6.0)
    assert policy.observation_expired("rtu", now=9.0)
    # A later failure opens a fresh episode at the leaf again.
    fresh = policy.report_failure("rtu", now=20.0)
    assert fresh.cell_id == "R_rtu"
    assert policy.escalations == 0


def test_observation_expiry_noop_when_not_observing():
    policy = make_policy()
    assert not policy.observation_expired("rtu", now=1.0)
    policy.report_failure("rtu", now=2.0)
    assert not policy.observation_expired("rtu", now=3.0)  # still deciding


def test_budget_exhausts_before_root_on_deep_path():
    """pbcom's escalation path has 3 levels; a budget of 2 trips first."""
    policy = make_policy(budget=2, budget_window=100.0)
    now = 0.0
    actions = []
    reasons = []
    for _ in range(5):
        decision = policy.report_failure("pbcom", now=now)
        actions.append(decision.action)
        reasons.append(decision.reason)
        if decision.action != "restart":
            break
        policy.restart_began(decision.components, now + 0.5)
        policy.restart_completed(decision.components, now + 1.0)
        now += 5.0
    assert actions == ["restart", "restart", "give_up"]
    assert "budget" in reasons[-1]


def test_budget_resets_after_cured_episode():
    policy = make_policy(budget=2, budget_window=1000.0)
    now = 0.0
    for _ in range(6):  # 6 distinct cured episodes, well over the budget
        decision = policy.report_failure("rtu", now=now)
        assert decision.action == "restart"
        policy.restart_began(decision.components, now + 0.5)
        policy.restart_completed(decision.components, now + 1.0)
        assert policy.observation_expired("rtu", now + 5.0)
        now += 10.0


def test_collateral_restarts_do_not_accrue_budget():
    """Components bounced as part of a group restart are not suspected."""
    policy = make_policy(tree_iii(), budget=2, budget_window=1000.0)
    now = 0.0
    for _ in range(4):
        decision = policy.report_failure("pbcom", now=now)
        assert decision.action == "restart"
        policy.restart_began(decision.components, now + 0.5)
        policy.restart_completed(decision.components, now + 1.0)
        policy.observation_expired("pbcom", now + 5.0)
        now += 10.0
    # fedr was restarted by the escalated joint cell in none of these
    # (leaf restarts), but even after group restarts it has no episode:
    decision = policy.report_failure("fedr", now=now)
    assert decision.action == "restart"


def test_restarts_in_window_counts():
    policy = make_policy(budget=10, budget_window=50.0)
    decision = policy.report_failure("rtu", now=0.0)
    policy.restart_began(decision.components, 0.0)
    assert policy.restarts_in_window("rtu", now=10.0) == 1
    assert policy.restarts_in_window("rtu", now=100.0) == 0
    assert policy.restarts_in_window("never", now=0.0) == 0


def test_learning_oracle_gets_outcomes():
    oracle = LearningOracle(min_samples=1, confidence=0.5)
    policy = make_policy(tree_iii(), oracle)
    decision = policy.report_failure("pbcom", now=0.0)
    policy.restart_began(decision.components, 0.5)
    policy.restart_completed(decision.components, 21.0)
    # Failure persists -> negative outcome for R_pbcom, escalate.
    second = policy.report_failure("pbcom", now=22.0)
    policy.restart_began(second.components, 22.5)
    policy.restart_completed(second.components, 44.0)
    assert policy.observation_expired("pbcom", 50.0)
    estimates = oracle.f_estimates("pbcom")
    assert estimates["R_pbcom"] == 0.0
    assert estimates["R_fedr_pbcom"] == 1.0
    # Next time the oracle jumps straight to the joint cell.
    assert policy.report_failure("pbcom", now=60.0).cell_id == "R_fedr_pbcom"


def test_replace_tree_swaps_structure():
    policy = make_policy(tree_ii())
    assert policy.report_failure("fedrcom", now=0.0).cell_id == "R_fedrcom"
    policy.replace_tree(tree_iii())
    assert policy.report_failure("pbcom", now=1.0).cell_id == "R_pbcom"


def test_invalid_budget_rejected():
    with pytest.raises(ValueError):
        make_policy(budget=0)
