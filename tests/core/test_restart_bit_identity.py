"""The `restart` strategy is bit-identical to the pre-refactor recoverer.

``tests/core/golden_restart_traces.json`` was captured from the recoverer
*before* the strategy registry existed: one chaos trial per
(scenario, tree, supervisor) cell at seed 42, recording the SHA-256 of the
full JSONL event trace plus the MTTR samples and episode counters.  These
tests re-run every golden cell through today's strategy-aware recoverer
(with no strategy configured — the default path every pre-existing caller
takes) and require byte-for-byte identical traces.  Any divergence means
the refactor changed observable behavior for classic stations, which is
exactly the regression the registry design promises not to make.

The golden file is regenerated only when a PR *intends* to change traces
(see the capture script embedded in the file's provenance comment — it is
this test's loop with a JSON dump instead of asserts).
"""

import hashlib
import json
import os
import tempfile

import pytest

from repro.chaos.engine import run_chaos
from repro.mercury.trees import TREE_BUILDERS
from repro.obs.sinks import JsonlSink

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_restart_traces.json")

with open(_GOLDEN_PATH, "r", encoding="utf-8") as _fh:
    _GOLDEN = json.load(_fh)


@pytest.mark.parametrize("key", sorted(_GOLDEN["cells"]))
def test_restart_traces_match_pre_refactor_golden(key):
    scenario, tree_label, supervisor = key.split("|")
    cell = _GOLDEN["cells"][key]
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "trace.jsonl")
        result = run_chaos(
            TREE_BUILDERS[tree_label](),
            scenario,
            trials=_GOLDEN["trials"],
            seed=_GOLDEN["seed"],
            sinks=[JsonlSink(path)],
            supervisor=supervisor,
        )
        with open(path, "rb") as fh:
            sha = hashlib.sha256(fh.read()).hexdigest()
    assert sha == cell["trace_sha256"], (
        f"{key}: trace diverged from the pre-refactor recoverer"
    )
    assert [round(s, 9) for s in result.mttr_samples] == cell["mttr"]
    assert result.cured == cell["cured"]
    assert result.escalations == cell["escalations"]
    assert len(result.violations) == cell["violations"]


def test_campaign_cache_keys_unchanged_by_strategy_field():
    """A classic cell's cache key is a pure function of its spec.

    ``CampaignCell.strategy`` defaulting to ``""`` is part of the v6 spec;
    the key must not vary between equivalent constructions, and a
    strategy-enabled cell must key differently from its classic twin.
    """
    import dataclasses

    from repro.experiments.runner import CampaignCell, cache_key
    from repro.mercury.config import PAPER_CONFIG

    classic = CampaignCell(kind="chaos", tree="V", seed=42, scenario="cascade", trials=1)
    rebuilt = CampaignCell(**dataclasses.asdict(classic))
    assert cache_key(classic, PAPER_CONFIG) == cache_key(rebuilt, PAPER_CONFIG)
    enabled = dataclasses.replace(classic, strategy="restart")
    assert cache_key(enabled, PAPER_CONFIG) != cache_key(classic, PAPER_CONFIG)


def test_strategy_enabled_station_shape_differs_from_classic():
    """Strategy-enabled stations snapshot separately from classic ones.

    ``station_shape`` feeds ``boot_seed``; the strategy key is added only
    for strategy-enabled runs (classic shapes — and therefore every boot
    seed behind the golden traces above — stay untouched), and a
    strategy-enabled run must never share a warmed template with a classic
    station whose components lack the session-store wiring.
    """
    from repro.experiments.snapshot import station_shape
    from repro.mercury.config import PAPER_CONFIG

    tree = TREE_BUILDERS["V"]()
    base = dict(
        oracle="perfect", oracle_error_rate=0.3, supervisor="full", net_faults=False
    )
    classic = station_shape("chaos", tree, PAPER_CONFIG, **base)
    enabled = station_shape("chaos", tree, PAPER_CONFIG, strategy="restart", **base)
    assert classic != enabled
