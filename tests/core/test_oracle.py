"""Tests for the four oracles."""

import random

import pytest

from repro.core.oracle import FaultyOracle, LearningOracle, NaiveOracle, PerfectOracle
from repro.faults.injector import FaultInjector
from repro.mercury.trees import tree_ii, tree_iii, tree_iv, tree_v

from tests.conftest import spawn_simple


def station_like_manager(kernel, manager, components):
    for name in components:
        spawn_simple(manager, name, work=0.5)
    manager.start_all()
    kernel.run()
    return FaultInjector(kernel, manager)


def test_naive_recommends_home_cell():
    oracle = NaiveOracle()
    tree = tree_iii()
    assert oracle.recommend(tree, "pbcom") == "R_pbcom"
    assert oracle.recommend(tree, "ses") == "R_ses"
    assert oracle.describe() == "naive"


def test_perfect_uses_cure_set(kernel, manager):
    tree = tree_iii()
    injector = station_like_manager(kernel, manager, sorted(tree.components))
    oracle = PerfectOracle(manager)
    injector.inject_joint("pbcom", ["fedr", "pbcom"])
    assert oracle.recommend(tree, "pbcom") == "R_fedr_pbcom"


def test_perfect_simple_failure_is_leaf(kernel, manager):
    tree = tree_iii()
    injector = station_like_manager(kernel, manager, sorted(tree.components))
    oracle = PerfectOracle(manager)
    injector.inject_simple("pbcom")
    assert oracle.recommend(tree, "pbcom") == "R_pbcom"


def test_perfect_without_descriptor_degrades_to_naive(kernel, manager):
    tree = tree_ii()
    station_like_manager(kernel, manager, sorted(tree.components))
    oracle = PerfectOracle(manager)
    assert oracle.recommend(tree, "rtu") == "R_rtu"


def test_perfect_unknown_process_degrades_to_naive(kernel, manager):
    oracle = PerfectOracle(manager)
    assert oracle.recommend(tree_ii(), "rtu") == "R_rtu"


def test_faulty_error_rate_zero_is_transparent(kernel, manager):
    tree = tree_iv()
    injector = station_like_manager(kernel, manager, sorted(tree.components))
    oracle = FaultyOracle(PerfectOracle(manager), 0.0, random.Random(1))
    injector.inject_joint("pbcom", ["fedr", "pbcom"])
    for _ in range(20):
        assert oracle.recommend(tree, "pbcom") == "R_fedr_pbcom"
    assert oracle.mistakes == 0


def test_faulty_guess_too_low_goes_to_leaf(kernel, manager):
    tree = tree_iv()
    injector = station_like_manager(kernel, manager, sorted(tree.components))
    oracle = FaultyOracle(PerfectOracle(manager), 1.0, random.Random(1))
    injector.inject_joint("pbcom", ["fedr", "pbcom"])
    assert oracle.recommend(tree, "pbcom") == "R_pbcom"
    assert oracle.mistakes == 1


def test_faulty_rate_approximates_configured(kernel, manager):
    tree = tree_iv()
    injector = station_like_manager(kernel, manager, sorted(tree.components))
    oracle = FaultyOracle(PerfectOracle(manager), 0.3, random.Random(5))
    injector.inject_joint("pbcom", ["fedr", "pbcom"])
    low = sum(1 for _ in range(2000) if oracle.recommend(tree, "pbcom") == "R_pbcom")
    assert low / 2000 == pytest.approx(0.3, abs=0.03)


def test_faulty_cannot_err_when_structure_forbids(kernel, manager):
    """Tree V's point: pbcom's home IS the minimal cell, so no lower guess
    exists and the faulty oracle is forced to be right."""
    tree = tree_v()
    injector = station_like_manager(kernel, manager, sorted(tree.components))
    oracle = FaultyOracle(PerfectOracle(manager), 1.0, random.Random(1))
    injector.inject_joint("pbcom", ["fedr", "pbcom"])
    for _ in range(10):
        assert oracle.recommend(tree, "pbcom") == "R_fedr_pbcom"
    assert oracle.mistakes == 0


def test_faulty_invalid_rate_rejected():
    with pytest.raises(ValueError):
        FaultyOracle(NaiveOracle(), 1.5, random.Random(0))
    with pytest.raises(ValueError):
        FaultyOracle(NaiveOracle(), 0.8, random.Random(0), too_high_rate=0.3)
    with pytest.raises(ValueError):
        FaultyOracle(NaiveOracle(), 0.0, random.Random(0), too_high_rate=-0.1)


def test_guess_too_high_recommends_parent(kernel, manager):
    tree = tree_iii()
    injector = station_like_manager(kernel, manager, sorted(tree.components))
    oracle = FaultyOracle(
        PerfectOracle(manager), 0.0, random.Random(3), too_high_rate=1.0
    )
    injector.inject_simple("fedr")  # correct: R_fedr; too high: R_fedr_pbcom
    assert oracle.recommend(tree, "fedr") == "R_fedr_pbcom"
    assert oracle.too_high_mistakes == 1


def test_guess_too_high_at_root_impossible(kernel, manager):
    tree = tree_iii()
    injector = station_like_manager(kernel, manager, sorted(tree.components))
    oracle = FaultyOracle(
        PerfectOracle(manager), 0.0, random.Random(3), too_high_rate=1.0
    )
    # A joint-curable failure's minimal cell... use a failure whose minimal
    # cure is the root: nothing higher exists, so no mistake is possible.
    injector.inject_joint("ses", ["ses", "rtu"])
    assert oracle.recommend(tree, "ses") == tree.root.cell_id
    assert oracle.too_high_mistakes == 0


def test_guess_too_high_still_cures_but_slower(kernel, manager):
    """Too-high restarts cure in one action (superset), just expensively —
    validated end-to-end on the station."""
    from repro.core.oracle import FaultyOracle as FO
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_iii as t3

    station = MercuryStation(tree=t3(), seed=55, oracle="perfect")
    station.oracle = FO(
        PerfectOracle(station.manager),
        0.0,
        station.kernel.rngs.stream("test.too_high"),
        too_high_rate=1.0,
    )
    station.policy.oracle = station.oracle
    station.boot()
    failure = station.injector.inject_simple("fedr")
    recovery = station.run_until_recovered(failure)
    # The R_fedr_pbcom restart drags pbcom's ~21 s along: one action, slow.
    assert recovery > 15.0
    orders = station.trace.filter(kind="restart_ordered")
    assert len(orders) == 1
    assert orders[0].data["cell"] == "R_fedr_pbcom"


def test_learning_starts_naive():
    oracle = LearningOracle()
    assert oracle.recommend(tree_iii(), "pbcom") == "R_pbcom"


def test_learning_adopts_curing_cell_after_evidence():
    oracle = LearningOracle(min_samples=3, confidence=0.8)
    tree = tree_iii()
    for _ in range(3):
        oracle.notify_outcome(tree, "pbcom", "R_pbcom", cured=False)
        oracle.notify_outcome(tree, "pbcom", "R_fedr_pbcom", cured=True)
    assert oracle.recommend(tree, "pbcom") == "R_fedr_pbcom"


def test_learning_needs_min_samples():
    oracle = LearningOracle(min_samples=5)
    tree = tree_iii()
    for _ in range(4):
        oracle.notify_outcome(tree, "pbcom", "R_fedr_pbcom", cured=True)
    assert oracle.recommend(tree, "pbcom") == "R_pbcom"  # not yet confident


def test_learning_prefers_deepest_confident_cell():
    oracle = LearningOracle(min_samples=2, confidence=0.6)
    tree = tree_iii()
    for _ in range(3):
        oracle.notify_outcome(tree, "pbcom", "R_mercury", cured=True)
        oracle.notify_outcome(tree, "pbcom", "R_pbcom", cured=True)
    # Both confident; R_pbcom is deeper -> cheaper, preferred.
    assert oracle.recommend(tree, "pbcom") == "R_pbcom"


def test_learning_f_estimates():
    oracle = LearningOracle()
    tree = tree_iii()
    oracle.notify_outcome(tree, "pbcom", "R_pbcom", cured=False)
    oracle.notify_outcome(tree, "pbcom", "R_pbcom", cured=True)
    oracle.notify_outcome(tree, "pbcom", "R_fedr_pbcom", cured=True)
    estimates = oracle.f_estimates("pbcom")
    assert estimates["R_pbcom"] == pytest.approx(0.5)
    assert estimates["R_fedr_pbcom"] == pytest.approx(1.0)


def test_learning_survives_tree_swap():
    """Stale cells from an old tree must not be recommended."""
    oracle = LearningOracle(min_samples=1, confidence=0.5)
    t3 = tree_iii()
    oracle.notify_outcome(t3, "ses", "R_ses", cured=True)
    t4 = tree_iv()  # R_ses no longer exists
    assert oracle.recommend(t4, "ses") == "R_ses_str"


def test_learning_invalid_params_rejected():
    with pytest.raises(ValueError):
        LearningOracle(min_samples=0)
    with pytest.raises(ValueError):
        LearningOracle(confidence=0.0)


def test_learning_export_restore_roundtrip():
    """Crash-only lifecycle: estimates checkpoint to a JSON-safe snapshot
    and a fresh incarnation restores exactly the same recommendations."""
    oracle = LearningOracle(min_samples=3, confidence=0.8)
    tree = tree_iii()
    for _ in range(3):
        oracle.notify_outcome(tree, "pbcom", "R_pbcom", cured=False)
        oracle.notify_outcome(tree, "pbcom", "R_fedr_pbcom", cured=True)
    snapshot = oracle.export_state()
    # JSON-safe: survives a serialization roundtrip like the store does.
    import json

    snapshot = json.loads(json.dumps(snapshot))

    oracle.crash()
    assert oracle.recommend(tree, "pbcom") == "R_pbcom"  # amnesiac: naive
    assert oracle.f_estimates("pbcom") == {}

    entries = oracle.restore_state(snapshot)
    assert entries == 2  # two (component, cell) attempt entries
    assert oracle.recommend(tree, "pbcom") == "R_fedr_pbcom"
    assert oracle.f_estimates("pbcom")["R_fedr_pbcom"] == pytest.approx(1.0)


def test_learning_restore_replaces_not_merges():
    oracle = LearningOracle(min_samples=1, confidence=0.5)
    tree = tree_iii()
    oracle.notify_outcome(tree, "ses", "R_ses", cured=True)
    oracle.restore_state({"attempts": {}, "cures": {}})
    assert oracle.f_estimates("ses") == {}
