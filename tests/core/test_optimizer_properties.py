"""Property-based tests for the tree optimizer over random systems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import (
    ComponentParams,
    ResyncPair,
    SystemModel,
    neighbor_trees,
    optimize_tree,
)
from repro.core.tree import RestartTree
from repro.faults.curability import CurabilityProfile

from tests.core.test_tree import random_trees


@st.composite
def models_for(draw, tree: RestartTree):
    """A random SystemModel covering the tree's components."""
    components = {}
    names = sorted(tree.components)
    for name in names:
        components[name] = ComponentParams(
            name=name,
            failure_rate=1.0 / draw(st.floats(min_value=60.0, max_value=1e6)),
            restart_seconds=draw(st.floats(min_value=0.5, max_value=30.0)),
        )
    curability = CurabilityProfile()
    for name in names:
        if len(names) > 1 and draw(st.booleans()):
            partner = draw(st.sampled_from([n for n in names if n != name]))
            joint_p = draw(st.floats(min_value=0.0, max_value=0.5))
            curability.set_alternatives(
                name, [(1.0 - joint_p, [name]), (joint_p, [name, partner])]
            )
        else:
            curability.set_simple(name)
    pairs = []
    if len(names) >= 2 and draw(st.booleans()):
        a, b = names[0], names[1]
        pairs.append(
            ResyncPair(
                a,
                b,
                left_lone_penalty=draw(st.floats(min_value=0.0, max_value=5.0)),
                right_lone_penalty=draw(st.floats(min_value=0.0, max_value=5.0)),
                induce_probability=draw(st.floats(min_value=0.0, max_value=1.0)),
            )
        )
    return SystemModel(
        components=components,
        curability=curability,
        resync_pairs=pairs,
        oracle_error_rate=draw(st.floats(min_value=0.0, max_value=0.9)),
    )


@st.composite
def trees_and_models(draw):
    tree = draw(random_trees())
    return tree, draw(models_for(tree))


@given(trees_and_models())
@settings(max_examples=40, deadline=None)
def test_downtime_rate_positive_and_finite(pair):
    tree, model = pair
    rate = model.downtime_rate(tree)
    assert 0.0 < rate < float("inf")


@given(trees_and_models())
@settings(max_examples=25, deadline=None)
def test_optimizer_never_worsens(pair):
    tree, model = pair
    result = optimize_tree(model, tree, max_iterations=10)
    assert result.downtime_rate <= result.initial_downtime_rate + 1e-12
    # The accepted path is strictly decreasing.
    costs = [result.initial_downtime_rate] + [s.downtime_rate for s in result.steps]
    assert all(b < a for a, b in zip(costs, costs[1:]))


@given(trees_and_models())
@settings(max_examples=25, deadline=None)
def test_neighbors_preserve_cost_model_applicability(pair):
    tree, model = pair
    for _description, candidate in neighbor_trees(tree):
        rate = model.downtime_rate(candidate)
        assert rate > 0.0


@given(trees_and_models())
@settings(max_examples=25, deadline=None)
def test_optimized_tree_still_covers_system(pair):
    tree, model = pair
    result = optimize_tree(model, tree, max_iterations=10)
    assert result.tree.components == tree.components
