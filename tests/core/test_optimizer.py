"""Tests for the restart-tree optimizer (§7 transformation algorithms)."""

import pytest

from repro.core.optimizer import (
    ComponentParams,
    ResyncPair,
    SystemModel,
    mercury_system_model,
    neighbor_trees,
    optimize_tree,
)
from repro.core.tree import RestartTree, cell
from repro.errors import TreeError
from repro.faults.curability import CurabilityProfile
from repro.mercury.trees import tree_ii_prime, tree_iii, tree_iv, tree_v


def simple_model(oracle_error_rate=0.0, resync=False, **component_overrides):
    components = {
        "a": ComponentParams("a", failure_rate=1 / 600.0, restart_seconds=5.0),
        "b": ComponentParams("b", failure_rate=1 / 3600.0, restart_seconds=20.0),
        "c": ComponentParams("c", failure_rate=1 / 3600.0, restart_seconds=5.0),
    }
    components.update(component_overrides)
    curability = CurabilityProfile()
    for name in components:
        curability.set_simple(name)
    pairs = []
    if resync:
        pairs.append(ResyncPair("a", "c", 3.0, 3.0, induce_probability=1.0))
    return SystemModel(
        components=components,
        curability=curability,
        resync_pairs=pairs,
        oracle_error_rate=oracle_error_rate,
    )


def flat_tree():
    return RestartTree(
        cell("root", children=[cell("R_a", ["a"]), cell("R_b", ["b"]), cell("R_c", ["c"])]),
        name="flat",
    )


# ----------------------------------------------------------------------
# the cost model
# ----------------------------------------------------------------------


def test_batch_duration_is_contended_max():
    model = simple_model()
    assert model.batch_duration(frozenset(["a"])) == 5.0
    assert model.batch_duration(frozenset(["a", "b"])) == pytest.approx(20.0 * 1.047)


def test_batch_duration_lone_resync_penalty():
    model = simple_model(resync=True)
    assert model.batch_duration(frozenset(["a"])) == pytest.approx(8.0)  # 5 + 3
    assert model.batch_duration(frozenset(["a", "c"])) == pytest.approx(5.0 * 1.047)


def test_expected_recovery_perfect_oracle():
    model = simple_model()
    tree = flat_tree()
    assert model.expected_recovery(tree, "a", frozenset(["a"])) == pytest.approx(
        0.7 + 5.0
    )


def test_expected_recovery_mistake_chain():
    model = simple_model(oracle_error_rate=1.0)
    tree = flat_tree()
    # Joint cure {a, b}: minimal is the root; the mistaken chain starts at
    # R_a, fails (re-detect), then restarts the root.
    got = model.expected_recovery(tree, "a", frozenset(["a", "b"]))
    expected = 0.7 + 5.0 + 0.05 + 0.7 + 20.0 * (1 + 0.047 * 2)
    assert got == pytest.approx(expected)


def test_induced_cost_charged_when_peer_excluded():
    model = simple_model(resync=True)
    tree = flat_tree()
    lone = model.induced_cost(tree, frozenset(["a"]))
    assert lone == pytest.approx(0.7 + 8.0)  # c's lone episode, q = 1
    joint = model.induced_cost(tree, frozenset(["a", "c"]))
    assert joint == 0.0


def test_downtime_rate_requires_coverage():
    model = simple_model()
    partial = RestartTree(cell("root", ["a", "b"]))
    with pytest.raises(TreeError):
        model.downtime_rate(partial)


def test_downtime_rate_weights_by_failure_rate():
    model = simple_model()
    tree = flat_tree()
    rate = model.downtime_rate(tree)
    expected = (
        (1 / 600) * (0.7 + 5.0)
        + (1 / 3600) * (0.7 + 20.0)
        + (1 / 3600) * (0.7 + 5.0)
    )
    assert rate == pytest.approx(expected)


# ----------------------------------------------------------------------
# neighbors
# ----------------------------------------------------------------------


def test_neighbors_cover_all_three_move_kinds():
    descriptions = [d for d, _ in neighbor_trees(tree_iii())]
    assert any(d.startswith("consolidate(") for d in descriptions)
    assert any(d.startswith("insert_joint(") for d in descriptions)
    assert any(d.startswith("promote(") for d in descriptions)


def test_neighbors_are_valid_trees():
    for _description, candidate in neighbor_trees(tree_iii()):
        assert candidate.components == tree_iii().components


# ----------------------------------------------------------------------
# optimization
# ----------------------------------------------------------------------


def test_no_move_when_flat_tree_is_optimal():
    """Independent components with a perfect oracle: leaf restarts are
    already minimal, so the optimizer should change nothing."""
    model = simple_model()
    result = optimize_tree(model, flat_tree())
    assert result.steps == []
    assert result.downtime_rate == result.initial_downtime_rate


def test_consolidation_discovered_for_resync_pair():
    model = simple_model(resync=True)
    result = optimize_tree(model, flat_tree())
    assert any("consolidate" in s.description for s in result.steps)
    merged = result.tree.cell_of_component("a")
    assert result.tree.components_restarted_by(merged) >= frozenset(["a", "c"])
    assert result.downtime_rate < result.initial_downtime_rate


def test_rediscovers_the_papers_tree():
    """The capstone: from tree II' and Mercury's observed failure data, the
    optimizer performs the paper's three §4 moves and reaches a tree with
    tree V's structure and cost."""
    model = mercury_system_model()
    result = optimize_tree(model, tree_ii_prime())
    kinds = [step.description.split("(")[0] for step in result.steps]
    assert sorted(kinds) == ["consolidate", "insert_joint", "promote"]
    # Structure: ses+str share a leaf; pbcom sits on an internal cell over fedr.
    tree = result.tree
    assert tree.components_restarted_by(
        tree.cell_of_component("ses")
    ) == frozenset(["ses", "str"])
    pbcom_cell = tree.cell_of_component("pbcom")
    assert tree.components_restarted_by(pbcom_cell) == frozenset(["fedr", "pbcom"])
    assert not tree.get_cell(pbcom_cell).is_leaf
    # Cost: equal to hand-derived tree V (and better than II'/III/IV).
    assert result.downtime_rate == pytest.approx(model.downtime_rate(tree_v()), rel=1e-9)
    assert result.downtime_rate < model.downtime_rate(tree_iii())
    assert result.downtime_rate < model.downtime_rate(tree_iv()) + 1e-12


def test_paper_tree_costs_are_ordered():
    model = mercury_system_model()
    costs = {
        "II'": model.downtime_rate(tree_ii_prime()),
        "III": model.downtime_rate(tree_iii()),
        "IV": model.downtime_rate(tree_iv()),
        "V": model.downtime_rate(tree_v()),
    }
    assert costs["V"] <= costs["IV"] <= costs["III"] <= costs["II'"]


def test_promotion_not_chosen_with_perfect_oracle():
    """With no oracle mistakes, promotion has no benefit and a small cost
    (simple pbcom failures drag fedr along), so it must not be applied."""
    model = mercury_system_model(oracle_error_rate=0.0)
    result = optimize_tree(model, tree_iv())
    assert not any("promote(pbcom)" in s.description for s in result.steps)


def test_optimizer_respects_iteration_bound():
    model = mercury_system_model()
    result = optimize_tree(model, tree_ii_prime(), max_iterations=1)
    assert len(result.steps) <= 1


def test_improvement_factor():
    model = simple_model(resync=True)
    result = optimize_tree(model, flat_tree())
    assert result.improvement_factor > 1.0
