"""Fleet campaigns: bit-identity, drain, session accounting, cache purity.

The sim-layer gate (``tests/sim/test_fleet_kernel.py``) proves the
epoch-barrier machinery is layout-independent with toy shells; this suite
holds the same gate for *real Mercury stations* — full fault injectors,
supervisors, and network fabrics — and pins the experiment semantics on
top: waves really correlate failures across stations, the post-horizon
drain leaves invariants clean, session-loss accounting follows the
link-break rule, and the campaign cache key ignores execution knobs.
"""

import pytest

from repro.experiments.fleet import (
    FleetResult,
    FleetSpec,
    fleet_jobs,
    fleet_shards,
    resolve_wave_component,
    run_fleet_cell,
    station_seed,
)
from repro.experiments.runner import CampaignCell, cache_key, run_fleet_campaign
from repro.mercury.config import PAPER_CONFIG
from repro.experiments.snapshot import clear_templates
from repro.experiments.template_store import STORE


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_templates()
    STORE.clear()
    yield
    clear_templates()
    STORE.clear()


SMALL = FleetSpec(
    tree="V",
    size=4,
    horizon_s=120.0,
    seed=21,
    drain_s=60.0,
    wave_interval_s=60.0,
    wave_drop=0.3,
    groups=2,
)


def _payload(spec, **kwargs):
    return run_fleet_cell(spec, **kwargs).to_payload()


# ----------------------------------------------------------------------
# bit-identity with real stations
# ----------------------------------------------------------------------


def test_shard_count_cannot_change_a_fleet_result():
    one = _payload(SMALL, shards=1)
    assert _payload(SMALL, shards=2) == one
    assert _payload(SMALL, shards=4) == one


def test_process_fanout_cannot_change_a_fleet_result():
    serial = _payload(SMALL, shards=2, jobs=1)
    fanned = _payload(SMALL, shards=2, jobs=2)
    assert fanned == serial


def test_snapshot_mode_cannot_change_a_fleet_result():
    restored = _payload(SMALL, shards=1)
    clear_templates()
    STORE.clear()
    fresh = _payload(SMALL, shards=1, snapshot=False)
    assert fresh == restored


# ----------------------------------------------------------------------
# experiment semantics
# ----------------------------------------------------------------------


def test_waves_correlate_failures_and_drain_keeps_invariants_clean():
    result = run_fleet_cell(SMALL, shards=2)
    assert result.ok, result.violations
    ground = result.ground
    assert ground["waves"] >= 1
    assert ground["reports"] >= 1  # stations reported cures back
    directives = sum(s["directives"] for s in result.stations)
    assert directives >= ground["waves"]  # every wave reached its group
    assert result.availability < 1.0  # failures really happened
    assert result.events_executed > 0


def test_independent_baseline_runs_clean_without_waves():
    spec = FleetSpec(tree="V", size=3, horizon_s=120.0, seed=5, drain_s=60.0)
    result = run_fleet_cell(spec)
    assert result.ok
    assert result.ground["waves"] == 0
    assert all(s["directives"] == 0 for s in result.stations)


def test_wave_component_resolution():
    assert resolve_wave_component(SMALL, ("fedr", "fedrcom", "ses")) == "fedrcom"
    assert resolve_wave_component(SMALL, ("fedr", "ses")) == "fedr"
    pinned = FleetSpec(wave_component="ses")
    assert resolve_wave_component(pinned, ("fedr", "ses")) == "ses"


def test_station_seeds_are_pure_and_distinct():
    seeds = [station_seed(21, i) for i in range(16)]
    assert len(set(seeds)) == 16
    assert seeds == [station_seed(21, i) for i in range(16)]
    assert station_seed(22, 0) != station_seed(21, 0)


def test_fleet_size_must_be_positive():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError, match="fleet size"):
        run_fleet_cell(FleetSpec(size=0))


# ----------------------------------------------------------------------
# result payloads
# ----------------------------------------------------------------------


def test_fleet_result_round_trips_through_payload():
    result = run_fleet_cell(SMALL, shards=2)
    clone = FleetResult.from_payload(result.to_payload())
    assert clone.to_payload() == result.to_payload()
    assert clone.availability == result.availability
    assert clone.mttr_samples == result.mttr_samples
    assert clone.sessions_lost == result.sessions_lost
    assert clone.ok == result.ok


def test_aggregates_on_an_empty_fleet_are_well_defined():
    empty = FleetResult(tree_name="V", size=0, horizon_s=0.0, wave_interval_s=0.0)
    assert empty.availability == 1.0
    assert empty.mean_mttr is None
    assert empty.sessions_lost == 0 and empty.outages == 0
    assert empty.ok


# ----------------------------------------------------------------------
# execution knobs stay out of result identity
# ----------------------------------------------------------------------


def test_env_knobs_parse_defensively(monkeypatch):
    monkeypatch.delenv("REPRO_FLEET_JOBS", raising=False)
    monkeypatch.delenv("REPRO_FLEET_SHARDS", raising=False)
    assert fleet_jobs() == 1 and fleet_shards() == 1
    monkeypatch.setenv("REPRO_FLEET_JOBS", "4")
    monkeypatch.setenv("REPRO_FLEET_SHARDS", "8")
    assert fleet_jobs() == 4 and fleet_shards() == 8
    monkeypatch.setenv("REPRO_FLEET_JOBS", "0")
    assert fleet_jobs() == 1  # floored
    monkeypatch.setenv("REPRO_FLEET_SHARDS", "many")
    assert fleet_shards() == 1  # unparsable: default


def test_campaign_cache_key_ignores_shard_and_job_knobs(monkeypatch):
    cell = CampaignCell(
        kind="fleet",
        tree="V",
        seed=21,
        horizon_s=120.0,
        fleet_size=4,
        wave_interval_s=60.0,
        wave_drop=0.3,
    )
    monkeypatch.delenv("REPRO_FLEET_SHARDS", raising=False)
    monkeypatch.delenv("REPRO_FLEET_JOBS", raising=False)
    base = cache_key(cell, PAPER_CONFIG)
    monkeypatch.setenv("REPRO_FLEET_SHARDS", "8")
    monkeypatch.setenv("REPRO_FLEET_JOBS", "4")
    assert cache_key(cell, PAPER_CONFIG) == base


def test_fleet_campaign_caches_and_replays_byte_identically(tmp_path):
    kwargs = dict(
        sizes=[2, 3],
        tree="V",
        horizon_s=120.0,
        seed=9,
        wave_intervals=(0.0, 60.0),
        cache_dir=str(tmp_path),
    )
    first = run_fleet_campaign(**kwargs)
    assert set(first) == {(2, 0.0), (2, 60.0), (3, 0.0), (3, 60.0)}
    replay = run_fleet_campaign(**kwargs)
    for key in first:
        assert replay[key].to_payload() == first[key].to_payload()
