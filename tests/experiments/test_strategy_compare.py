"""Integration tests for the strategy-comparison harness (PR 7).

The headline regression here is the session-loss contract that motivates
the whole registry: under the same seed and failure schedule, a cold
restart of the ``ses``/``str`` pair loses the externalised sync session
while a microreboot restores it.  If a refactor ever breaks the
session-store wiring, these pins catch it.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.strategy_compare import (
    FAILURE_KINDS,
    StrategyCellResult,
    run_strategy_cell,
)
from repro.mercury.trees import TREE_BUILDERS


@pytest.fixture(scope="module")
def crash_cells():
    """One restart and one microreboot cell, same tree/seed/schedule."""
    results = {}
    for strategy in ("restart", "microreboot"):
        results[strategy] = run_strategy_cell(
            TREE_BUILDERS["V"](), strategy, "crash", trials=2, seed=7
        )
    return results


def test_cells_recover_without_violations(crash_cells):
    for strategy, result in crash_cells.items():
        assert result.ok, f"{strategy}: {result.violations}"
        assert len(result.mttr_samples) == 2
        assert all(mttr > 0.0 for mttr in result.mttr_samples)
        assert result.stats.n == 2


def test_restart_loses_sessions_microreboot_preserves_them(crash_cells):
    # the paper's mechanism discards externalised sessions on every cold
    # bounce of a session-holding component ...
    assert crash_cells["restart"].sessions_lost >= 1
    assert crash_cells["restart"].sessions_restored == 0
    # ... while microreboot restores them and loses none
    assert crash_cells["microreboot"].sessions_lost == 0
    assert crash_cells["microreboot"].sessions_restored >= 1


def test_payload_roundtrip(crash_cells):
    for result in crash_cells.values():
        clone = StrategyCellResult.from_payload(result.to_payload())
        assert clone == result


def test_unknown_strategy_and_kind_rejected():
    tree = TREE_BUILDERS["V"]()
    with pytest.raises(ExperimentError, match="unknown recovery strategy"):
        run_strategy_cell(tree, "reboot-harder", "crash", trials=1, seed=1)
    with pytest.raises(ExperimentError, match="unknown failure kind"):
        run_strategy_cell(tree, "restart", "meltdown", trials=1, seed=1)
    assert FAILURE_KINDS == ("crash", "hang", "zombie")
