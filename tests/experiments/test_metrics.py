"""Tests for experiment metrics: stats and uptime tracking."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.metrics import RecoveryStats, UptimeTracker, downtime_intervals

from tests.conftest import spawn_simple


def test_recovery_stats_basics():
    stats = RecoveryStats.from_samples([5.0, 6.0, 7.0])
    assert stats.n == 3
    assert stats.mean == pytest.approx(6.0)
    assert stats.minimum == 5.0
    assert stats.maximum == 7.0
    assert stats.coefficient_of_variation == pytest.approx(stats.std / 6.0)
    assert stats.stderr == pytest.approx(stats.std / 3 ** 0.5)


def test_recovery_stats_single_sample():
    stats = RecoveryStats.from_samples([4.2])
    assert stats.std == 0.0
    assert stats.stderr == 0.0


def test_recovery_stats_empty_rejected():
    with pytest.raises(ExperimentError):
        RecoveryStats.from_samples([])


def test_uptime_tracker_counts_uptime_and_failures(kernel, manager):
    for name in ("a", "b"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    tracker = UptimeTracker(manager, ["a", "b"])
    t0 = kernel.now
    kernel.run(until=t0 + 10.0)
    manager.fail("a")
    kernel.call_after(5.0, manager.restart, ["a"])
    kernel.run(until=t0 + 30.0)
    tracker.finalize()
    assert tracker.failures_of("a") == 1
    assert tracker.failures_of("b") == 0
    # a: 10 up, 6 down (5 wait + 1 restart), then up again.
    assert tracker.component_downtime("a") == pytest.approx(6.0, abs=0.1)
    assert tracker.component_uptime("a") == pytest.approx(24.0, abs=0.1)
    assert tracker.component_uptime("b") == pytest.approx(30.0, abs=0.1)


def test_uptime_tracker_system_view(kernel, manager):
    for name in ("a", "b"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    tracker = UptimeTracker(manager, ["a", "b"])
    t0 = kernel.now
    manager.fail("a")
    kernel.call_after(2.0, manager.restart, ["a"])
    kernel.run(until=t0 + 10.0)
    manager.fail("b")
    kernel.call_after(1.0, manager.restart, ["b"])
    kernel.run(until=t0 + 20.0)
    tracker.finalize()
    assert tracker.system_outages == 2
    assert tracker.system_downtime == pytest.approx(3.0 + 2.0, abs=0.1)
    assert tracker.system_availability() == pytest.approx(15.0 / 20.0, abs=0.01)


def test_uptime_tracker_overlapping_outages_counted_once(kernel, manager):
    for name in ("a", "b"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    tracker = UptimeTracker(manager, ["a", "b"])
    t0 = kernel.now
    manager.fail("a")
    manager.fail("b")  # overlapping with a's outage
    kernel.call_after(3.0, manager.restart, ["a", "b"])
    kernel.run(until=t0 + 10.0)
    tracker.finalize()
    assert tracker.system_outages == 1
    assert tracker.system_downtime == pytest.approx(4.0, abs=0.2)


def test_observed_mttf_mttr(kernel, manager):
    spawn_simple(manager, "a", work=1.0)
    manager.start_all()
    kernel.run()
    tracker = UptimeTracker(manager, ["a"])
    t0 = kernel.now
    for _ in range(3):
        kernel.run(until=kernel.now + 10.0)
        manager.fail("a")
        manager.restart(["a"])
    kernel.run(until=kernel.now + 10.0)
    tracker.finalize()
    # Up intervals: 10s before the first failure, then 9s between each
    # ready and the next failure, plus the final 10s run: (10+9+9+9)/3.
    assert tracker.observed_mttf("a") == pytest.approx(37.0 / 3.0, abs=0.5)
    assert tracker.observed_mttr("a") == pytest.approx(1.0, abs=0.2)


def test_observed_mttf_none_without_failures(kernel, manager):
    spawn_simple(manager, "a", work=1.0)
    manager.start_all()
    kernel.run()
    tracker = UptimeTracker(manager, ["a"])
    tracker.finalize()
    assert tracker.observed_mttf("a") is None
    assert tracker.observed_mttr("a") is None


def test_downtime_intervals_collapse():
    edges = [(1.0, False), (3.0, True), (5.0, False), (6.0, False), (9.0, True)]
    assert downtime_intervals(edges) == [(1.0, 3.0), (5.0, 9.0)]


def test_downtime_intervals_trailing_open_dropped():
    assert downtime_intervals([(1.0, False)]) == []


def test_downtime_intervals_out_of_order_rejected():
    with pytest.raises(ExperimentError):
        downtime_intervals([(2.0, False), (1.0, True)])
