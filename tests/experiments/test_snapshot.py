"""Warmed-station snapshot/fork: bit-identity and cache semantics.

The campaign runner's per-cell setup cost is amortised by booting one
*template* station per scenario shape and deep-copying it per cell.  The
load-bearing contract is bit-identity: a cell measured on a restored
snapshot must produce byte-for-byte the same results as one measured on a
fresh boot, because both share the campaign result cache (the snapshot
mode is deliberately *not* part of the cache key).  These tests run every
experiment family both ways and compare exact outputs, and pin down the
template-cache behaviours the contract rests on.
"""

import dataclasses

import pytest

from repro.experiments.availability import measure_availability
from repro.experiments.recovery import measure_recovery
from repro.experiments.lifetimes import measure_lifetimes
from repro.experiments.snapshot import (
    boot_seed,
    clear_templates,
    snapshot_enabled,
    station_shape,
    template_count,
    warmed_station,
)
from repro.chaos.engine import run_chaos
from repro.mercury.config import PAPER_CONFIG
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_i, tree_ii, tree_v


@pytest.fixture(autouse=True)
def _fresh_template_cache():
    clear_templates()
    yield
    clear_templates()


# ----------------------------------------------------------------------
# bit-identity: snapshot restore == fresh boot, per experiment family
# ----------------------------------------------------------------------


def test_recovery_identical_with_and_without_snapshot():
    fresh = measure_recovery(tree_ii(), "rtu", trials=3, seed=9, snapshot=False)
    restored = measure_recovery(tree_ii(), "rtu", trials=3, seed=9, snapshot=True)
    assert restored.samples == fresh.samples
    assert restored.phases == fresh.phases


def test_recovery_second_cell_reuses_template():
    measure_recovery(tree_ii(), "rtu", trials=1, seed=1, snapshot=True)
    assert template_count() == 1
    measure_recovery(tree_ii(), "rtu", trials=1, seed=2, snapshot=True)
    assert template_count() == 1  # same shape: no second boot
    fresh = measure_recovery(tree_ii(), "rtu", trials=1, seed=2, snapshot=False)
    restored = measure_recovery(tree_ii(), "rtu", trials=1, seed=2, snapshot=True)
    assert restored.samples == fresh.samples


def test_availability_identical_with_and_without_snapshot():
    kwargs = dict(horizon_s=2.0 * 3600.0, seed=5)
    fresh = measure_availability(tree_i(), snapshot=False, **kwargs)
    restored = measure_availability(tree_i(), snapshot=True, **kwargs)
    assert dataclasses.asdict(restored) == dataclasses.asdict(fresh)


def test_lifetimes_identical_with_and_without_snapshot():
    kwargs = dict(horizon_s=2.0 * 3600.0, seed=3)
    fresh = measure_lifetimes(tree_v(), snapshot=False, **kwargs)
    restored = measure_lifetimes(tree_v(), snapshot=True, **kwargs)
    assert dataclasses.asdict(restored) == dataclasses.asdict(fresh)


def test_lifetimes_one_template_serves_both_correlation_settings():
    measure_lifetimes(tree_v(), horizon_s=1800.0, seed=3, correlations=False, snapshot=True)
    measure_lifetimes(tree_v(), horizon_s=1800.0, seed=3, correlations=True, snapshot=True)
    assert template_count() == 1  # flags are flipped post-restore, not in the shape


def test_chaos_identical_with_and_without_snapshot():
    fresh = run_chaos(tree_v(), "storm", trials=1, seed=77, snapshot=False)
    restored = run_chaos(tree_v(), "storm", trials=1, seed=77, snapshot=True)
    assert restored.to_payload() == fresh.to_payload()


def test_different_seeds_still_differ_under_snapshot():
    """The rebase is real: forked cells are not clones of each other."""
    a = measure_availability(tree_i(), horizon_s=4.0 * 3600.0, seed=1, snapshot=True)
    b = measure_availability(tree_i(), horizon_s=4.0 * 3600.0, seed=2, snapshot=True)
    assert dataclasses.asdict(a) != dataclasses.asdict(b)


# ----------------------------------------------------------------------
# shape and cache mechanics
# ----------------------------------------------------------------------


def test_shape_distinguishes_kind_tree_config_and_params():
    base = station_shape("recovery", tree_ii(), PAPER_CONFIG, oracle="perfect")
    assert station_shape("recovery", tree_ii(), PAPER_CONFIG, oracle="perfect") == base
    assert station_shape("chaos", tree_ii(), PAPER_CONFIG, oracle="perfect") != base
    assert station_shape("recovery", tree_v(), PAPER_CONFIG, oracle="perfect") != base
    assert (
        station_shape("recovery", tree_ii(), PAPER_CONFIG, oracle="guessing") != base
    )
    other_config = PAPER_CONFIG.with_overrides(ping_period=2.0)
    assert station_shape("recovery", tree_ii(), other_config, oracle="perfect") != base


def test_boot_seed_is_shape_derived_and_stable():
    shape = station_shape("recovery", tree_ii(), PAPER_CONFIG)
    assert boot_seed(shape) == boot_seed(shape)
    assert boot_seed(shape) != boot_seed(station_shape("chaos", tree_ii(), PAPER_CONFIG))


def test_env_var_disables_snapshot(monkeypatch):
    monkeypatch.setenv("REPRO_STATION_SNAPSHOT", "0")
    assert not snapshot_enabled(None)
    assert snapshot_enabled(True)  # explicit argument beats the env default
    measure_recovery(tree_ii(), "rtu", trials=1, seed=4)
    assert template_count() == 0  # fresh boot: nothing cached


def test_fresh_mode_boots_under_the_same_snapshot_seed():
    """Bit-identity is seed-identity: fresh mode re-executes the template's
    deterministic boot rather than booting under the cell seed, so both
    modes reach the same warmed state before the rebase."""
    shape = station_shape("unit", tree_ii(), PAPER_CONFIG)
    seen = []

    def build(seed: int) -> MercuryStation:
        seen.append(seed)
        return MercuryStation(tree=tree_ii(), config=PAPER_CONFIG, seed=seed)

    warmed_station(shape, build, MercuryStation.boot, 1234, snapshot=False)
    warmed_station(shape, build, MercuryStation.boot, 1234, snapshot=True)
    assert seen == [boot_seed(shape), boot_seed(shape)]


def test_restored_station_is_rebased_onto_cell_seed():
    shape = station_shape("unit2", tree_ii(), PAPER_CONFIG)

    def build(seed: int) -> MercuryStation:
        return MercuryStation(tree=tree_ii(), config=PAPER_CONFIG, seed=seed)

    a = warmed_station(shape, build, MercuryStation.boot, 1, snapshot=True)
    b = warmed_station(shape, build, MercuryStation.boot, 2, snapshot=True)
    assert a is not b
    draw_a = a.kernel.rngs.stream("unit-test").random()
    draw_b = b.kernel.rngs.stream("unit-test").random()
    assert draw_a != draw_b  # different cell seeds -> different streams
