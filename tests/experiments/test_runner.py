"""Tests for the parallel campaign runner.

The contract under test: campaign results are a pure function of the
campaign spec — independent of worker count, of row composition, and of
whether a result came from a live worker or the on-disk cache.
"""

import os

import pytest

from repro.experiments.recovery import measure_recovery, measure_recovery_row
from repro.experiments.runner import (
    CampaignCell,
    cache_key,
    campaign_seed,
    config_fingerprint,
    merge_recovery_cells,
    plan_recovery_cell,
    run_availability_suite,
    run_campaign,
    run_recovery_matrix,
)
from repro.mercury.config import PAPER_CONFIG
from repro.mercury.trees import tree_ii

TRIALS = 3  # tiny: these tests exercise plumbing, not statistics


def row_samples(results):
    return [(r.component, r.samples) for r in results]


# ----------------------------------------------------------------------
# determinism and seeding
# ----------------------------------------------------------------------


def test_parallel_row_bit_identical_to_serial():
    serial = measure_recovery_row(
        tree_ii(), ["rtu", "mbus"], trials=TRIALS, seed=66, jobs=1
    )
    parallel = measure_recovery_row(
        tree_ii(), ["rtu", "mbus"], trials=TRIALS, seed=66, jobs=4
    )
    assert row_samples(serial) == row_samples(parallel)


def test_row_composition_does_not_perturb_cells():
    """Adding a component must leave every other cell's stream untouched."""
    narrow = measure_recovery_row(tree_ii(), ["rtu"], trials=TRIALS, seed=66)
    wide = measure_recovery_row(
        tree_ii(), ["ses", "rtu", "mbus"], trials=TRIALS, seed=66
    )
    by_component = {r.component: r for r in wide}
    assert by_component["rtu"].samples == narrow[0].samples


def test_row_matches_direct_measure_recovery_with_derived_seed():
    """The row helper is exactly measure_recovery at the derived seed."""
    row = measure_recovery_row(tree_ii(), ["rtu"], trials=TRIALS, seed=66)
    derived = campaign_seed(66, "II", "perfect", "rtu", "-", 0)
    direct = measure_recovery(tree_ii(), "rtu", trials=TRIALS, seed=derived)
    assert row[0].samples == direct.samples


def test_campaign_seed_is_stable_and_distinct():
    assert campaign_seed(1, "II", "rtu") == campaign_seed(1, "II", "rtu")
    assert campaign_seed(1, "II", "rtu") != campaign_seed(1, "II", "mbus")
    assert campaign_seed(1, "II", "rtu") != campaign_seed(2, "II", "rtu")


def test_sharded_cell_merges_in_shard_order():
    cells = plan_recovery_cell("II", "rtu", 5, seed=7, shard_size=2)
    assert [c.trials for c in cells] == [2, 2, 1]
    assert len({c.seed for c in cells}) == 3
    payloads = run_campaign(cells)
    merged = merge_recovery_cells(cells, payloads)
    assert len(merged.samples) == 5
    # Shard decomposition is part of the spec: re-planning reproduces it.
    again = merge_recovery_cells(cells, run_campaign(cells))
    assert merged.samples == again.samples


def test_matrix_skips_components_missing_from_tree():
    matrix = run_recovery_matrix(
        [("I", "perfect")], ["mbus", "fedr"], trials=1, seed=5
    )
    assert ("I", "perfect", "mbus") in matrix
    assert ("I", "perfect", "fedr") not in matrix  # tree I has no fedr


def test_availability_suite_parallel_identical_to_serial():
    serial = run_availability_suite(["I", "V"], horizon_s=1800.0, seed=4, jobs=1)
    parallel = run_availability_suite(["I", "V"], horizon_s=1800.0, seed=4, jobs=2)
    assert {k: v.availability for k, v in serial.items()} == {
        k: v.availability for k, v in parallel.items()
    }


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = str(tmp_path / "cache")
    first = measure_recovery_row(
        tree_ii(), ["rtu"], trials=TRIALS, seed=9, cache_dir=cache
    )
    files = os.listdir(cache)
    assert len(files) == 1  # one cell, one entry

    # Replace the cached samples with a sentinel: a second run must serve
    # the (tampered) cache entry rather than recompute.
    import json

    path = os.path.join(cache, files[0])
    payload = json.load(open(path))
    payload["result"]["samples"] = [1.0, 2.0, 3.0]
    json.dump(payload, open(path, "w"))

    second = measure_recovery_row(
        tree_ii(), ["rtu"], trials=TRIALS, seed=9, cache_dir=cache
    )
    assert second[0].samples == [1.0, 2.0, 3.0]
    assert first[0].samples != second[0].samples


def test_cache_invalidated_by_config_change(tmp_path):
    cache = str(tmp_path / "cache")
    baseline = measure_recovery_row(
        tree_ii(), ["rtu"], trials=TRIALS, seed=9, cache_dir=cache
    )
    changed = PAPER_CONFIG.with_overrides(ping_period=2.0)
    other = measure_recovery_row(
        tree_ii(), ["rtu"], trials=TRIALS, seed=9, cache_dir=cache, config=changed
    )
    # Different config -> different key -> recomputed, not served stale.
    assert len(os.listdir(cache)) == 2
    assert baseline[0].samples != other[0].samples


def test_cache_invalidated_by_every_spec_field(tmp_path):
    cell = CampaignCell(kind="recovery", tree="II", component="rtu", trials=3, seed=1)
    base = cache_key(cell, PAPER_CONFIG)
    assert cache_key(cell, PAPER_CONFIG) == base  # stable
    import dataclasses

    for change in (
        {"trials": 4},
        {"seed": 2},
        {"oracle": "faulty"},
        {"component": "mbus"},
        {"shard": 1},
        {"supervisor": "abstract"},
    ):
        assert cache_key(dataclasses.replace(cell, **change), PAPER_CONFIG) != base
    assert cache_key(cell, PAPER_CONFIG.with_overrides(reply_timeout=0.3)) != base


def test_config_fingerprint_tracks_field_changes():
    base = config_fingerprint(PAPER_CONFIG)
    assert config_fingerprint(PAPER_CONFIG) == base
    assert config_fingerprint(PAPER_CONFIG.with_overrides(ping_period=2.0)) != base


def test_corrupt_cache_entry_recomputes(tmp_path):
    cache = str(tmp_path / "cache")
    good = measure_recovery_row(
        tree_ii(), ["rtu"], trials=TRIALS, seed=9, cache_dir=cache
    )
    (path,) = [os.path.join(cache, f) for f in os.listdir(cache)]
    with open(path, "w") as fh:
        fh.write("{not json")
    again = measure_recovery_row(
        tree_ii(), ["rtu"], trials=TRIALS, seed=9, cache_dir=cache
    )
    assert again[0].samples == good[0].samples


def test_unknown_cell_kind_rejected():
    cell = CampaignCell(kind="nonsense", tree="II", seed=1)
    with pytest.raises(ValueError):
        run_campaign([cell])
