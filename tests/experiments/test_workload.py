"""Workload campaign cells: determinism contract and the headline result.

The headline regression is Candea & Fox's: on a tree with lone ses/str
cells, a *full restart* turns every crash into a resync cascade (the
recovered side's fresh handshake fells its peer), so its user-visible
loss is far worse than microreboot's even though their per-episode MTTRs
are in the same band.  The determinism pins hold the other contract: a
cell's ledger is a pure function of its seed — identical across boot
modes, bus decode paths, and campaign execution layouts.
"""

import json
import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.snapshot import clear_templates
from repro.experiments.workload import (
    WorkloadCellResult,
    run_workload_cell,
    run_workload_suite,
)
from repro.mercury.trees import TREE_BUILDERS
from repro.workload.generator import WorkloadSpec

#: The pinned regression cell: tree III keeps ses and str in lone leaf
#: groups, so full restart's resync cascade is maximally user-visible.
CELL = dict(
    failure_kind="crash",
    failures=2,
    seed=11,
    spec=WorkloadSpec(session_rate=8.0),
    warmup_s=2.0,
    cooldown_s=2.0,
)


def _cell(strategy: str, **overrides):
    kwargs = {**CELL, **overrides}
    return run_workload_cell(TREE_BUILDERS["III"](), strategy, **kwargs)


@pytest.fixture(scope="module")
def loss_cells():
    return {strategy: _cell(strategy) for strategy in ("restart", "microreboot")}


def test_cells_recover_without_violations(loss_cells):
    for strategy, cell in loss_cells.items():
        assert cell.ok, f"{strategy}: {cell.violations}"
        assert len(cell.mttr_samples) == 2
        effects = cell.user_effects
        assert effects.sessions_started > 100
        assert (
            effects.sessions_completed + effects.sessions_abandoned
            == effects.sessions_started
        )


def test_microreboot_beats_restart_on_user_visible_loss(loss_cells):
    """The Candea & Fox result, in user-request terms.

    Restart's cold bounce of ses (or str) announces a fresh sync session
    and fells the surviving peer — one fault, two outages, both on
    user-facing services.  Microreboot restores the externalised session
    and skips the announce, so the user only ever sees the original
    episode.
    """
    restart = loss_cells["restart"].user_effects
    microreboot = loss_cells["microreboot"].user_effects
    # Strictly fewer surfaced errors, abandoned chain steps, and dead
    # sessions — not a rounding-level difference but a multiple.
    assert microreboot.requests_failed < restart.requests_failed
    assert microreboot.lost_requests < restart.lost_requests
    assert microreboot.sessions_abandoned < restart.sessions_abandoned
    assert microreboot.session_loss_ratio < 0.5 * restart.session_loss_ratio
    # The session-store ledger tells the mechanism: restart drops the
    # externalised sync sessions (one per cascade round), microreboot
    # restores every one.
    assert loss_cells["restart"].sessions_lost >= 1
    assert loss_cells["microreboot"].sessions_lost == 0
    # And the win is not bought with slower recovery elsewhere: every
    # loss above happens while MTTRs stay in the same band.
    assert loss_cells["microreboot"].stats.mean <= loss_cells["restart"].stats.mean


def test_same_seed_is_bit_identical(loss_cells):
    again = _cell("microreboot")
    assert json.dumps(again.to_payload(), sort_keys=True) == json.dumps(
        loss_cells["microreboot"].to_payload(), sort_keys=True
    )


def test_snapshot_restore_matches_fresh_boot(loss_cells):
    clear_templates()
    try:
        fresh = _cell("microreboot", snapshot=False)
    finally:
        clear_templates()
    assert fresh.to_payload() == loss_cells["microreboot"].to_payload()


def test_bus_fullparse_matches_fastpath(loss_cells):
    os.environ["REPRO_BUS_FULLPARSE"] = "1"
    try:
        eager = _cell("microreboot")
    finally:
        os.environ.pop("REPRO_BUS_FULLPARSE", None)
    assert eager.to_payload() == loss_cells["microreboot"].to_payload()


def test_suite_serial_matches_parallel():
    suites = []
    for jobs in (1, 2):
        suite = run_workload_suite(
            ["", "microreboot"],
            ["crash"],
            ["III"],
            failures=1,
            seed=3,
            session_rate=6.0,
            jobs=jobs,
        )
        suites.append(
            {
                "/".join(key): cell.to_payload()
                for key, cell in suite.items()
            }
        )
    assert suites[0] == suites[1]
    # The classic baseline really ran without the strategy machinery.
    classic = WorkloadCellResult.from_payload(suites[0]["/crash/III"])
    assert classic.sessions_restored == 0


def test_payload_roundtrip(loss_cells):
    payload = loss_cells["restart"].to_payload()
    clone = WorkloadCellResult.from_payload(json.loads(json.dumps(payload)))
    assert clone.to_payload() == payload
    assert clone.user_effects.requests_ok == (
        loss_cells["restart"].user_effects.requests_ok
    )


def test_unknown_strategy_and_kind_rejected():
    with pytest.raises(ExperimentError):
        run_workload_cell(TREE_BUILDERS["III"](), "reincarnation", "crash")
    with pytest.raises(ExperimentError):
        run_workload_cell(TREE_BUILDERS["III"](), "restart", "meltdown")
