"""Tests for the episode-timeline renderer."""

import pytest

from repro.experiments.timeline import episode_timeline
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_iii, tree_v


@pytest.fixture
def station():
    s = MercuryStation(tree=tree_v(), seed=121)
    s.boot()
    return s


def test_simple_episode_narrative(station):
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    station.run_for(5.0)
    text = episode_timeline(station.trace, failure)
    assert "failure injected in rtu" in text
    assert "FD detected rtu" in text
    assert "restart ordered: R_rtu" in text
    assert "rtu functionally ready" in text
    assert "failure in rtu cured" in text
    assert "episode closed for rtu" in text
    # Relative timestamps, starting at the injection.
    first_line = text.splitlines()[0]
    assert first_line.startswith("t=+   0.000s")


def test_narrative_is_chronological(station):
    failure = station.injector.inject_simple("ses")
    station.run_until_recovered(failure)
    station.run_for(5.0)
    text = episode_timeline(station.trace, failure)
    times = [float(line.split("s", 1)[0][3:]) for line in text.splitlines()]
    assert times == sorted(times)


def test_escalation_narrative():
    station = MercuryStation(tree=tree_iii(), seed=122, oracle="naive")
    station.boot()
    failure = station.injector.inject_joint("pbcom", ["fedr", "pbcom"])
    station.run_until_recovered(failure, timeout=400.0)
    station.run_for(5.0)
    text = episode_timeline(station.trace, failure)
    assert "restart ordered: R_pbcom" in text
    assert "failure re-manifested in pbcom" in text
    assert "restart ordered: R_fedr_pbcom" in text
    assert text.index("R_pbcom") < text.index("R_fedr_pbcom")


def test_component_filter(station):
    failure = station.injector.inject_simple("ses")  # restarts ses AND str
    station.run_until_recovered(failure)
    station.run_for(5.0)
    unfiltered = episode_timeline(station.trace, failure)
    filtered = episode_timeline(station.trace, failure, components=["ses"])
    assert "str functionally ready" in unfiltered
    assert "str functionally ready" not in filtered
    assert "ses functionally ready" in filtered


def test_window_without_failure(station):
    t0 = station.kernel.now
    failure = station.injector.inject_simple("rtu")
    station.run_until_recovered(failure)
    text = episode_timeline(station.trace, since=t0)
    assert "failure injected in rtu" in text


def test_requires_anchor(station):
    with pytest.raises(ValueError):
        episode_timeline(station.trace)
