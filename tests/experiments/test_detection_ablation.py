"""Regression tests for the detection-accuracy vs MTTR ablation.

The headline claim the bench must keep true: on a lossy network the
paper's fixed single-miss detector fires false positives, and the adaptive
policy measurably reduces the spurious declarations that *stand* (reach
REC and stay there).  Single cells are noisy — an escalated false positive
buys a long suppressed restart that silences the FP counter while the cost
moves into MTTR — so the regression asserts on aggregates over seeds (see
the module docstring of :mod:`repro.experiments.detection_ablation`).
"""

import pytest

from repro.experiments.detection_ablation import (
    DetectionCellResult,
    run_detection_ablation,
    run_detection_cell,
)
from repro.mercury.trees import tree_v

HIGH_DROP = 0.15


def total(cells, attribute):
    return sum(getattr(cell, attribute) for cell in cells)


@pytest.fixture(scope="module")
def high_drop_cells():
    """Both policies at high drop over three independent seeds."""
    cells = {"fixed": [], "adaptive": []}
    for policy in cells:
        for seed in (0, 1, 2):
            cells[policy].append(
                run_detection_cell(tree_v(), HIGH_DROP, policy, seed=seed)
            )
    return cells


def test_clean_network_has_no_false_positives():
    for policy in ("fixed", "adaptive"):
        cell = run_detection_cell(tree_v(), 0.0, policy, seed=0)
        assert cell.false_positives == 0
        assert cell.retractions == 0
        assert cell.detections == cell.failures  # every real crash caught


def test_fixed_policy_false_positives_nonzero_at_high_drop(high_drop_cells):
    assert all(cell.false_positives > 0 for cell in high_drop_cells["fixed"])
    # The fixed detector never retracts: its spurious declarations all stand.
    assert total(high_drop_cells["fixed"], "retractions") == 0


def test_adaptive_policy_measurably_reduces_standing_false_positives(
    high_drop_cells,
):
    fixed = total(high_drop_cells["fixed"], "unretracted_false_positives")
    adaptive = total(high_drop_cells["adaptive"], "unretracted_false_positives")
    assert fixed > 0
    assert adaptive < fixed / 2  # "measurably": at least a 2x reduction


def test_adaptive_policy_retracts_under_loss(high_drop_cells):
    assert total(high_drop_cells["adaptive"], "retractions") > 0


def test_cells_are_deterministic_in_seed():
    a = run_detection_cell(tree_v(), HIGH_DROP, "adaptive", seed=42)
    b = run_detection_cell(tree_v(), HIGH_DROP, "adaptive", seed=42)
    assert (a.false_positives, a.retractions, a.detection_latencies,
            a.mttr_samples) == (
        b.false_positives, b.retractions, b.detection_latencies,
        b.mttr_samples,
    )


def test_sweep_is_cell_independent():
    """A subset sweep reproduces the same cells as the full sweep."""
    full = run_detection_ablation(
        tree_v(), drop_rates=(0.0, HIGH_DROP), policies=("fixed", "adaptive"),
        seed=1,
    )
    subset = run_detection_ablation(
        tree_v(), drop_rates=(HIGH_DROP,), policies=("adaptive",), seed=1,
    )
    a = full[(HIGH_DROP, "adaptive")]
    b = subset[(HIGH_DROP, "adaptive")]
    assert a.false_positives == b.false_positives
    assert a.mttr_samples == b.mttr_samples


def test_result_derived_metrics():
    cell = DetectionCellResult(
        tree_name="tree-V", drop_rate=0.1, policy="fixed", failures=3,
        false_positives=5, retractions=2,
        detection_latencies=[1.0, 3.0], mttr_samples=[4.0, 8.0],
    )
    assert cell.unretracted_false_positives == 3
    assert cell.mean_detection_latency == pytest.approx(2.0)
    assert cell.mttr.mean == pytest.approx(6.0)
