"""Tests for the kill-and-measure recovery harness."""

import pytest

from repro.experiments.recovery import measure_recovery, measure_recovery_row
from repro.mercury.trees import tree_ii, tree_iv, tree_v

TRIALS = 8  # small for test speed; the benches run the paper's 100


def test_samples_count_and_metadata():
    result = measure_recovery(tree_ii(), "rtu", trials=TRIALS, seed=61)
    assert len(result.samples) == TRIALS
    assert result.tree_name == "tree-II"
    assert result.component == "rtu"
    assert result.oracle == "perfect"
    assert result.cure_set == frozenset(["rtu"])


def test_small_coefficient_of_variation():
    """§3.2's assumption, verified on our own measurements."""
    result = measure_recovery(tree_ii(), "rtu", trials=TRIALS, seed=62)
    assert result.stats.coefficient_of_variation < 0.1


def test_mean_matches_paper_tree_ii_rtu():
    result = measure_recovery(tree_ii(), "rtu", trials=TRIALS, seed=63)
    assert result.mean == pytest.approx(5.59, abs=0.5)


def test_joint_cure_set_forces_joint_restart():
    result = measure_recovery(
        tree_v(), "pbcom", trials=4, seed=64, cure_set=("fedr", "pbcom")
    )
    assert result.cure_set == frozenset(["fedr", "pbcom"])
    assert result.mean == pytest.approx(22.2, abs=1.0)


def test_faulty_oracle_slower_on_tree_iv():
    perfect = measure_recovery(
        tree_iv(), "pbcom", trials=6, seed=65, cure_set=("fedr", "pbcom")
    )
    faulty = measure_recovery(
        tree_iv(), "pbcom", trials=6, seed=65,
        oracle="faulty", oracle_error_rate=1.0, cure_set=("fedr", "pbcom"),
    )
    assert faulty.mean > perfect.mean + 15.0  # every trial pays the mistake
    assert faulty.oracle.startswith("faulty")


def test_row_helper_covers_components():
    results = measure_recovery_row(tree_ii(), ["rtu", "mbus"], trials=3, seed=66)
    assert [r.component for r in results] == ["rtu", "mbus"]
    assert all(len(r.samples) == 3 for r in results)


def test_abstract_supervisor_agrees_with_full():
    """The fast path's recovery distribution matches the full stack."""
    full = measure_recovery(tree_v(), "rtu", trials=10, seed=67, supervisor="full")
    fast = measure_recovery(tree_v(), "rtu", trials=10, seed=67, supervisor="abstract")
    assert fast.mean == pytest.approx(full.mean, abs=0.3)


def test_determinism():
    a = measure_recovery(tree_v(), "ses", trials=4, seed=68)
    b = measure_recovery(tree_v(), "ses", trials=4, seed=68)
    assert a.samples == b.samples


def test_result_carries_phase_breakdown():
    result = measure_recovery(tree_ii(), "rtu", trials=4, seed=70)
    phases = result.phase_summary("rtu")
    assert phases["total"].n == 4
    # The span-derived totals are the same quantity as the sampled ones.
    assert phases["total"].mean == pytest.approx(result.mean, abs=1e-9)
    assert (
        phases["detection"].mean
        + phases["decision"].mean
        + phases["restart"].mean
    ) == pytest.approx(phases["total"].mean)


def test_extra_sinks_receive_the_run():
    from repro.obs.sinks import MetricsSink

    extra = MetricsSink(track_episodes=False)
    measure_recovery(tree_ii(), "rtu", trials=2, seed=71, sinks=[extra])
    assert extra.count("failure_injected") == 2
    assert extra.count("process_ready") >= 2
