"""Tests for the long-horizon experiments: lifetimes, availability, passes."""

import pytest

from repro.experiments.availability import measure_availability
from repro.experiments.lifetimes import measure_lifetimes
from repro.experiments.passes_experiment import run_pass_campaign
from repro.mercury.trees import tree_i, tree_ii, tree_v

DAY = 86400.0


def test_observed_mttf_converges_to_table1_unsplit():
    """Table 1 closure on tree II (the pre-split component set)."""
    result = measure_lifetimes(tree_ii(), horizon_s=5 * DAY, seed=71)
    # fedrcom fails every 10 minutes: plenty of samples in 5 days.
    assert result.failures["fedrcom"] > 300
    assert result.relative_error("fedrcom") < 0.15
    # ses/str/rtu: ~24 failures each over 5 days — looser tolerance.
    for component in ("ses", "str", "rtu"):
        assert result.failures[component] >= 5
        assert result.relative_error(component) < 0.6


def test_no_failures_for_month_scale_mttf_in_short_run():
    result = measure_lifetimes(tree_ii(), horizon_s=1 * DAY, seed=72)
    assert result.failures["mbus"] <= 1
    assert result.observed_mttf["mbus"] is None or result.observed_mttf["mbus"] > DAY / 2


def test_availability_tree_v_beats_tree_i():
    a_i = measure_availability(tree_i(), horizon_s=3 * DAY, seed=73)
    a_v = measure_availability(tree_v(), horizon_s=3 * DAY, seed=73)
    assert a_v.availability > a_i.availability
    assert a_i.mean_outage_s is not None and a_v.mean_outage_s is not None
    # The paper's headline: recovery time improved by a factor of ~4.
    assert a_i.mean_outage_s / a_v.mean_outage_s > 3.0


def test_availability_result_accounting():
    result = measure_availability(tree_v(), horizon_s=2 * DAY, seed=74)
    assert 0.9 < result.availability < 1.0
    assert result.outages > 0
    assert result.total_downtime_s == pytest.approx(
        (1 - result.availability) * 2 * DAY, rel=0.01
    )
    assert result.annual_downtime_minutes > 0


def test_pass_campaign_shape():
    loss_i = run_pass_campaign(tree_i(), days=5, seed=75)
    loss_v = run_pass_campaign(tree_v(), days=5, seed=75)
    assert loss_i.summary.passes == loss_v.summary.passes > 10
    assert loss_i.loss_fraction > 2 * loss_v.loss_fraction
    assert loss_i.summary.broken_links > loss_v.summary.broken_links


def test_pass_campaign_bytes_conserved():
    result = run_pass_campaign(tree_v(), days=3, seed=76)
    summary = result.summary
    assert summary.total_received_bytes <= summary.total_expected_bytes
    for outcome in summary.outcomes:
        assert 0.0 <= outcome.loss_fraction <= 1.0


def test_availability_phase_breakdown():
    import pytest

    result = measure_availability(tree_v(), horizon_s=2 * DAY, seed=74)
    summary = result.phase_summary("rtu")
    if summary:  # rtu failed at least once in the horizon
        assert summary["total"].n >= 1
        assert summary["total"].mean == pytest.approx(
            summary["detection"].mean
            + summary["decision"].mean
            + summary["restart"].mean,
        )
    # The breakdown exists even though the trace ring was disabled.
    assert isinstance(result.phase_breakdown, dict)
    assert result.phase_breakdown  # something failed in two days
