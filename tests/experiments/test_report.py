"""Tests for table formatting."""

from repro.experiments.report import comparison_row, format_table, relative_errors


def test_format_table_alignment():
    table = format_table(
        ["tree", "mbus", "rtu"],
        [["I", 24.75, 24.75], ["II", 5.73, 5.59]],
        title="Table 2",
    )
    lines = table.splitlines()
    assert lines[0] == "Table 2"
    assert "tree" in lines[1]
    assert set(lines[2]) <= {"-", "+", " "}
    assert "24.75" in table and "5.59" in table


def test_format_table_none_renders_dash():
    table = format_table(["c", "v"], [["x", None]])
    assert "—" in table


def test_format_table_column_widths_consistent():
    table = format_table(["a", "b"], [["xxxx", 1.0], ["y", 123456.78]])
    lines = table.splitlines()
    assert len(lines[0]) == len(lines[2]) == len(lines[3])


def test_comparison_row_pairs():
    rows = comparison_row(
        "tree II", {"rtu": 5.59}, {"rtu": 5.62, "mbus": 5.7}, ["rtu", "mbus"]
    )
    assert rows[0] == ["tree II (paper)", 5.59, None]
    assert rows[1] == ["tree II (measured)", 5.62, 5.7]


def test_relative_errors():
    errors = relative_errors({"a": 10.0, "b": 20.0, "c": None}, {"a": 11.0, "b": 20.0})
    assert errors["a"] == 0.1
    assert errors["b"] == 0.0
    assert "c" not in errors
