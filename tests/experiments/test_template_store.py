"""Shared template store: blob-restored stations are bit-identical to built.

The store is a pure amortization (module docstring of
:mod:`repro.experiments.template_store`): a worker that unpickles the
parent's warmed template must behave byte-for-byte like one that booted
the template locally — same trace stream, same RNG draws, same payloads.
These tests pin that, plus the store mechanics ``run_fleet_cell`` leans
on (publish-once, lazy fetch, idempotent install, counters).
"""

import pytest

from repro.experiments.fleet import DigestSink
from repro.experiments.snapshot import (
    clear_templates,
    publish_template,
    station_shape,
    template_count,
    warm_template,
    warmed_station,
)
from repro.experiments.template_store import STORE, SharedTemplateStore, install_blobs
from repro.mercury.config import PAPER_CONFIG
from repro.mercury.station import MercuryStation
from repro.mercury.trees import tree_ii


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_templates()
    STORE.clear()
    yield
    clear_templates()
    STORE.clear()


def _shape():
    return station_shape("store-unit", tree_ii(), PAPER_CONFIG)


def _build(seed: int) -> MercuryStation:
    return MercuryStation(tree=tree_ii(), config=PAPER_CONFIG, seed=seed)


def _warm(station: MercuryStation) -> None:
    station.boot(settle=5.0)


def _probe(station: MercuryStation, horizon: float = 60.0):
    """Drive a restored station and digest everything observable."""
    digest = DigestSink()
    station.kernel.trace.add_sink(digest)
    draws = [station.kernel.rngs.stream("probe").random() for _ in range(5)]
    station.kernel.run(until=station.kernel.now + horizon)
    return {
        "draws": draws,
        "now": station.kernel.now,
        "events": station.kernel.events_executed,
        "digest": digest.hexdigest(),
        "records": digest.records,
    }


# ----------------------------------------------------------------------
# the correctness lean: unpickled template == locally built template
# ----------------------------------------------------------------------


def test_blob_restored_station_bit_identical_to_built():
    shape = _shape()
    # Parent-side path: build + warm locally, fork a cell station from it.
    local = _probe(warmed_station(shape, _build, _warm, 42, snapshot=True))
    assert local["records"] > 0  # the probe saw real traffic

    # Worker-side path: only the parent's pickle blob is available.
    publish_template(shape, _build, _warm)
    blobs = STORE.blobs()
    clear_templates()
    STORE.clear()
    STORE.install(blobs)
    fetches_before = STORE.fetches
    restored = _probe(warmed_station(shape, _build, _warm, 42, snapshot=True))

    assert restored == local
    assert STORE.fetches == fetches_before + 1  # really came from the blob


def test_blob_restored_stations_still_diverge_across_cell_seeds():
    shape = _shape()
    publish_template(shape, _build, _warm)
    blobs = STORE.blobs()
    clear_templates()
    STORE.clear()
    STORE.install(blobs)
    a = _probe(warmed_station(shape, _build, _warm, 1, snapshot=True))
    b = _probe(warmed_station(shape, _build, _warm, 2, snapshot=True))
    assert a["draws"] != b["draws"]  # the post-restore rebase is real


def test_fetch_misses_fall_back_to_a_boot():
    shape = _shape()
    fetches_before = STORE.fetches
    station = warmed_station(shape, _build, _warm, 7, snapshot=True)
    assert station is not None
    assert STORE.fetches == fetches_before  # nothing published: plain boot
    assert template_count() == 1


# ----------------------------------------------------------------------
# store mechanics
# ----------------------------------------------------------------------


def test_publish_is_once_per_shape():
    shape = _shape()
    published_before = STORE.published
    publish_template(shape, _build, _warm)
    blob = STORE.blobs()[shape]
    publish_template(shape, _build, _warm)  # idempotent: already published
    assert STORE.published == published_before + 1
    assert STORE.blobs()[shape] == blob


def test_fetch_returns_fresh_objects_and_counts():
    store = SharedTemplateStore()
    shape = _shape()
    template = warm_template(shape, _build, _warm)
    store.publish(shape, template)
    assert store.has(shape) and store.shapes() == (shape,)
    first = store.fetch(shape)
    second = store.fetch(shape)
    assert first is not second  # each fetch deserializes afresh
    assert store.fetches == 2
    assert store.fetch("missing-shape") is None
    store.clear()
    assert not store.has(shape)


def test_install_blobs_is_the_module_level_installer():
    shape = _shape()
    publish_template(shape, _build, _warm)
    blobs = STORE.blobs()
    STORE.clear()
    install_blobs(blobs)
    assert STORE.has(shape)
    install_blobs(blobs)  # idempotent re-install
    assert STORE.blobs().keys() == blobs.keys()
