"""Differential tests: envelope fast-path routing vs REPRO_BUS_FULLPARSE=1.

The broker's fast path must be *observationally identical* to legacy
full-parse routing: same routing decisions, same counters, same trace
records (kinds, payloads, and — critically for the paper's timing results —
timestamps).  These tests run the same scenario under both modes and
compare everything.
"""

import pytest

from repro.bus.broker import BusBroker
from repro.experiments.availability import measure_availability
from repro.experiments.recovery import measure_recovery
from repro.mercury.trees import tree_ii, tree_v
from repro.procmgr.manager import ProcessManager
from repro.procmgr.process import ProcessSpec, constant_work
from repro.sim.kernel import Kernel
from repro.transport.network import Network
from repro.xmlcmd.commands import (
    CommandMessage,
    FailureReport,
    PingReply,
    PingRequest,
    RestartOrder,
    TelemetryFrame,
    encode_message,
)

#: Every registered message shape plus the adversarial cases the broker has
#: to judge: unroutable targets, broker-addressed non-pings, malformed XML,
#: schema violations, and non-canonical spellings.
SCENARIO_WIRES = [
    encode_message(PingRequest("a", "mbus", 1)),
    encode_message(PingRequest("a", "b", 2)),
    encode_message(PingReply("b", "a", 2)),
    encode_message(CommandMessage("a", "b", "track", {"az": "1.5"})),
    encode_message(CommandMessage("a", "b", "noop")),
    encode_message(TelemetryFrame("a", "b", "opal", "p7", 512)),
    encode_message(FailureReport("a", "b", ("ses",), 4.5)),
    encode_message(RestartOrder("a", "b", "R_ses", ("ses",), "begin")),
    encode_message(PingRequest("a", "ghost", 3)),  # unroutable
    encode_message(PingReply("a", "mbus", 4)),  # non-ping to the broker
    encode_message(CommandMessage("a", "mbus", "reboot")),  # ditto
    encode_message(TelemetryFrame("a", "mbus", "opal", "p7", 9)),  # ditto
    encode_message(RestartOrder("a", "mbus", "R_x", ("x",), "begin")),  # ditto
    "<not-xml",  # malformed
    '<msg type="ping" from="a" to="mbus" seq="NaN"/>',  # schema violation
    '<msg type="mystery" from="a" to="b"/>',  # unknown kind
    "<msg type='ping' from='a' to='mbus' seq='5'/>",  # non-canonical ping
    '<msg type="ping" from="a" to="mbus" seq="6"><!-- c --></msg>',  # children path
]


def run_scenario(fullparse: bool, monkeypatch):
    if fullparse:
        monkeypatch.setenv("REPRO_BUS_FULLPARSE", "1")
    else:
        monkeypatch.delenv("REPRO_BUS_FULLPARSE", raising=False)
    kernel = Kernel(seed=99)
    network = Network(kernel)
    manager = ProcessManager(kernel)
    process = manager.spawn(
        ProcessSpec("mbus", constant_work(0.5), lambda p: BusBroker(p, network, "mbus:7000"))
    )
    manager.start("mbus")
    kernel.run()
    broker = process.behavior
    assert broker._fullparse is fullparse

    inboxes = {}
    for name in ("a", "b"):
        endpoint = network.connect(name, "mbus:7000")
        inboxes[name] = []
        endpoint.on_message(inboxes[name].append)
        endpoint.send(
            encode_message(CommandMessage(sender=name, target="mbus", verb="attach"))
        )
    kernel.run()

    sender = network.connect("tap", "mbus:7000")
    sender.on_message(lambda raw: inboxes.setdefault("tap", []).append(raw))
    for wire in SCENARIO_WIRES:
        sender.send(wire)
    kernel.run()

    traces = [
        (r.time, r.source, r.kind, r.severity, tuple(sorted(r.data.items())))
        for r in kernel.trace.records
    ]
    return {
        "routed": broker.routed,
        "dropped": broker.dropped,
        "clients": sorted(broker._clients),
        "inboxes": inboxes,
        "traces": traces,
    }


def test_envelope_routing_is_decision_identical(monkeypatch):
    fast = run_scenario(False, monkeypatch)
    legacy = run_scenario(True, monkeypatch)
    assert fast == legacy


def test_fast_path_forwards_raw_bytes_untouched(monkeypatch):
    """The broker must forward the exact wire string, not a re-serialization."""
    result = run_scenario(False, monkeypatch)
    forwarded = [
        w
        for w in SCENARIO_WIRES
        if ' to="b"' in w and "mystery" not in w  # mystery is schema-rejected
    ]
    assert forwarded and all(w in result["inboxes"]["b"] for w in forwarded)


def test_recovery_outputs_bit_identical(monkeypatch):
    """A Table 2/4-style recovery cell at equal seeds: per-trial recovery
    times (the numbers the tables are built from) must not move."""

    def run(fullparse):
        if fullparse:
            monkeypatch.setenv("REPRO_BUS_FULLPARSE", "1")
        else:
            monkeypatch.delenv("REPRO_BUS_FULLPARSE", raising=False)
        return measure_recovery(tree_ii(), "rtu", trials=3, seed=17)

    fast = run(False)
    legacy = run(True)
    assert fast.samples == legacy.samples
    assert fast.phases == legacy.phases


@pytest.mark.parametrize("horizon_s", [6 * 3600.0])
def test_availability_outputs_bit_identical(monkeypatch, horizon_s):
    """The §8 availability pipeline at equal seeds: enabling the fast path
    must not move a single event timestamp."""

    def run(fullparse):
        if fullparse:
            monkeypatch.setenv("REPRO_BUS_FULLPARSE", "1")
        else:
            monkeypatch.delenv("REPRO_BUS_FULLPARSE", raising=False)
        return measure_availability(tree_v(), horizon_s=horizon_s, seed=424)

    fast = run(False)
    legacy = run(True)
    assert fast.availability == legacy.availability
    assert fast.total_downtime_s == legacy.total_downtime_s
    assert fast.outages == legacy.outages
    assert fast.phase_breakdown == legacy.phase_breakdown
