"""Tests for the mbus broker behavior."""

from repro.bus.broker import BusBroker
from repro.procmgr.process import ProcessSpec, constant_work
from repro.xmlcmd.commands import (
    CommandMessage,
    PingReply,
    PingRequest,
    encode_message,
    parse_message,
)


def make_bus(kernel, network, manager, work=0.5):
    process = manager.spawn(
        ProcessSpec("mbus", constant_work(work), lambda p: BusBroker(p, network, "mbus:7000"))
    )
    manager.start("mbus")
    kernel.run()
    return process.behavior


def raw_client(kernel, network, name):
    """A hand-rolled client speaking the wire protocol directly."""
    endpoint = network.connect(name, "mbus:7000")
    inbox = []
    endpoint.on_message(lambda raw: inbox.append(parse_message(raw)))
    endpoint.send(encode_message(CommandMessage(sender=name, target="mbus", verb="attach")))
    return endpoint, inbox


def test_broker_listens_after_start(kernel, network, manager):
    make_bus(kernel, network, manager)
    assert network.is_bound("mbus:7000")


def test_routes_between_attached_clients(kernel, network, manager):
    make_bus(kernel, network, manager)
    a, a_in = raw_client(kernel, network, "a")
    b, b_in = raw_client(kernel, network, "b")
    kernel.run()
    a.send(encode_message(CommandMessage(sender="a", target="b", verb="hello")))
    kernel.run()
    assert len(b_in) == 1
    assert b_in[0].verb == "hello"
    assert a_in == []


def test_broker_answers_own_pings(kernel, network, manager):
    make_bus(kernel, network, manager)
    a, a_in = raw_client(kernel, network, "a")
    kernel.run()
    a.send(encode_message(PingRequest(sender="a", target="mbus", seq=5)))
    kernel.run()
    assert a_in == [PingReply(sender="mbus", target="a", seq=5)]


def test_unroutable_message_dropped_and_counted(kernel, network, manager):
    broker = make_bus(kernel, network, manager)
    a, _ = raw_client(kernel, network, "a")
    kernel.run()
    a.send(encode_message(CommandMessage(sender="a", target="ghost", verb="x")))
    kernel.run()
    assert broker.dropped == 1


def test_malformed_message_dropped(kernel, network, manager):
    broker = make_bus(kernel, network, manager)
    a, _ = raw_client(kernel, network, "a")
    kernel.run()
    a.send("<not-xml")
    kernel.run()
    assert broker.dropped == 1


def test_detach_on_client_close(kernel, network, manager):
    broker = make_bus(kernel, network, manager)
    a, _ = raw_client(kernel, network, "a")
    b, b_in = raw_client(kernel, network, "b")
    kernel.run()
    a.close()
    kernel.run()
    b.send(encode_message(CommandMessage(sender="b", target="a", verb="x")))
    kernel.run()
    assert broker.dropped == 1  # a is gone


def test_kill_closes_all_client_channels(kernel, network, manager):
    make_bus(kernel, network, manager)
    a, _ = raw_client(kernel, network, "a")
    kernel.run()
    manager.fail("mbus")
    kernel.run()
    assert not a.open
    assert not network.is_bound("mbus:7000")


def test_kill_closes_unattached_channels_too(kernel, network, manager):
    """The zombie-channel regression: a connection accepted but whose attach
    message was still in flight must be closed when the broker dies."""
    make_bus(kernel, network, manager)
    endpoint = network.connect("late", "mbus:7000")
    manager.fail("mbus")  # attach never sent
    kernel.run()
    assert not endpoint.open


def test_reattach_after_restart(kernel, network, manager):
    make_bus(kernel, network, manager)
    manager.fail("mbus")
    manager.restart(["mbus"])
    kernel.run()
    a, a_in = raw_client(kernel, network, "a")
    kernel.run()
    a.send(encode_message(PingRequest(sender="a", target="mbus", seq=1)))
    kernel.run()
    assert len(a_in) == 1


def test_last_attach_wins(kernel, network, manager):
    """A restarted client re-attaches over a new channel before the old
    channel's close is processed; traffic must go to the new channel."""
    make_bus(kernel, network, manager)
    old, old_in = raw_client(kernel, network, "dup")
    kernel.run()
    new, new_in = raw_client(kernel, network, "dup")
    kernel.run()
    b, _ = raw_client(kernel, network, "b")
    kernel.run()
    b.send(encode_message(CommandMessage(sender="b", target="dup", verb="x")))
    kernel.run()
    assert len(new_in) == 1
    assert old_in == []


def test_non_ping_to_broker_dropped_and_traced(kernel, network, manager):
    """Misrouted control traffic addressed to mbus must be observable, not
    silently swallowed."""
    broker = make_bus(kernel, network, manager)
    a, a_in = raw_client(kernel, network, "a")
    kernel.run()
    a.send(encode_message(CommandMessage(sender="a", target="mbus", verb="reboot")))
    a.send(encode_message(PingReply(sender="a", target="mbus", seq=9)))
    kernel.run()
    assert broker.dropped == 2
    assert a_in == []
    bad = [r for r in kernel.trace.records if r.kind == "bus_bad_message"]
    assert len(bad) == 2
    assert "command" in bad[0].data["error"]
    assert "ping-reply" in bad[1].data["error"]


def test_close_bookkeeping_is_keyed_not_scanned(kernel, network, manager):
    """Kill-storm hygiene: every close removes exactly its own endpoint and
    registration, leaving the other clients untouched."""
    broker = make_bus(kernel, network, manager)
    endpoints = [raw_client(kernel, network, f"c{i}")[0] for i in range(8)]
    kernel.run()
    assert len(broker._clients) == 8 and len(broker._endpoints) == 8
    for endpoint in endpoints[:4]:
        endpoint.close()
    kernel.run()
    assert sorted(broker._clients) == [f"c{i}" for i in range(4, 8)]
    assert len(broker._endpoints) == 4
    remaining = sorted(n for names in broker._endpoints.values() for n in names)
    assert remaining == [f"c{i}" for i in range(4, 8)]


def test_stale_close_after_reattach_keeps_new_registration(kernel, network, manager):
    """The old channel of a re-attached client closes late; the new
    registration must survive and no spurious detach may be traced."""
    broker = make_bus(kernel, network, manager)
    old, _ = raw_client(kernel, network, "dup")
    kernel.run()
    new, new_in = raw_client(kernel, network, "dup")
    kernel.run()
    old.close()
    kernel.run()
    detached = [r for r in kernel.trace.records if r.kind == "bus_detached"]
    assert detached == []
    assert broker._clients["dup"] is not None
    b, _ = raw_client(kernel, network, "b")
    kernel.run()
    b.send(encode_message(CommandMessage(sender="b", target="dup", verb="x")))
    kernel.run()
    assert len(new_in) == 1


def test_routed_counter(kernel, network, manager):
    broker = make_bus(kernel, network, manager)
    a, _ = raw_client(kernel, network, "a")
    b, _ = raw_client(kernel, network, "b")
    kernel.run()
    for _ in range(3):
        a.send(encode_message(CommandMessage(sender="a", target="b", verb="x")))
    kernel.run()
    assert broker.routed == 3
