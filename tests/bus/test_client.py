"""Tests for the standalone BusClient (connect, reconnect, messaging)."""

import pytest

from repro.bus.client import BusClient
from repro.bus.broker import BusBroker
from repro.errors import NotConnectedError
from repro.procmgr.process import ProcessSpec, constant_work
from repro.xmlcmd.commands import CommandMessage, PingReply, PingRequest


def start_bus(kernel, network, manager):
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.5), lambda p: BusBroker(p, network, "mbus:7000"))
    )
    manager.start("mbus")
    kernel.run()


def test_connect_success(kernel, network, manager):
    start_bus(kernel, network, manager)
    client = BusClient(kernel, network, "ops")
    assert client.connect()
    assert client.connected


def test_connect_fails_when_bus_down(kernel, network):
    client = BusClient(kernel, network, "ops", auto_reconnect=False)
    assert not client.connect()
    assert not client.connected


def test_send_when_disconnected_returns_false(kernel, network):
    client = BusClient(kernel, network, "ops", auto_reconnect=False)
    assert client.send(PingRequest("ops", "x", 1)) is False


def test_two_clients_exchange_messages(kernel, network, manager):
    start_bus(kernel, network, manager)
    a = BusClient(kernel, network, "a")
    b = BusClient(kernel, network, "b")
    a.connect()
    b.connect()
    kernel.run()
    a.send(CommandMessage(sender="a", target="b", verb="hi"))
    kernel.run()
    assert len(b.received) == 1
    assert b.received[0].verb == "hi"


def test_handler_callbacks_invoked(kernel, network, manager):
    start_bus(kernel, network, manager)
    a = BusClient(kernel, network, "a")
    b = BusClient(kernel, network, "b")
    a.connect()
    b.connect()
    seen = []
    b.on_message(seen.append)
    kernel.run()
    a.send(CommandMessage(sender="a", target="b", verb="hi"))
    kernel.run()
    assert len(seen) == 1


def test_auto_reconnect_after_bus_bounce(kernel, network, manager):
    start_bus(kernel, network, manager)
    client = BusClient(kernel, network, "ops")
    client.connect()
    kernel.run()
    manager.fail("mbus")
    manager.restart(["mbus"])
    kernel.run(until=kernel.now + 3.0)
    assert client.connected
    client.send(PingRequest("ops", "mbus", 9))
    kernel.run(until=kernel.now + 1.0)
    assert PingReply(sender="mbus", target="ops", seq=9) in client.received


def test_retry_until_bus_appears(kernel, network, manager):
    client = BusClient(kernel, network, "ops", reconnect_interval=0.25)
    client.connect()  # bus not up yet; schedules retries
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.5), lambda p: BusBroker(p, network, "mbus:7000"))
    )
    kernel.call_after(2.0, manager.start, "mbus")
    kernel.run(until=5.0)
    assert client.connected


def test_closed_client_refuses_connect(kernel, network, manager):
    start_bus(kernel, network, manager)
    client = BusClient(kernel, network, "ops")
    client.connect()
    client.close()
    with pytest.raises(NotConnectedError):
        client.connect()


def test_closed_client_does_not_reconnect(kernel, network, manager):
    start_bus(kernel, network, manager)
    client = BusClient(kernel, network, "ops")
    client.connect()
    kernel.run()
    client.close()
    manager.fail("mbus")
    manager.restart(["mbus"])
    kernel.run(until=kernel.now + 3.0)
    assert not client.connected
