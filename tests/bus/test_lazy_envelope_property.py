"""Property test: lazy-decode envelopes are access-pattern transparent.

A :class:`~repro.xmlcmd.fastpath.LazyMessage` defers parsing until first
use.  The contract: *no matter which subset of a message a consumer
touches — nothing, one field, an isinstance check, or the whole document —
the observable world is identical to eager full parsing* (the
``REPRO_BUS_FULLPARSE=1`` mode).  That covers the delivered documents
themselves, and the broker's routed/dropped counters, which must not
depend on what receivers later do with their mail.

Hypothesis drives random message batches through a live broker with two
attached clients under every (access pattern × parse mode) combination
and compares everything observable.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bus.broker import BusBroker
from repro.bus.client import BusClient
from repro.procmgr.manager import ProcessManager
from repro.procmgr.process import ProcessSpec, constant_work
from repro.sim.kernel import Kernel
from repro.transport.network import Network
from repro.xmlcmd.commands import (
    CommandMessage,
    Message,
    PingReply,
    PingRequest,
    TelemetryFrame,
    encode_message,
    parse_message,
)

_NAME = st.sampled_from(["alpha", "beta", "fd", "rec", "pbcom"])
_SEQ = st.integers(min_value=0, max_value=10**9)
_VERB = st.sampled_from(["attach", "track", "noop", "resync"])
_PARAMS = st.dictionaries(
    st.sampled_from(["az", "el", "rate"]),
    st.text(st.characters(codec="ascii", exclude_characters='<>&"\x00'), max_size=8),
    max_size=2,
)

_MESSAGE = st.one_of(
    st.builds(PingRequest, _NAME, st.sampled_from(["rx-a", "rx-b", "ghost"]), _SEQ),
    st.builds(PingReply, _NAME, st.sampled_from(["rx-a", "rx-b"]), _SEQ),
    st.builds(
        CommandMessage, _NAME, st.sampled_from(["rx-a", "rx-b"]), _VERB, _PARAMS
    ),
    st.builds(
        TelemetryFrame,
        _NAME,
        st.sampled_from(["rx-a", "rx-b"]),
        st.just("opal"),
        st.sampled_from(["p1", "p9"]),
        st.integers(min_value=0, max_value=10**6),
    ),
)

#: How a receiving client inspects its mail.  "none" never touches the
#: message (a relay/counter); "partial" reads one routing field; "kind"
#: only runs an isinstance check; "full" forces a complete materialized
#: document via dataclass equality with a reference parse.
ACCESS_PATTERNS = ("none", "partial", "kind", "full")


def _observe(message: Message, pattern: str):
    if pattern == "none":
        return "untouched"
    if pattern == "partial":
        return message.sender
    if pattern == "kind":
        # ``message.__class__`` (what isinstance uses), not ``type()``:
        # CPython's type() reads the slot directly and bypasses the lazy
        # proxy, which is outside the LazyMessage contract.
        return message.__class__.__name__
    # full: materialize everything and normalize to the parsed form.
    return parse_message(encode_message(message))


def _run_batch(wires, pattern: str, fullparse: bool):
    os.environ.pop("REPRO_BUS_FULLPARSE", None)
    if fullparse:
        os.environ["REPRO_BUS_FULLPARSE"] = "1"
    try:
        kernel = Kernel(seed=31)
        network = Network(kernel)
        manager = ProcessManager(kernel)
        process = manager.spawn(
            ProcessSpec("mbus", constant_work(0.2), lambda p: BusBroker(p, network))
        )
        manager.start("mbus")
        kernel.run()
        broker = process.behavior

        observations = {}
        clients = {}
        for name in ("rx-a", "rx-b"):
            client = BusClient(kernel, network, name)
            client.connect()
            observations[name] = []
            clients[name] = client

            def handler(message, _name=name):
                observations[_name].append(_observe(message, pattern))

            client.on_message(handler)
        sender = BusClient(kernel, network, "tx")
        sender.connect()
        kernel.run(until=kernel.now + 1.0)

        for wire in wires:
            # Raw endpoint send: the canonical wire bytes, no client-side
            # re-serialization in the loop.
            sender._endpoint.send(wire)
        kernel.run(until=kernel.now + 5.0)

        # Late full materialization: whatever was stored in .received must
        # equal the reference parse, even for the "none" pattern where no
        # handler ever looked at it.
        stored = {
            name: [parse_message(encode_message(m)) for m in clients[name].received]
            for name in clients
        }
        return {
            "routed": broker.routed,
            "dropped": broker.dropped,
            "observations": observations,
            "stored": stored,
        }
    finally:
        os.environ.pop("REPRO_BUS_FULLPARSE", None)


@settings(max_examples=25, deadline=None)
@given(st.lists(_MESSAGE, min_size=1, max_size=12))
def test_lazy_envelopes_match_fullparse_under_every_access_pattern(messages):
    wires = [encode_message(m) for m in messages]
    for pattern in ACCESS_PATTERNS:
        fast = _run_batch(wires, pattern, fullparse=False)
        legacy = _run_batch(wires, pattern, fullparse=True)
        assert fast == legacy, f"divergence under access pattern {pattern!r}"


@settings(max_examples=25, deadline=None)
@given(st.lists(_MESSAGE, min_size=1, max_size=12))
def test_access_pattern_never_changes_broker_counters(messages):
    """Routing happened before delivery: what a receiver does (or doesn't)
    with a lazy message cannot move the broker's counters."""
    wires = [encode_message(m) for m in messages]
    reference = None
    for pattern in ACCESS_PATTERNS:
        result = _run_batch(wires, pattern, fullparse=False)
        counters = (result["routed"], result["dropped"], result["stored"])
        if reference is None:
            reference = counters
        else:
            assert counters == reference, f"pattern {pattern!r} moved the counters"
