"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_trees_renders_all(capsys):
    assert main(["trees"]) == 0
    out = capsys.readouterr().out
    for label in ("tree-I", "tree-II", "tree-III", "tree-IV", "tree-V"):
        assert label in out
    assert "R_fedr_pbcom" in out


def test_recovery_command(capsys):
    assert main(["recovery", "--component", "rtu", "--trials", "3"]) == 0
    out = capsys.readouterr().out
    assert "tree V" in out
    assert "rtu" in out
    assert "mean" in out
    assert "n=3" in out


def test_recovery_with_tree_and_oracle(capsys):
    code = main([
        "recovery", "--tree", "IV", "--component", "pbcom", "--trials", "2",
        "--oracle", "faulty", "--error-rate", "1.0",
        "--cure", "fedr", "pbcom",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "faulty" in out
    assert "['fedr', 'pbcom']" in out


def test_recovery_unknown_component_errors(capsys):
    assert main(["recovery", "--tree", "V", "--component", "fedrcom"]) == 2
    assert "not in tree" in capsys.readouterr().err


def test_table2_command(capsys):
    assert main(["table2", "--trials", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "fedrcom" in out


def test_availability_command(capsys):
    assert main(["availability", "--days", "0.5", "--tree", "V"]) == 0
    out = capsys.readouterr().out
    assert "Availability" in out
    assert "V" in out


def test_passes_command(capsys):
    assert main(["passes", "--days", "1", "--tree", "V"]) == 0
    out = capsys.readouterr().out
    assert "Pass campaign" in out


def test_seed_changes_results(capsys):
    main(["--seed", "1", "recovery", "--component", "rtu", "--trials", "2"])
    first = capsys.readouterr().out
    main(["--seed", "2", "recovery", "--component", "rtu", "--trials", "2"])
    second = capsys.readouterr().out
    assert first != second


def test_table4_command(capsys):
    assert main(["table4", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 4" in out
    assert "IV/faulty" in out
    assert "V/faulty" in out


def test_jobs_flag_accepted_before_and_after_subcommand(capsys):
    assert main(["--jobs", "2", "table2", "--trials", "2"]) == 0
    before = capsys.readouterr().out
    assert main(["table2", "--trials", "2", "--jobs", "2"]) == 0
    after = capsys.readouterr().out
    assert before == after


def test_parallel_cli_output_matches_serial(capsys):
    assert main(["table2", "--trials", "2", "--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(["table2", "--trials", "2", "--jobs", "4"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_cache_dir_round_trip(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["table2", "--trials", "2", "--cache-dir", cache]) == 0
    first = capsys.readouterr().out
    entries = len(list(tmp_path.joinpath("cache").iterdir()))
    assert entries > 0
    assert main(["table2", "--trials", "2", "--cache-dir", cache]) == 0
    second = capsys.readouterr().out
    assert first == second
    assert len(list(tmp_path.joinpath("cache").iterdir())) == entries


def test_profile_flag_prints_stats(capsys):
    assert main(["--profile", "recovery", "--component", "rtu", "--trials", "1"]) == 0
    out = capsys.readouterr().out
    assert "cumulative" in out
    assert "function calls" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_invalid_tree_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["recovery", "--tree", "VII", "--component", "rtu"])


def test_recovery_trace_out_and_phase_table(tmp_path, capsys):
    out_path = str(tmp_path / "run.jsonl")
    code = main([
        "recovery", "--component", "rtu", "--trials", "2",
        "--trace-out", out_path,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Per-phase recovery breakdown" in out
    assert "detection (s)" in out
    assert f"-> {out_path}" in out
    from repro.obs.sinks import read_jsonl
    kinds = {row["kind"] for row in read_jsonl(out_path)}
    assert {"failure_injected", "detection", "restart_ordered"} <= kinds


def test_trace_subcommand_filters(tmp_path, capsys):
    out_path = str(tmp_path / "run.jsonl")
    main(["recovery", "--component", "rtu", "--trials", "2",
          "--trace-out", out_path])
    capsys.readouterr()

    assert main(["trace", out_path, "--kind", "restart_ordered"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    assert lines
    assert all("restart_ordered" in line for line in lines)

    assert main(["trace", out_path, "--source", "faults", "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert len([line for line in out.splitlines() if line.strip()]) == 1

    assert main(["trace", out_path, "--since", "1e12"]) == 0
    assert capsys.readouterr().out.strip() == ""


def test_trace_subcommand_missing_file(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    assert "nope.jsonl" in capsys.readouterr().err


def test_availability_phases_flag(capsys):
    code = main(["availability", "--days", "0.5", "--tree", "V", "--phases"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Tree V: per-phase recovery breakdown" in out
    assert "detection (s)" in out


def test_chaos_command(capsys):
    code = main(["chaos", "--scenario", "cascade", "--tree", "V",
                 "--trials", "1", "--seed", "7"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Chaos campaigns" in out
    assert "cascade" in out
    assert "invariants: all OK" in out


def test_chaos_speedup_table_and_report(tmp_path, capsys):
    report = str(tmp_path / "chaos.json")
    code = main(["chaos", "--scenario", "mixed", "--tree", "I", "--tree", "V",
                 "--seed", "7", "--report", report])
    assert code == 0
    out = capsys.readouterr().out
    assert "Recovery speed-up vs tree I" in out
    import json
    with open(report, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    assert set(payload) == {"mixed/I", "mixed/V"}
    assert payload["mixed/V"]["violations"] == []


def test_chaos_trace_out_is_deterministic(tmp_path, capsys):
    paths = [str(tmp_path / f"run{i}.jsonl") for i in (1, 2)]
    for path in paths:
        code = main(["chaos", "--scenario", "cascade", "--tree", "V",
                     "--seed", "42", "--trace-out", path])
        assert code == 0
    capsys.readouterr()
    with open(paths[0], "rb") as fh:
        first = fh.read()
    with open(paths[1], "rb") as fh:
        second = fh.read()
    assert first and first == second


def test_chaos_trace_out_requires_single_cell(capsys):
    code = main(["chaos", "--scenario", "cascade", "--tree", "I", "--tree", "V",
                 "--trace-out", "/tmp/unused.jsonl"])
    assert code == 2
    assert "exactly one" in capsys.readouterr().err


def test_chaos_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chaos", "--scenario", "nope"])


def test_detection_ablation_command(capsys):
    code = main([
        "detection-ablation", "--tree", "V",
        "--drop", "0.0", "--drop", "0.15", "--failures", "2", "--seed", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Detection accuracy vs MTTR" in out
    assert "fixed" in out and "adaptive" in out


def test_chaos_command_knows_new_scenarios(capsys):
    assert main([
        "chaos", "--scenario", "zombie-fleet", "--tree", "V",
        "--trials", "1", "--seed", "7",
    ]) == 0
    out = capsys.readouterr().out
    assert "invariants: all OK" in out


def test_workload_command(tmp_path, capsys):
    report = str(tmp_path / "workload.json")
    code = main([
        "workload", "--strategy", "classic", "--strategy", "microreboot",
        "--kind", "crash", "--tree", "III", "--failures", "1",
        "--rate", "6", "--seed", "7", "--report", report,
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "User-traffic cells" in out
    assert "(classic)" in out and "microreboot" in out
    assert "loss %" in out
    assert "invariants: all OK" in out
    import json
    with open(report, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    assert set(payload) == {"classic/crash/III", "microreboot/crash/III"}
    effects = payload["microreboot/crash/III"]["effects"]
    assert effects["requests_ok"] > 0


def test_workload_rejects_unknown_strategy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["workload", "--strategy", "nope"])


def test_strategy_compare_user_effects_columns(capsys):
    code = main([
        "strategy-compare", "--strategy", "microreboot", "--kind", "crash",
        "--tree", "III", "--trials", "1", "--seed", "7", "--user-effects",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "user loss" in out


def test_fleet_request_rate_columns(capsys):
    code = main([
        "fleet", "--size", "2", "--horizon", "60", "--wave-interval", "0",
        "--seed", "7", "--request-rate", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "goodput" in out
    assert "user loss" in out
