"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_trees_renders_all(capsys):
    assert main(["trees"]) == 0
    out = capsys.readouterr().out
    for label in ("tree-I", "tree-II", "tree-III", "tree-IV", "tree-V"):
        assert label in out
    assert "R_fedr_pbcom" in out


def test_recovery_command(capsys):
    assert main(["recovery", "--component", "rtu", "--trials", "3"]) == 0
    out = capsys.readouterr().out
    assert "tree V" in out
    assert "rtu" in out
    assert "mean" in out
    assert "n=3" in out


def test_recovery_with_tree_and_oracle(capsys):
    code = main([
        "recovery", "--tree", "IV", "--component", "pbcom", "--trials", "2",
        "--oracle", "faulty", "--error-rate", "1.0",
        "--cure", "fedr", "pbcom",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "faulty" in out
    assert "['fedr', 'pbcom']" in out


def test_recovery_unknown_component_errors(capsys):
    assert main(["recovery", "--tree", "V", "--component", "fedrcom"]) == 2
    assert "not in tree" in capsys.readouterr().err


def test_table2_command(capsys):
    assert main(["table2", "--trials", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "fedrcom" in out


def test_availability_command(capsys):
    assert main(["availability", "--days", "0.5", "--tree", "V"]) == 0
    out = capsys.readouterr().out
    assert "Availability" in out
    assert "V" in out


def test_passes_command(capsys):
    assert main(["passes", "--days", "1", "--tree", "V"]) == 0
    out = capsys.readouterr().out
    assert "Pass campaign" in out


def test_seed_changes_results(capsys):
    main(["--seed", "1", "recovery", "--component", "rtu", "--trials", "2"])
    first = capsys.readouterr().out
    main(["--seed", "2", "recovery", "--component", "rtu", "--trials", "2"])
    second = capsys.readouterr().out
    assert first != second


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_invalid_tree_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["recovery", "--tree", "VII", "--component", "rtu"])
