"""Tests for failure descriptors and cure-set semantics."""

import pytest

from repro.faults.failure import FailureDescriptor


def test_simple_failure_cure_set():
    failure = FailureDescriptor.simple("rtu", at=1.0)
    assert failure.manifest_component == "rtu"
    assert failure.cure_set == frozenset(["rtu"])
    assert failure.kind == "crash"


def test_joint_failure():
    failure = FailureDescriptor.joint("pbcom", frozenset(["fedr", "pbcom"]), at=2.0)
    assert failure.cure_set == frozenset(["fedr", "pbcom"])


def test_cure_set_must_contain_manifest():
    with pytest.raises(ValueError):
        FailureDescriptor("a", frozenset(["b"]), injected_at=0.0)


def test_is_cured_by_superset():
    failure = FailureDescriptor.joint("a", frozenset(["a", "b"]), at=0.0)
    assert failure.is_cured_by(frozenset(["a", "b"]))
    assert failure.is_cured_by(frozenset(["a", "b", "c"]))


def test_is_not_cured_by_subset():
    failure = FailureDescriptor.joint("a", frozenset(["a", "b"]), at=0.0)
    assert not failure.is_cured_by(frozenset(["a"]))
    assert not failure.is_cured_by(frozenset(["b"]))
    assert not failure.is_cured_by(frozenset())


def test_ids_are_unique_and_increasing():
    a = FailureDescriptor.simple("x", at=0.0)
    b = FailureDescriptor.simple("x", at=0.0)
    assert b.failure_id > a.failure_id


def test_induced_by_linkage():
    provoker = FailureDescriptor.simple("ses", at=0.0)
    induced = FailureDescriptor(
        "str", frozenset(["str"]), injected_at=1.0,
        kind="induced-resync", induced_by=provoker.failure_id,
    )
    assert induced.induced_by == provoker.failure_id


def test_str_rendering():
    failure = FailureDescriptor.joint("pbcom", frozenset(["fedr", "pbcom"]), at=0.0)
    text = str(failure)
    assert "pbcom" in text and "fedr+pbcom" in text


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown failure kind"):
        FailureDescriptor.simple("rtu", at=0.0, kind="meltdwon")


def test_fail_slow_kinds_accepted():
    assert FailureDescriptor.simple("rtu", at=0.0, kind="hang").kind == "hang"
    assert FailureDescriptor.simple("rtu", at=0.0, kind="zombie").kind == "zombie"


def test_register_failure_kind_extends_the_set():
    from repro.faults.failure import known_failure_kinds, register_failure_kind

    assert "brownout" not in known_failure_kinds()
    register_failure_kind("brownout")
    try:
        assert FailureDescriptor.simple("rtu", at=0.0, kind="brownout").kind == (
            "brownout"
        )
    finally:
        # Leave the declared set as we found it for other tests.
        from repro.faults import failure as failure_module

        failure_module._known_kinds.discard("brownout")


def test_register_failure_kind_rejects_empty():
    from repro.faults.failure import register_failure_kind

    with pytest.raises(ValueError):
        register_failure_kind("")
