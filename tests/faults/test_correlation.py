"""Tests for correlated-failure mechanisms: resync coupling and aging."""

import pytest

from repro.faults.correlation import DisconnectAging, ResyncCoupling
from repro.faults.injector import FaultInjector

from tests.conftest import spawn_simple


@pytest.fixture
def pair(kernel, manager):
    for name in ("ses", "str"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    coupling = ResyncCoupling(injector, "ses", "str", induced_delay=0.2)
    return injector, coupling


def settle(kernel, seconds=30.0):
    kernel.run(until=kernel.now + seconds)


def test_lone_restart_crashes_stale_peer(kernel, manager, pair):
    injector, coupling = pair
    settle(kernel)  # let the peer's session age past the freshness window
    injector.inject_simple("ses")
    manager.restart(["ses"])
    settle(kernel, 5.0)
    assert coupling.induced_count == 1
    induced = [d for d in injector.history if d.kind == "induced-resync"]
    assert len(induced) == 1
    assert induced[0].manifest_component == "str"


def test_joint_restart_does_not_induce(kernel, manager, pair):
    injector, coupling = pair
    settle(kernel)
    injector.inject_simple("ses")
    manager.restart(["ses", "str"])
    settle(kernel, 5.0)
    assert coupling.induced_count == 0


def test_no_infinite_ping_pong(kernel, manager, pair):
    """One induced round only: the freshly restarted side holds a fresh
    session, so the cascade terminates."""
    injector, coupling = pair
    settle(kernel)
    injector.inject_simple("ses")
    manager.restart(["ses"])
    settle(kernel, 2.0)
    # Recover the induced str failure with a lone restart too.
    manager.restart(["str"])
    settle(kernel, 30.0)
    assert coupling.induced_count == 1
    assert manager.all_running()


def test_fresh_peer_survives(kernel, manager, pair):
    injector, coupling = pair
    settle(kernel)
    manager.restart(["str"])  # str bounces; ses is stale -> ses induced
    settle(kernel, 2.0)
    assert coupling.induced_count == 1
    manager.restart(["ses"])  # ses bounces; str restarted seconds ago -> fresh
    settle(kernel, 10.0)
    assert coupling.induced_count == 1


def test_induce_probability_zero_disables(kernel, manager):
    for name in ("a", "b"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    coupling = ResyncCoupling(injector, "a", "b", induce_probability=0.0)
    kernel.run(until=kernel.now + 30.0)
    manager.restart(["a"])
    kernel.run(until=kernel.now + 10.0)
    assert coupling.induced_count == 0


def test_enabled_flag_disables(kernel, manager, pair):
    injector, coupling = pair
    coupling.enabled = False
    settle(kernel)
    manager.restart(["ses"])
    settle(kernel, 5.0)
    assert coupling.induced_count == 0


def test_coupling_validates_arguments(kernel, manager, pair):
    injector, _ = pair
    with pytest.raises(ValueError):
        ResyncCoupling(injector, "x", "x")
    with pytest.raises(ValueError):
        ResyncCoupling(injector, "x", "y", induce_probability=1.5)


def test_induced_failure_links_provoker(kernel, manager, pair):
    injector, _ = pair
    settle(kernel)
    provoking = injector.inject_simple("ses")
    manager.restart(["ses"])
    settle(kernel, 5.0)
    induced = [d for d in injector.history if d.kind == "induced-resync"][0]
    assert induced.induced_by == provoking.failure_id


# ----------------------------------------------------------------------
# aging
# ----------------------------------------------------------------------


@pytest.fixture
def aged(kernel, manager):
    for name in ("fedr", "pbcom"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    aging = DisconnectAging(
        injector, "fedr", "pbcom", mean_failures_to_age_out=3.0, fail_delay=0.5
    )
    return injector, aging


def test_each_disconnect_ages_victim(kernel, manager, aged):
    injector, aging = aged
    manager.fail("fedr")
    manager.restart(["fedr"])
    kernel.run(until=kernel.now + 5.0)
    assert aging.age >= 1 or aging.aged_out_count >= 1


def test_victim_eventually_ages_out(kernel, manager, aged):
    injector, aging = aged
    for _ in range(20):
        manager.fail("fedr")
        manager.restart(["fedr"])
        kernel.run(until=kernel.now + 3.0)
        if not manager.get("pbcom").is_running:
            manager.restart(["pbcom"])
            kernel.run(until=kernel.now + 3.0)
    assert aging.aged_out_count >= 2
    aging_failures = [d for d in injector.history if d.kind == "aging"]
    assert aging_failures
    assert all(d.manifest_component == "pbcom" for d in aging_failures)


def test_victim_restart_rejuvenates(kernel, manager, aged):
    _, aging = aged
    manager.fail("fedr")
    manager.restart(["fedr"])
    kernel.run(until=kernel.now + 0.1)
    age_before = aging.age
    manager.restart(["pbcom"])
    kernel.run(until=kernel.now + 5.0)
    assert aging.age == 0
    assert age_before >= 0


def test_aging_disabled_flag(kernel, manager, aged):
    injector, aging = aged
    aging.enabled = False
    for _ in range(10):
        manager.fail("fedr")
        manager.restart(["fedr"])
        kernel.run(until=kernel.now + 3.0)
    assert aging.aged_out_count == 0
    assert [d for d in injector.history if d.kind == "aging"] == []


def test_aging_validates_arguments(kernel, manager, aged):
    injector, _ = aged
    with pytest.raises(ValueError):
        DisconnectAging(injector, "x", "x")
    with pytest.raises(ValueError):
        DisconnectAging(injector, "x", "y", mean_failures_to_age_out=0.5)


def test_mean_disconnects_to_age_out(kernel, manager):
    """The geometric threshold's mean matches the configured value."""
    for name in ("p", "v"):
        spawn_simple(manager, name, work=0.2)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    aging = DisconnectAging(injector, "p", "v", mean_failures_to_age_out=4.0, fail_delay=0.1)
    disconnects = 0
    for _ in range(400):
        manager.fail("p")
        manager.restart(["p"])
        disconnects += 1
        kernel.run(until=kernel.now + 1.0)
        if not manager.get("v").is_running:
            manager.restart(["v"])
            kernel.run(until=kernel.now + 1.0)
    assert disconnects / max(aging.aged_out_count, 1) == pytest.approx(4.0, rel=0.3)
