"""Tests for correlated-failure mechanisms: resync, groups, and aging."""

import pytest

from repro.faults.correlation import CorrelationGroup, DisconnectAging, ResyncCoupling
from repro.faults.injector import FaultInjector

from tests.conftest import spawn_simple


@pytest.fixture
def pair(kernel, manager):
    for name in ("ses", "str"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    coupling = ResyncCoupling(injector, "ses", "str", induced_delay=0.2)
    return injector, coupling


def settle(kernel, seconds=30.0):
    kernel.run(until=kernel.now + seconds)


def test_lone_restart_crashes_stale_peer(kernel, manager, pair):
    injector, coupling = pair
    settle(kernel)  # let the peer's session age past the freshness window
    injector.inject_simple("ses")
    manager.restart(["ses"])
    settle(kernel, 5.0)
    assert coupling.induced_count == 1
    induced = [d for d in injector.history if d.kind == "induced-resync"]
    assert len(induced) == 1
    assert induced[0].manifest_component == "str"


def test_joint_restart_does_not_induce(kernel, manager, pair):
    injector, coupling = pair
    settle(kernel)
    injector.inject_simple("ses")
    manager.restart(["ses", "str"])
    settle(kernel, 5.0)
    assert coupling.induced_count == 0


def test_no_infinite_ping_pong(kernel, manager, pair):
    """One induced round only: the freshly restarted side holds a fresh
    session, so the cascade terminates."""
    injector, coupling = pair
    settle(kernel)
    injector.inject_simple("ses")
    manager.restart(["ses"])
    settle(kernel, 2.0)
    # Recover the induced str failure with a lone restart too.
    manager.restart(["str"])
    settle(kernel, 30.0)
    assert coupling.induced_count == 1
    assert manager.all_running()


def test_fresh_peer_survives(kernel, manager, pair):
    injector, coupling = pair
    settle(kernel)
    manager.restart(["str"])  # str bounces; ses is stale -> ses induced
    settle(kernel, 2.0)
    assert coupling.induced_count == 1
    manager.restart(["ses"])  # ses bounces; str restarted seconds ago -> fresh
    settle(kernel, 10.0)
    assert coupling.induced_count == 1


def test_induce_probability_zero_disables(kernel, manager):
    for name in ("a", "b"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    coupling = ResyncCoupling(injector, "a", "b", induce_probability=0.0)
    kernel.run(until=kernel.now + 30.0)
    manager.restart(["a"])
    kernel.run(until=kernel.now + 10.0)
    assert coupling.induced_count == 0


def test_enabled_flag_disables(kernel, manager, pair):
    injector, coupling = pair
    coupling.enabled = False
    settle(kernel)
    manager.restart(["ses"])
    settle(kernel, 5.0)
    assert coupling.induced_count == 0


def test_coupling_validates_arguments(kernel, manager, pair):
    injector, _ = pair
    with pytest.raises(ValueError):
        ResyncCoupling(injector, "x", "x")
    with pytest.raises(ValueError):
        ResyncCoupling(injector, "x", "y", induce_probability=1.5)


def test_induced_failure_links_provoker(kernel, manager, pair):
    injector, _ = pair
    settle(kernel)
    provoking = injector.inject_simple("ses")
    manager.restart(["ses"])
    settle(kernel, 5.0)
    induced = [d for d in injector.history if d.kind == "induced-resync"][0]
    assert induced.induced_by == provoking.failure_id


# ----------------------------------------------------------------------
# correlation groups
# ----------------------------------------------------------------------


@pytest.fixture
def grouped(kernel, manager):
    for name in ("a", "b", "c"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    return FaultInjector(kernel, manager)


def test_group_rejects_empty_and_singleton(grouped):
    with pytest.raises(ValueError):
        CorrelationGroup(grouped, ())
    with pytest.raises(ValueError):
        CorrelationGroup(grouped, ("a",))


def test_group_rejects_duplicates_and_bad_probability(grouped):
    with pytest.raises(ValueError):
        CorrelationGroup(grouped, ("a", "b", "a"))
    with pytest.raises(ValueError):
        CorrelationGroup(grouped, ("a", "b"), induce_probability=-0.1)
    with pytest.raises(ValueError):
        CorrelationGroup(grouped, ("a", "b"), induce_probability=1.5)


def test_group_fells_other_members_once(kernel, manager, grouped):
    group = CorrelationGroup(grouped, ("a", "b", "c"), induced_delay=0.2)
    grouped.inject_simple("a")
    settle(kernel, 2.0)
    assert group.induced_count == 2
    assert not manager.get("b").is_running
    assert not manager.get("c").is_running
    # Recovery restarts of the felled members must not re-trigger the
    # (disarmed) group against themselves.
    manager.restart(["a", "b", "c"])
    settle(kernel, 10.0)
    assert manager.all_running()
    assert group.induced_count == 2


def test_group_rearms_after_full_recovery(kernel, manager, grouped):
    group = CorrelationGroup(grouped, ("a", "b"), induced_delay=0.2)
    grouped.inject_simple("a")
    settle(kernel, 2.0)
    manager.restart(["a", "b"])
    settle(kernel, 10.0)
    assert group.induced_count == 1
    grouped.inject_simple("b")  # fresh episode after a healthy interval
    settle(kernel, 2.0)
    assert group.induced_count == 2


def test_member_in_two_overlapping_groups(kernel, manager, grouped):
    """A shared member chains both groups, each firing at most once."""
    first = CorrelationGroup(grouped, ("a", "b"), induced_delay=0.2)
    second = CorrelationGroup(grouped, ("b", "c"), induced_delay=0.2)
    grouped.inject_simple("a")
    settle(kernel, 3.0)
    # a fells b (group 1); b's fall fells c (group 2); nothing re-fires.
    assert first.induced_count == 1
    assert second.induced_count == 1
    assert not manager.get("b").is_running
    assert not manager.get("c").is_running
    manager.restart(["a", "b", "c"])
    settle(kernel, 10.0)
    assert manager.all_running()
    assert first.induced_count == 1
    assert second.induced_count == 1


def test_group_enabled_flag_and_rearm(kernel, manager, grouped):
    group = CorrelationGroup(grouped, ("a", "b"), induced_delay=0.2)
    group.enabled = False
    grouped.inject_simple("a")
    settle(kernel, 2.0)
    assert group.induced_count == 0
    assert manager.get("b").is_running
    manager.restart(["a"])
    settle(kernel, 10.0)
    # The re-arming "ready" passed while disabled; rearm() resynchronises.
    group.enabled = True
    group.rearm()
    grouped.inject_simple("b")
    settle(kernel, 2.0)
    assert group.induced_count == 1


def test_group_probability_zero_never_fires(kernel, manager, grouped):
    group = CorrelationGroup(grouped, ("a", "b", "c"), induce_probability=0.0)
    grouped.inject_simple("b")
    settle(kernel, 3.0)
    assert group.induced_count == 0
    assert manager.get("a").is_running
    assert manager.get("c").is_running


def test_group_induced_failures_link_provoker(kernel, manager, grouped):
    CorrelationGroup(grouped, ("a", "b"), induced_delay=0.2)
    provoking = grouped.inject_simple("a")
    settle(kernel, 2.0)
    induced = [d for d in grouped.history if d.kind == "induced-group"]
    assert len(induced) == 1
    assert induced[0].manifest_component == "b"
    assert induced[0].induced_by == provoking.failure_id


# ----------------------------------------------------------------------
# aging
# ----------------------------------------------------------------------


@pytest.fixture
def aged(kernel, manager):
    for name in ("fedr", "pbcom"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    aging = DisconnectAging(
        injector, "fedr", "pbcom", mean_failures_to_age_out=3.0, fail_delay=0.5
    )
    return injector, aging


def test_each_disconnect_ages_victim(kernel, manager, aged):
    injector, aging = aged
    manager.fail("fedr")
    manager.restart(["fedr"])
    kernel.run(until=kernel.now + 5.0)
    assert aging.age >= 1 or aging.aged_out_count >= 1


def test_victim_eventually_ages_out(kernel, manager, aged):
    injector, aging = aged
    for _ in range(20):
        manager.fail("fedr")
        manager.restart(["fedr"])
        kernel.run(until=kernel.now + 3.0)
        if not manager.get("pbcom").is_running:
            manager.restart(["pbcom"])
            kernel.run(until=kernel.now + 3.0)
    assert aging.aged_out_count >= 2
    aging_failures = [d for d in injector.history if d.kind == "aging"]
    assert aging_failures
    assert all(d.manifest_component == "pbcom" for d in aging_failures)


def test_victim_restart_rejuvenates(kernel, manager, aged):
    _, aging = aged
    manager.fail("fedr")
    manager.restart(["fedr"])
    kernel.run(until=kernel.now + 0.1)
    age_before = aging.age
    manager.restart(["pbcom"])
    kernel.run(until=kernel.now + 5.0)
    assert aging.age == 0
    assert age_before >= 0


def test_aging_disabled_flag(kernel, manager, aged):
    injector, aging = aged
    aging.enabled = False
    for _ in range(10):
        manager.fail("fedr")
        manager.restart(["fedr"])
        kernel.run(until=kernel.now + 3.0)
    assert aging.aged_out_count == 0
    assert [d for d in injector.history if d.kind == "aging"] == []


def test_aging_validates_arguments(kernel, manager, aged):
    injector, _ = aged
    with pytest.raises(ValueError):
        DisconnectAging(injector, "x", "x")
    with pytest.raises(ValueError):
        DisconnectAging(injector, "x", "y", mean_failures_to_age_out=0.5)


def test_mean_disconnects_to_age_out(kernel, manager):
    """The geometric threshold's mean matches the configured value."""
    for name in ("p", "v"):
        spawn_simple(manager, name, work=0.2)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    aging = DisconnectAging(injector, "p", "v", mean_failures_to_age_out=4.0, fail_delay=0.1)
    disconnects = 0
    for _ in range(400):
        manager.fail("p")
        manager.restart(["p"])
        disconnects += 1
        kernel.run(until=kernel.now + 1.0)
        if not manager.get("v").is_running:
            manager.restart(["v"])
            kernel.run(until=kernel.now + 1.0)
    assert disconnects / max(aging.aged_out_count, 1) == pytest.approx(4.0, rel=0.3)
