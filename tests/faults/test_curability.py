"""Tests for curability profiles (the paper's f_ci distributions)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultModelError
from repro.faults.curability import CurabilityProfile


def test_simple_profile_draw():
    profile = CurabilityProfile().set_simple("rtu")
    failure = profile.draw("rtu", random.Random(1), at=0.0)
    assert failure.cure_set == frozenset(["rtu"])


def test_alternatives_respect_probabilities():
    profile = CurabilityProfile().set_alternatives(
        "pbcom",
        [(0.7, ["pbcom"]), (0.3, ["pbcom", "fedr"])],
    )
    rng = random.Random(7)
    joint = sum(
        1
        for _ in range(5000)
        if profile.draw("pbcom", rng, at=0.0).cure_set == frozenset(["pbcom", "fedr"])
    )
    assert joint / 5000 == pytest.approx(0.3, abs=0.03)


def test_probabilities_must_sum_to_one():
    with pytest.raises(FaultModelError):
        CurabilityProfile().set_alternatives("a", [(0.5, ["a"])])


def test_negative_probability_rejected():
    with pytest.raises(FaultModelError):
        CurabilityProfile().set_alternatives("a", [(-0.5, ["a"]), (1.5, ["a"])])


def test_cure_set_must_include_manifest():
    with pytest.raises(FaultModelError):
        CurabilityProfile().set_alternatives("a", [(1.0, ["b"])])


def test_unknown_component_rejected():
    profile = CurabilityProfile()
    with pytest.raises(FaultModelError):
        profile.draw("ghost", random.Random(0), at=0.0)
    with pytest.raises(FaultModelError):
        profile.alternatives_for("ghost")


def test_components_listing():
    profile = CurabilityProfile().set_simple("a").set_simple("b")
    assert profile.components() == ["a", "b"]


def test_f_value_aggregation():
    profile = (
        CurabilityProfile()
        .set_alternatives("fedr", [(0.9, ["fedr"]), (0.1, ["fedr", "pbcom"])])
        .set_alternatives("pbcom", [(0.5, ["pbcom"]), (0.5, ["fedr", "pbcom"])])
    )
    assert profile.f_value(["fedr", "pbcom"]) == pytest.approx(0.5 * 0.1 + 0.5 * 0.5)
    assert profile.f_value(["fedr"]) == pytest.approx(0.45)
    assert profile.f_value(["ghost"]) == 0.0


@given(
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=50, deadline=None)
def test_draw_always_one_of_configured_sets(p, seed):
    profile = CurabilityProfile().set_alternatives(
        "x", [(p, ["x"]), (1.0 - p, ["x", "y"])]
    )
    failure = profile.draw("x", random.Random(seed), at=0.0)
    assert failure.cure_set in (frozenset(["x"]), frozenset(["x", "y"]))
    assert failure.manifest_component == "x"
