"""Tests for the fault injector: cure semantics and re-manifestation."""

import pytest

from repro.faults.distributions import Deterministic, Exponential
from repro.faults.injector import FaultInjector, SteadyStateInjector
from repro.types import ProcessState

from tests.conftest import spawn_simple


@pytest.fixture
def booted(kernel, manager):
    for name in ("a", "b"):
        spawn_simple(manager, name, work=1.0)
    manager.start_all()
    kernel.run()
    return FaultInjector(kernel, manager, remanifest_delay=0.05)


def test_inject_fails_the_process(kernel, manager, booted):
    failure = booted.inject_simple("a")
    assert manager.get("a").state is ProcessState.FAILED
    assert booted.is_active(failure.failure_id)
    assert booted.history == [failure]


def test_covering_restart_cures(kernel, manager, booted):
    failure = booted.inject_simple("a")
    manager.restart(["a"])
    kernel.run()
    assert not booted.is_active(failure.failure_id)
    assert manager.get("a").is_running


def test_cure_emits_trace_and_listener(kernel, manager, booted):
    cures = []
    booted.on_cure(lambda d, t: cures.append((d.failure_id, t)))
    failure = booted.inject_simple("a")
    manager.restart(["a"])
    kernel.run()
    assert cures == [(failure.failure_id, kernel.now)]
    assert kernel.trace.first("failure_cured", failure_id=failure.failure_id)


def test_insufficient_restart_remanifests(kernel, manager, booted):
    failure = booted.inject_joint("a", ["a", "b"])
    manager.restart(["a"])  # does not cover b
    kernel.run()
    assert booted.is_active(failure.failure_id)
    assert manager.get("a").state is ProcessState.FAILED  # re-manifested
    assert kernel.trace.first("failure_remanifested", failure_id=failure.failure_id)


def test_joint_restart_cures_joint_failure(kernel, manager, booted):
    failure = booted.inject_joint("a", ["a", "b"])
    manager.restart(["a", "b"])
    kernel.run()
    assert not booted.is_active(failure.failure_id)
    assert manager.all_running()


def test_escalation_after_remanifest_cures(kernel, manager, booted):
    failure = booted.inject_joint("a", ["a", "b"])
    manager.restart(["a"])
    kernel.run()  # re-manifests
    manager.restart(["a", "b"])
    kernel.run()
    assert not booted.is_active(failure.failure_id)


def test_multiple_active_failures_same_component(kernel, manager, booted):
    joint = booted.inject_joint("a", ["a", "b"])
    manager.restart(["a"])
    kernel.run(until=kernel.now + 1.01)  # ready; remanifest pending
    # A second, self-curable failure arrives conceptually (e.g. aging).
    simple = booted.inject_simple("a", kind="aging")
    manager.restart(["a"])
    kernel.run()
    assert not booted.is_active(simple.failure_id)  # covered
    assert booted.is_active(joint.failure_id)  # still needs b


def test_active_failures_listing(kernel, manager, booted):
    f1 = booted.inject_simple("a")
    f2 = booted.inject_simple("b")
    assert {d.failure_id for d in booted.active_failures} == {f1.failure_id, f2.failure_id}


def test_steady_state_injects_at_configured_rate(kernel, manager):
    process = spawn_simple(manager, "s", work=0.5)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    SteadyStateInjector(injector, {"s": Deterministic(10.0)})
    # Repair loop: restart whenever it fails.
    manager.subscribe(
        lambda p, e: kernel.call_soon(manager.restart, ["s"]) if e == "down:SIGKILL" else None
    )
    kernel.run(until=kernel.now + 100.0)
    # ~10s up + ~0.5s restart per cycle over 100s -> ~9 failures.
    assert 7 <= len(injector.history) <= 10


def test_steady_state_stop_disarms(kernel, manager):
    spawn_simple(manager, "s", work=0.5)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    steady = SteadyStateInjector(injector, {"s": Deterministic(5.0)})
    steady.stop()
    kernel.run(until=kernel.now + 50.0)
    assert injector.history == []


def test_steady_state_timer_invalidated_by_manual_kill(kernel, manager):
    """A manual kill+restart must not leave a stale lifetime timer firing."""
    spawn_simple(manager, "s", work=0.5)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    SteadyStateInjector(injector, {"s": Deterministic(10.0)})
    kernel.run(until=kernel.now + 5.0)
    manager.restart(["s"])  # timer re-arms from the new ready instant
    kernel.run(until=kernel.now + 6.0)  # old timer (t+10) would fire now
    assert injector.history == []  # new timer fires at ready+10 instead
    kernel.run(until=kernel.now + 5.0)
    assert len(injector.history) == 1


def test_exponential_steady_mttf_converges(kernel, manager):
    spawn_simple(manager, "s", work=0.2)
    manager.start_all()
    kernel.run()
    injector = FaultInjector(kernel, manager)
    SteadyStateInjector(injector, {"s": Exponential(50.0)})
    manager.subscribe(
        lambda p, e: kernel.call_soon(manager.restart, ["s"]) if e == "down:SIGKILL" else None
    )
    kernel.run(until=kernel.now + 20000.0)
    count = len(injector.history)
    observed_mttf = 20000.0 / count - 0.2
    assert observed_mttf == pytest.approx(50.0, rel=0.15)
