"""Tests for lifetime distributions, including hypothesis properties."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultModelError
from repro.faults.distributions import Deterministic, Exponential, LogNormal, Weibull

ALL_DISTS = [
    lambda mean: Deterministic(mean),
    lambda mean: Exponential(mean),
    lambda mean: Weibull(mean, shape=1.5),
    lambda mean: LogNormal(mean, cov=0.1),
]


def test_deterministic_returns_mean():
    dist = Deterministic(5.0)
    rng = random.Random(0)
    assert all(dist.sample(rng) == 5.0 for _ in range(10))
    assert dist.coefficient_of_variation() == 0.0


def test_exponential_mean_converges():
    dist = Exponential(100.0)
    rng = random.Random(1)
    samples = [dist.sample(rng) for _ in range(20000)]
    assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.05)


def test_exponential_cov_is_one():
    assert Exponential(10.0).coefficient_of_variation() == 1.0


def test_weibull_mean_converges():
    dist = Weibull(50.0, shape=2.0)
    rng = random.Random(2)
    samples = [dist.sample(rng) for _ in range(20000)]
    assert sum(samples) / len(samples) == pytest.approx(50.0, rel=0.05)


def test_weibull_cov_matches_theory():
    shape = 2.0
    g1 = math.gamma(1.0 + 1.0 / shape)
    g2 = math.gamma(1.0 + 2.0 / shape)
    expected = math.sqrt(g2 / g1 ** 2 - 1.0)
    assert Weibull(1.0, shape=shape).coefficient_of_variation() == pytest.approx(expected)


def test_lognormal_mean_and_cov_converge():
    dist = LogNormal(30.0, cov=0.2)
    rng = random.Random(3)
    samples = [dist.sample(rng) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    std = math.sqrt(sum((s - mean) ** 2 for s in samples) / len(samples))
    assert mean == pytest.approx(30.0, rel=0.03)
    assert std / mean == pytest.approx(0.2, rel=0.1)


def test_lognormal_zero_cov_is_deterministic():
    dist = LogNormal(7.0, cov=0.0)
    assert dist.sample(random.Random(0)) == 7.0


@pytest.mark.parametrize("factory", ALL_DISTS)
def test_invalid_mean_rejected(factory):
    with pytest.raises(FaultModelError):
        factory(0.0)
    with pytest.raises(FaultModelError):
        factory(-1.0)


def test_invalid_shape_and_cov_rejected():
    with pytest.raises(FaultModelError):
        Weibull(1.0, shape=0.0)
    with pytest.raises(FaultModelError):
        LogNormal(1.0, cov=-0.1)


@pytest.mark.parametrize("factory", ALL_DISTS)
@given(mean=st.floats(min_value=0.01, max_value=1e6), seed=st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_samples_always_positive(factory, mean, seed):
    dist = factory(mean)
    rng = random.Random(seed)
    for _ in range(20):
        assert dist.sample(rng) > 0.0


@pytest.mark.parametrize("factory", ALL_DISTS)
def test_sampling_is_seed_deterministic(factory):
    dist = factory(12.0)
    a = [dist.sample(random.Random(9)) for _ in range(5)]
    b = [dist.sample(random.Random(9)) for _ in range(5)]
    assert a == b
