"""Unit tests for the session-store fault model itself.

The integration behavior (how :class:`SessionStore` reacts to a model)
lives in ``tests/mercury/test_session_store.py``; these tests pin the
model's own contract — outage windows, the retry-ladder arithmetic,
rate-limited timeout events, the write-corruption lottery, and its
determinism under the named RNG stream.
"""

import pytest

from repro.faults.store_faults import (
    StoreError,
    StoreFaultModel,
    StoreUnavailableError,
)
from repro.obs import events as ev
from repro.sim.kernel import Kernel


class _Capture:
    def __init__(self, kernel, kinds):
        self.records = []
        kernel.trace.subscribe(
            lambda record: record.kind in kinds and self.records.append(record)
        )


def test_healthy_model_is_silent_and_free():
    kernel = Kernel(seed=1)
    capture = _Capture(kernel, {ev.STORE_CRASHED, ev.STORE_RECOVERED})
    model = StoreFaultModel(kernel)
    assert model.available
    assert model.down_mode is None
    model.check("save", "ses")  # no outage: no raise, no event
    assert model.write_outcome() == "ok"  # zero probabilities: no RNG draw
    kernel.run(until=5.0)
    assert capture.records == []
    assert model.counters() == {
        "outages": 0, "ops_failed": 0, "writes_torn": 0, "writes_corrupted": 0,
    }


def test_crash_window_fails_fast_with_backoff_only():
    kernel = Kernel(seed=1)
    model = StoreFaultModel(kernel)
    model.crash(10.0)
    assert model.down_mode == "crash"
    with pytest.raises(StoreUnavailableError) as excinfo:
        model.check("save", "ses")
    # Fail-fast: only the ladder's backoff gaps are burned.
    assert excinfo.value.waited == pytest.approx(sum(model.retry_backoff))
    assert excinfo.value.op == "save"
    assert excinfo.value.component == "ses"
    assert isinstance(excinfo.value, StoreError)


def test_hang_window_burns_full_per_op_timeouts():
    kernel = Kernel(seed=1)
    model = StoreFaultModel(kernel)
    model.hang(10.0)
    assert model.down_mode == "hang"
    with pytest.raises(StoreUnavailableError) as excinfo:
        model.check("load", "str")
    expected = sum(model.retry_backoff) + model.op_timeout * (
        len(model.retry_backoff) + 1
    )
    assert excinfo.value.waited == pytest.approx(expected)


def test_outage_window_closes_on_schedule():
    kernel = Kernel(seed=1)
    capture = _Capture(kernel, {ev.STORE_CRASHED, ev.STORE_RECOVERED})
    model = StoreFaultModel(kernel)
    model.crash(4.0)
    kernel.run(until=3.9)
    assert not model.available
    kernel.run(until=5.0)
    assert model.available and model.down_mode is None
    model.check("save", "ses")  # healthy again: silent
    kinds = [record.kind for record in capture.records]
    assert kinds == [ev.STORE_CRASHED, ev.STORE_RECOVERED]
    assert capture.records[0].data["mode"] == "crash"


def test_overlapping_outages_extend_not_shorten():
    kernel = Kernel(seed=1)
    capture = _Capture(kernel, {ev.STORE_RECOVERED})
    model = StoreFaultModel(kernel)
    model.crash(5.0)
    kernel.run(until=2.0)
    model.hang(10.0)  # supersedes: window now ends at t=12
    kernel.run(until=6.0)
    assert not model.available and model.down_mode == "hang"
    assert capture.records == []  # the first window's end was superseded
    kernel.run(until=13.0)
    assert model.available
    assert len(capture.records) == 1
    assert model.outages == 2


def test_timeout_events_rate_limited_per_caller_per_outage():
    kernel = Kernel(seed=1)
    capture = _Capture(kernel, {ev.STORE_OP_TIMEOUT})
    model = StoreFaultModel(kernel)
    model.crash(5.0)
    for _ in range(4):
        with pytest.raises(StoreUnavailableError):
            model.check("save", "ses")
    with pytest.raises(StoreUnavailableError):
        model.check("load", "ses")  # distinct op: its own event
    assert len(capture.records) == 2
    assert model.ops_failed == 5
    # A fresh outage window re-arms the limiter.
    kernel.run(until=6.0)
    model.crash(5.0)
    with pytest.raises(StoreUnavailableError):
        model.check("save", "ses")
    assert len(capture.records) == 3


def test_write_lottery_draws_and_counts():
    kernel = Kernel(seed=1)
    model = StoreFaultModel(
        kernel, torn_write_probability=0.5, corrupt_write_probability=0.5
    )
    outcomes = {model.write_outcome() for _ in range(50)}
    assert outcomes == {"torn", "corrupt"}
    assert model.writes_torn + model.writes_corrupted == 50


def test_garble_torn_truncates_and_corrupt_flips():
    kernel = Kernel(seed=1)
    model = StoreFaultModel(kernel)
    blob = '{"cid": 7, "peer": "str"}'
    torn = model.garble(blob, "torn")
    assert len(torn) < len(blob) and blob.startswith(torn)
    corrupt = model.garble(blob, "corrupt")
    assert len(corrupt) == len(blob) and corrupt != blob
    assert model.garble("", "torn") == "\x00"


def test_same_seed_same_draws():
    def draws(seed):
        kernel = Kernel(seed=seed)
        model = StoreFaultModel(
            kernel, torn_write_probability=0.3, corrupt_write_probability=0.1
        )
        return [model.write_outcome() for _ in range(30)] + [
            model.garble("abcdefgh", "torn") for _ in range(5)
        ]

    assert draws(3) == draws(3)
    assert draws(3) != draws(4)


def test_constructor_validation():
    kernel = Kernel(seed=1)
    with pytest.raises(ValueError, match="op_timeout"):
        StoreFaultModel(kernel, op_timeout=0.0)
    with pytest.raises(ValueError, match="probabilities"):
        StoreFaultModel(
            kernel, torn_write_probability=0.7, corrupt_write_probability=0.7
        )
    model = StoreFaultModel(kernel)
    with pytest.raises(ValueError, match="duration"):
        model.crash(0.0)
