"""Standalone perf session: time the simulator's five hot paths.

Mirrors ``benchmarks/test_perf_simulator.py`` without the pytest harness so
CI can produce a machine-readable perf trajectory::

    PYTHONPATH=src python tools/bench.py --output BENCH_5.json
    PYTHONPATH=src python tools/bench.py --baseline BENCH_4.json --output BENCH_5.json

Metrics:

* ``kernel_events_per_sec`` — dispatched callbacks through
  :meth:`Kernel.run` under a station-shaped timer mix: 50 staggered
  interval timers (the FD/REC/steady-state cadences) plus a 20-callback
  same-instant burst each tick (a restart batch's fan-out), both riding
  the slab/batch dispatch path;
* ``bus_roundtrips_per_sec`` — ping round trips through the XML command
  bus (encode → broker envelope-route → templated reply → decode);
* ``bus_mixed_msgs_per_sec`` — a mixed-traffic bus profile shaped like an
  availability run: mostly broker pings, plus client-to-client pings,
  commands with parameters, and telemetry frames (the latter two exercise
  the full-parse fallback, so this metric tracks *both* bus paths);
* ``station_boot_seconds`` — wall-clock to boot the full-fidelity tree-V
  station to all-RUNNING plus settle;
* ``station_snapshot_restore_seconds`` — wall-clock to fork one campaign
  cell from the warmed tree-V template (deepcopy + RNG rebase), the
  per-cell setup cost that replaces ``station_boot_seconds`` when the
  snapshot cache is active;
* ``fleet_stations_per_sec`` / ``fleet_events_per_sec`` — fleet-campaign
  throughput: a sharded 32-station correlated-wave fleet run end to end,
  divided by wall clock (stations simulated per second; kernel events per
  second across every member);
* ``fleet_station_boot_seconds`` / ``fleet_station_setup_seconds`` — a
  full-supervisor fleet station booted fresh, versus the per-station cost
  through the shared template store (one blob unpickle amortised over a
  shard plus a deepcopy + rebase each).  Their ratio is the template-store
  amortisation factor;
* ``workload_requests_per_sec`` — user requests served per wall-clock
  second by the traffic plane (``repro.workload``) against a healthy
  tree-V station: open-loop arrivals, session chains, reply matching and
  the timeout ladder all inside the timed region.  This is the headline
  number for the user-effects layer — how much synthetic user traffic a
  campaign cell can absorb per core-second.

``--baseline`` embeds the previous run's *own* results (its ``generated``
/ ``host`` / ``metrics`` keys only) so a single artifact records the
before/after pair.  Chained runs stay depth-1: run N never embeds run
N-1's embedded baseline.

``--smoke`` runs reduced-rep benchmarks and compares each smoke metric
against the checked-in baseline artifact (``--baseline``, default
``BENCH_5.json``) under a per-metric regression budget; any breach fails
loudly (exit 1).  Set ``REPRO_BENCH_SMOKE_SKIP=1`` to report without
failing on slow or heavily loaded machines.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time


def _collected(measure):
    """Run one measurement with a clean GC slate.

    Each benchmark leaves a pile of short-lived garbage behind (dead
    kernels, stations, trace buffers); without a collection between
    measurements that pile drives generational GC cycles *inside* the
    next bench's timed region, depressing it by 20-30% depending on
    what ran before it.  Collecting at the boundary makes every metric
    independent of measurement order.
    """
    gc.collect()
    return measure()


def bench_kernel_events(n: int = 200_000, reps: int = 7) -> float:
    """Dispatched callbacks/s through a station-shaped timer mix.

    50 repeating interval timers at near-1 ms periods model the periodic
    control plane (detector rounds, recoverer watchdogs, steady-state
    injectors); each tick fans a 20-callback burst out half a period
    ahead, modelling a ping round's replies arriving together — which is
    exactly the shape the transport's FIFO clamp produces.  Interval
    timers re-arm in place (one heap push, zero allocation per firing)
    and each burst shares one slab bucket, so this measures the batch
    dispatch paths a live station actually leans on.
    """
    from repro.sim.kernel import Kernel

    timers, burst = 50, 20
    best = float("inf")
    for _ in range(reps):
        kernel = Kernel(seed=1)
        count = [0]

        def deliver() -> None:
            count[0] += 1

        def tick() -> None:
            count[0] += 1
            when = kernel.now + 0.0005
            for _ in range(burst):
                kernel.schedule_at(when, deliver)

        for i in range(timers):
            kernel.schedule_interval(0.001 + i * 1e-6, tick)

        rounds = n // (timers * (burst + 1))
        start = time.perf_counter()
        kernel.run(until=rounds * 0.001 + 0.01)
        elapsed = time.perf_counter() - start
        assert count[0] >= n * 0.95
        best = min(best, elapsed / count[0])
    return 1.0 / best


def bench_bus_roundtrips(n: int = 1_000, reps: int = 5) -> float:
    from repro.bus.broker import BusBroker
    from repro.bus.client import BusClient
    from repro.procmgr.manager import ProcessManager
    from repro.procmgr.process import ProcessSpec, constant_work
    from repro.sim.kernel import Kernel
    from repro.transport.network import Network
    from repro.xmlcmd.commands import PingRequest

    kernel = Kernel(seed=2)
    network = Network(kernel)
    manager = ProcessManager(kernel)
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.1), lambda p: BusBroker(p, network))
    )
    manager.start("mbus")
    kernel.run()
    client = BusClient(kernel, network, "perf")
    client.connect()
    kernel.run(until=kernel.now + 1.0)

    seq = [0]
    best = float("inf")
    for _ in range(reps):
        received = len(client.received)
        start = time.perf_counter()
        for _ in range(n):
            seq[0] += 1
            client.send(PingRequest("perf", "mbus", seq[0]))
        kernel.run(until=kernel.now + 5.0)
        best = min(best, time.perf_counter() - start)
        assert len(client.received) - received == n
    return n / best


def bench_bus_mixed(n: int = 1_000, reps: int = 5) -> float:
    """Messages/s through the broker under an availability-shaped mix.

    Per 10 messages: 7 broker pings (fast path), 1 client-to-client ping
    (fast route, raw forwarded untouched), 1 command with params and 1
    telemetry frame (full-parse fallback at the receiving client; the
    command's children also force the broker's envelope-scan fallback).
    """
    from repro.bus.broker import BusBroker
    from repro.bus.client import BusClient
    from repro.procmgr.manager import ProcessManager
    from repro.procmgr.process import ProcessSpec, constant_work
    from repro.sim.kernel import Kernel
    from repro.transport.network import Network
    from repro.xmlcmd.commands import CommandMessage, PingRequest, TelemetryFrame

    kernel = Kernel(seed=4)
    network = Network(kernel)
    manager = ProcessManager(kernel)
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.1), lambda p: BusBroker(p, network))
    )
    manager.start("mbus")
    kernel.run()
    sender = BusClient(kernel, network, "mix-a")
    receiver = BusClient(kernel, network, "mix-b")
    sender.connect()
    receiver.connect()
    kernel.run(until=kernel.now + 1.0)

    command = CommandMessage(
        "mix-a", "mix-b", "track", {"azimuth": "143.2", "elevation": "67.9"}
    )
    frame = TelemetryFrame("mix-a", "mix-b", "opal", "p42", 4800)
    seq = [0]
    best = float("inf")
    for _ in range(reps):
        before = len(sender.received) + len(receiver.received)
        start = time.perf_counter()
        for i in range(n):
            seq[0] += 1
            slot = i % 10
            if slot < 7:
                sender.send(PingRequest("mix-a", "mbus", seq[0]))
            elif slot < 8:
                sender.send(PingRequest("mix-a", "mix-b", seq[0]))
            elif slot < 9:
                sender.send(command)
            else:
                sender.send(frame)
        kernel.run(until=kernel.now + 5.0)
        best = min(best, time.perf_counter() - start)
        assert len(sender.received) + len(receiver.received) - before == n
    return n / best


def bench_station_boot(reps: int = 5) -> float:
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_v

    best = float("inf")
    for _ in range(reps):
        station = MercuryStation(tree=tree_v(), seed=3)
        start = time.perf_counter()
        station.boot()
        best = min(best, time.perf_counter() - start)
    return best


def bench_station_snapshot(reps: int = 5) -> float:
    """Per-cell setup seconds with the snapshot cache active.

    Times :func:`repro.experiments.snapshot.warmed_station` on a warm
    template: one deepcopy of the booted tree-V station plus the per-cell
    RNG rebase.  The template boot itself is paid once, outside the timed
    region — exactly the amortisation the campaign runner sees.
    """
    from repro.experiments import snapshot as snap
    from repro.mercury.config import PAPER_CONFIG
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_v

    tree = tree_v()
    shape = snap.station_shape("bench", tree, PAPER_CONFIG)

    def build(boot_seed: int) -> MercuryStation:
        return MercuryStation(tree=tree, config=PAPER_CONFIG, seed=boot_seed)

    snap.warmed_station(shape, build, MercuryStation.boot, 0, snapshot=True)
    best = float("inf")
    for i in range(reps):
        start = time.perf_counter()
        snap.warmed_station(shape, build, MercuryStation.boot, i + 1, snapshot=True)
        best = min(best, time.perf_counter() - start)
    snap.clear_templates()  # no cross-benchmark (or cross-run) state
    return best


def bench_fleet(
    size: int = 32, horizon: float = 240.0, reps: int = 3
) -> "tuple[float, float]":
    """Fleet throughput: (stations simulated/s, kernel events/s).

    Runs one sharded fleet cell (correlated waves on, 4 shards, serial
    execution — sharding is bit-identical, so the serial number is the
    honest single-core figure) and divides by wall clock.  Stations/s is
    the capacity-planning number: how much fleet one core buys per second
    of real time at the default horizon.
    """
    from repro.experiments import snapshot as snap
    from repro.experiments.fleet import FleetSpec, run_fleet_cell
    from repro.experiments.template_store import STORE

    spec = FleetSpec(
        size=size,
        horizon_s=horizon,
        seed=11,
        wave_interval_s=120.0,
        wave_drop=0.2,
        drain_s=60.0,
    )
    best = float("inf")
    events = 0
    for _ in range(reps):
        snap.clear_templates()
        start = time.perf_counter()
        result = run_fleet_cell(spec, shards=4)
        best = min(best, time.perf_counter() - start)
        events = result.events_executed
        assert result.ok, "fleet bench run violated invariants"
    snap.clear_templates()
    STORE.clear()
    return size / best, events / best


def bench_fleet_setup(stations: int = 16) -> "tuple[float, float]":
    """(fresh-boot seconds, shared-template per-station setup seconds).

    The second number is what a fleet shard actually pays per station:
    one blob unpickle amortised over the shard's stations plus a deepcopy
    and RNG rebase each.  The first is what it would pay without the
    shared store — the ratio is the template-store amortisation factor
    (the PR acceptance bar is >= 3x).
    """
    from repro.experiments import snapshot as snap
    from repro.experiments.fleet import (
        FleetSpec,
        _fleet_shape,
        _StationBuild,
        station_seed,
    )
    from repro.experiments.template_store import STORE
    from repro.mercury.config import PAPER_CONFIG

    spec = FleetSpec()
    builder = _StationBuild(spec, PAPER_CONFIG)
    shape = _fleet_shape(spec, PAPER_CONFIG)

    snap.clear_templates()
    STORE.clear()
    start = time.perf_counter()
    template = builder.build(snap.boot_seed(shape))
    builder.warm(template)
    boot_seconds = time.perf_counter() - start
    snap._TEMPLATES[shape] = template
    snap.publish_template(shape, builder.build, builder.warm)
    blobs = STORE.blobs()

    # Worker side: fresh per-process template cache, blob table installed.
    snap.clear_templates()
    STORE.clear()
    STORE.install(blobs)
    start = time.perf_counter()
    for index in range(stations):
        snap.warmed_station(
            shape, builder.build, builder.warm, station_seed(spec.seed, index)
        )
    setup_seconds = (time.perf_counter() - start) / stations

    snap.clear_templates()
    STORE.clear()
    return boot_seconds, setup_seconds


def bench_workload(horizon: float = 60.0, reps: int = 3) -> float:
    """User requests served per wall-clock second (healthy station).

    Boots a tree-V station outside the timed region, then runs the whole
    workload plane — Poisson arrivals, session chains, bus round trips,
    reply matching, timeout bookkeeping — for ``horizon`` simulated
    seconds.  On a healthy station every request is served, so the
    metric is pure throughput with no loss-path noise.
    """
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_v
    from repro.workload.generator import WorkloadSpec
    from repro.workload.plane import WorkloadPlane

    best = float("inf")
    for rep in range(reps):
        station = MercuryStation(tree=tree_v(), seed=5 + rep)
        station.boot()
        plane = WorkloadPlane(station, WorkloadSpec(session_rate=50.0))
        start = time.perf_counter()
        effects = plane.run(horizon)
        elapsed = time.perf_counter() - start
        assert effects.requests_failed == 0, "healthy station dropped requests"
        assert effects.requests_ok > 0
        best = min(best, elapsed / effects.requests_ok)
    return 1.0 / best


#: ``--smoke`` regression gates: metric name -> (reduced-rep measurement,
#: higher-is-better, allowed fractional regression).  Throughputs get the
#: historical 20% budget (fleet runs are longer-wall-clock and steadier,
#: but carry more machinery, so 25%); the snapshot-restore wall clock is a
#: ~1 ms measurement and CI machines are noisy, so it gets 35% — re-pinned
#: from the original 50% after the ComponentTiming deepcopy regression was
#: fixed and the BENCH_5 baseline recorded the recovered number.  The
#: per-station fleet setup is equally tiny, hence 50%.
def _smoke_checks():
    return [
        ("bus_roundtrips_per_sec", lambda: bench_bus_roundtrips(n=500, reps=3), True, 0.20),
        ("bus_mixed_msgs_per_sec", lambda: bench_bus_mixed(n=500, reps=3), True, 0.20),
        ("station_snapshot_restore_seconds", lambda: bench_station_snapshot(reps=3), False, 0.35),
        ("fleet_stations_per_sec", lambda: bench_fleet(size=8, horizon=120.0, reps=1)[0], True, 0.25),
        ("fleet_station_setup_seconds", lambda: bench_fleet_setup(stations=8)[1], False, 0.50),
        ("workload_requests_per_sec", lambda: bench_workload(horizon=30.0, reps=1), True, 0.25),
    ]


def _run_smoke(parser, baseline_path: str) -> int:
    """Reduced-rep regression gate for ``make bench-smoke``."""
    try:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        reference = dict(baseline["metrics"])
    except (OSError, ValueError, KeyError) as exc:
        parser.error(f"cannot read smoke baseline {baseline_path!r}: {exc}")

    bench_bus_roundtrips(n=200, reps=1)  # warmup
    # Two failure classes: *timing* regressions bow to the
    # REPRO_BENCH_SMOKE_SKIP escape hatch (slow or loaded machines lie
    # about throughput), but a bench that errors out or a metric missing
    # from the baseline artifact is a correctness problem and fails
    # regardless — the skip knob must never mask a broken benchmark.
    regressions = []
    broken = []
    for name, measure, higher_is_better, budget in _smoke_checks():
        ref = reference.get(name)
        if ref is None:
            print(
                f"bench-smoke: {name}: MISSING from baseline {baseline_path}"
                " (re-run `make bench` to record it)"
            )
            broken.append(name)
            continue
        ref = float(ref)
        try:
            current = _collected(measure)
        except Exception as exc:  # noqa: BLE001 - report, fail, keep measuring
            print(f"bench-smoke: {name}: ERROR {exc!r}")
            broken.append(name)
            continue
        # Normalised so 1.0 is parity and smaller is worse for both
        # orientations; the gate is ratio >= 1 - budget.
        ratio = (current / ref) if higher_is_better else (ref / current)
        verdict = "OK" if ratio >= 1.0 - budget else "FAIL"
        print(
            f"bench-smoke: {name} {current:.6g} vs baseline {ref:.6g}"
            f" ({ratio:.2f}x, budget {budget:.0%}): {verdict}"
        )
        if verdict == "FAIL":
            regressions.append(name)
    if broken:
        print(
            f"bench-smoke: FAIL — {', '.join(broken)} broken or missing"
            " (not skippable)"
        )
        return 1
    if not regressions:
        print(f"bench-smoke: OK (all metrics within budget, {baseline_path})")
        return 0
    if os.environ.get("REPRO_BENCH_SMOKE_SKIP", "") not in ("", "0"):
        print(
            "bench-smoke: REGRESSION ignored (REPRO_BENCH_SMOKE_SKIP set):"
            f" {', '.join(regressions)}"
        )
        return 0
    print(
        f"bench-smoke: FAIL — {', '.join(regressions)} regressed past budget"
        " (set REPRO_BENCH_SMOKE_SKIP=1 to ignore on slow machines)"
    )
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="write JSON here (default stdout)")
    parser.add_argument(
        "--baseline", default=None,
        help="embed a previous run's generated/host/metrics as the"
        " 'baseline' key (with --smoke: the artifact to regress against,"
        " default BENCH_6.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced-rep benchmarks; fail on a per-metric regression"
        " budget breach vs the baseline artifact",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _run_smoke(parser, args.baseline or "BENCH_6.json")

    baseline = None
    if args.baseline:
        # Read up front: fail before a minute of measurement, not after.
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline!r}: {exc}")

    # Warmup pass first: interpreter caches and CPU frequency boost settle,
    # otherwise the first metric measured is penalized.
    bench_kernel_events(n=50_000, reps=3)
    # Measurement order matters on quota-throttled CI boxes: the historical
    # five metrics run first, in their historical order, so their numbers
    # stay comparable with earlier artifacts; the fleet metrics (new in
    # BENCH_5) append after.
    metrics = {
        "kernel_events_per_sec": round(_collected(lambda: bench_kernel_events(reps=10)), 1),
        "bus_roundtrips_per_sec": round(_collected(bench_bus_roundtrips), 1),
        "bus_mixed_msgs_per_sec": round(_collected(bench_bus_mixed), 1),
        "station_boot_seconds": round(_collected(bench_station_boot), 6),
        "station_snapshot_restore_seconds": round(_collected(bench_station_snapshot), 6),
    }
    fleet_stations, fleet_events = _collected(bench_fleet)
    fleet_boot, fleet_setup = _collected(bench_fleet_setup)
    metrics.update(
        {
            "fleet_stations_per_sec": round(fleet_stations, 1),
            "fleet_events_per_sec": round(fleet_events, 1),
            "fleet_station_boot_seconds": round(fleet_boot, 6),
            "fleet_station_setup_seconds": round(fleet_setup, 6),
            # New in BENCH_6: the user-traffic plane's headline number.
            "workload_requests_per_sec": round(_collected(bench_workload), 1),
        }
    )
    payload = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
        "metrics": metrics,
    }
    if baseline is not None:
        # Carry only the previous run's own results.  Embedding the file
        # verbatim would nest recursively across chained runs (run N
        # holding run N-1 holding run N-2 ...); every artifact stays
        # depth-1 instead.
        payload["baseline"] = {
            key: baseline.get(key) for key in ("generated", "host", "metrics")
        }

    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
