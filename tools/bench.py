"""Standalone perf session: time the simulator's three hot paths.

Mirrors ``benchmarks/test_perf_simulator.py`` without the pytest harness so
CI can produce a machine-readable perf trajectory::

    PYTHONPATH=src python tools/bench.py --output BENCH_1.json
    PYTHONPATH=src python tools/bench.py --baseline seed.json --output BENCH_1.json

Metrics:

* ``kernel_events_per_sec`` — schedule+dispatch cycles through
  :meth:`Kernel.run` (10k self-rescheduling timers);
* ``bus_roundtrips_per_sec`` — full parse→route→serialize ping round
  trips through the XML command bus;
* ``station_boot_seconds`` — wall-clock to boot the full-fidelity tree-V
  station to all-RUNNING plus settle.

``--baseline`` embeds a previous run (e.g. from the seed commit) so a
single artifact records the before/after pair.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time


def bench_kernel_events(n: int = 10_000, reps: int = 7) -> float:
    from repro.sim.kernel import Kernel

    best = float("inf")
    for _ in range(reps):
        kernel = Kernel(seed=1)
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < n:
                kernel.call_after(0.001, tick)

        kernel.call_after(0.001, tick)
        start = time.perf_counter()
        kernel.run()
        best = min(best, time.perf_counter() - start)
        assert count[0] == n
    return n / best


def bench_bus_roundtrips(n: int = 1_000, reps: int = 5) -> float:
    from repro.bus.broker import BusBroker
    from repro.bus.client import BusClient
    from repro.procmgr.manager import ProcessManager
    from repro.procmgr.process import ProcessSpec, constant_work
    from repro.sim.kernel import Kernel
    from repro.transport.network import Network
    from repro.xmlcmd.commands import PingRequest

    kernel = Kernel(seed=2)
    network = Network(kernel)
    manager = ProcessManager(kernel)
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.1), lambda p: BusBroker(p, network))
    )
    manager.start("mbus")
    kernel.run()
    client = BusClient(kernel, network, "perf")
    client.connect()
    kernel.run(until=kernel.now + 1.0)

    seq = [0]
    best = float("inf")
    for _ in range(reps):
        received = len(client.received)
        start = time.perf_counter()
        for _ in range(n):
            seq[0] += 1
            client.send(PingRequest("perf", "mbus", seq[0]))
        kernel.run(until=kernel.now + 5.0)
        best = min(best, time.perf_counter() - start)
        assert len(client.received) - received == n
    return n / best


def bench_station_boot(reps: int = 5) -> float:
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_v

    best = float("inf")
    for _ in range(reps):
        station = MercuryStation(tree=tree_v(), seed=3)
        start = time.perf_counter()
        station.boot()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="write JSON here (default stdout)")
    parser.add_argument(
        "--baseline", default=None,
        help="embed a previous run's JSON as the 'baseline' key",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        # Read up front: fail before a minute of measurement, not after.
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline!r}: {exc}")

    # Warmup pass first: interpreter caches and CPU frequency boost settle,
    # otherwise the first metric measured is penalized.
    bench_kernel_events(reps=3)
    metrics = {
        "kernel_events_per_sec": round(bench_kernel_events(reps=10), 1),
        "bus_roundtrips_per_sec": round(bench_bus_roundtrips(), 1),
        "station_boot_seconds": round(bench_station_boot(), 6),
    }
    payload = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
        "metrics": metrics,
    }
    if baseline is not None:
        payload["baseline"] = baseline

    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
