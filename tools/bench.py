"""Standalone perf session: time the simulator's five hot paths.

Mirrors ``benchmarks/test_perf_simulator.py`` without the pytest harness so
CI can produce a machine-readable perf trajectory::

    PYTHONPATH=src python tools/bench.py --output BENCH_4.json
    PYTHONPATH=src python tools/bench.py --baseline BENCH_3.json --output BENCH_4.json

Metrics:

* ``kernel_events_per_sec`` — dispatched callbacks through
  :meth:`Kernel.run` under a station-shaped timer mix: 50 staggered
  interval timers (the FD/REC/steady-state cadences) plus a 20-callback
  same-instant burst each tick (a restart batch's fan-out), both riding
  the slab/batch dispatch path;
* ``bus_roundtrips_per_sec`` — ping round trips through the XML command
  bus (encode → broker envelope-route → templated reply → decode);
* ``bus_mixed_msgs_per_sec`` — a mixed-traffic bus profile shaped like an
  availability run: mostly broker pings, plus client-to-client pings,
  commands with parameters, and telemetry frames (the latter two exercise
  the full-parse fallback, so this metric tracks *both* bus paths);
* ``station_boot_seconds`` — wall-clock to boot the full-fidelity tree-V
  station to all-RUNNING plus settle;
* ``station_snapshot_restore_seconds`` — wall-clock to fork one campaign
  cell from the warmed tree-V template (deepcopy + RNG rebase), the
  per-cell setup cost that replaces ``station_boot_seconds`` when the
  snapshot cache is active.

``--baseline`` embeds the previous run's *own* results (its ``generated``
/ ``host`` / ``metrics`` keys only) so a single artifact records the
before/after pair.  Chained runs stay depth-1: run N never embeds run
N-1's embedded baseline.

``--smoke`` runs reduced-rep benchmarks and compares each smoke metric
against the checked-in baseline artifact (``--baseline``, default
``BENCH_4.json``) under a per-metric regression budget; any breach fails
loudly (exit 1).  Set ``REPRO_BENCH_SMOKE_SKIP=1`` to report without
failing on slow or heavily loaded machines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time


def bench_kernel_events(n: int = 200_000, reps: int = 7) -> float:
    """Dispatched callbacks/s through a station-shaped timer mix.

    50 repeating interval timers at near-1 ms periods model the periodic
    control plane (detector rounds, recoverer watchdogs, steady-state
    injectors); each tick fans a 20-callback burst out half a period
    ahead, modelling a ping round's replies arriving together — which is
    exactly the shape the transport's FIFO clamp produces.  Interval
    timers re-arm in place (one heap push, zero allocation per firing)
    and each burst shares one slab bucket, so this measures the batch
    dispatch paths a live station actually leans on.
    """
    from repro.sim.kernel import Kernel

    timers, burst = 50, 20
    best = float("inf")
    for _ in range(reps):
        kernel = Kernel(seed=1)
        count = [0]

        def deliver() -> None:
            count[0] += 1

        def tick() -> None:
            count[0] += 1
            when = kernel.now + 0.0005
            for _ in range(burst):
                kernel.schedule_at(when, deliver)

        for i in range(timers):
            kernel.schedule_interval(0.001 + i * 1e-6, tick)

        rounds = n // (timers * (burst + 1))
        start = time.perf_counter()
        kernel.run(until=rounds * 0.001 + 0.01)
        elapsed = time.perf_counter() - start
        assert count[0] >= n * 0.95
        best = min(best, elapsed / count[0])
    return 1.0 / best


def bench_bus_roundtrips(n: int = 1_000, reps: int = 5) -> float:
    from repro.bus.broker import BusBroker
    from repro.bus.client import BusClient
    from repro.procmgr.manager import ProcessManager
    from repro.procmgr.process import ProcessSpec, constant_work
    from repro.sim.kernel import Kernel
    from repro.transport.network import Network
    from repro.xmlcmd.commands import PingRequest

    kernel = Kernel(seed=2)
    network = Network(kernel)
    manager = ProcessManager(kernel)
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.1), lambda p: BusBroker(p, network))
    )
    manager.start("mbus")
    kernel.run()
    client = BusClient(kernel, network, "perf")
    client.connect()
    kernel.run(until=kernel.now + 1.0)

    seq = [0]
    best = float("inf")
    for _ in range(reps):
        received = len(client.received)
        start = time.perf_counter()
        for _ in range(n):
            seq[0] += 1
            client.send(PingRequest("perf", "mbus", seq[0]))
        kernel.run(until=kernel.now + 5.0)
        best = min(best, time.perf_counter() - start)
        assert len(client.received) - received == n
    return n / best


def bench_bus_mixed(n: int = 1_000, reps: int = 5) -> float:
    """Messages/s through the broker under an availability-shaped mix.

    Per 10 messages: 7 broker pings (fast path), 1 client-to-client ping
    (fast route, raw forwarded untouched), 1 command with params and 1
    telemetry frame (full-parse fallback at the receiving client; the
    command's children also force the broker's envelope-scan fallback).
    """
    from repro.bus.broker import BusBroker
    from repro.bus.client import BusClient
    from repro.procmgr.manager import ProcessManager
    from repro.procmgr.process import ProcessSpec, constant_work
    from repro.sim.kernel import Kernel
    from repro.transport.network import Network
    from repro.xmlcmd.commands import CommandMessage, PingRequest, TelemetryFrame

    kernel = Kernel(seed=4)
    network = Network(kernel)
    manager = ProcessManager(kernel)
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.1), lambda p: BusBroker(p, network))
    )
    manager.start("mbus")
    kernel.run()
    sender = BusClient(kernel, network, "mix-a")
    receiver = BusClient(kernel, network, "mix-b")
    sender.connect()
    receiver.connect()
    kernel.run(until=kernel.now + 1.0)

    command = CommandMessage(
        "mix-a", "mix-b", "track", {"azimuth": "143.2", "elevation": "67.9"}
    )
    frame = TelemetryFrame("mix-a", "mix-b", "opal", "p42", 4800)
    seq = [0]
    best = float("inf")
    for _ in range(reps):
        before = len(sender.received) + len(receiver.received)
        start = time.perf_counter()
        for i in range(n):
            seq[0] += 1
            slot = i % 10
            if slot < 7:
                sender.send(PingRequest("mix-a", "mbus", seq[0]))
            elif slot < 8:
                sender.send(PingRequest("mix-a", "mix-b", seq[0]))
            elif slot < 9:
                sender.send(command)
            else:
                sender.send(frame)
        kernel.run(until=kernel.now + 5.0)
        best = min(best, time.perf_counter() - start)
        assert len(sender.received) + len(receiver.received) - before == n
    return n / best


def bench_station_boot(reps: int = 5) -> float:
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_v

    best = float("inf")
    for _ in range(reps):
        station = MercuryStation(tree=tree_v(), seed=3)
        start = time.perf_counter()
        station.boot()
        best = min(best, time.perf_counter() - start)
    return best


def bench_station_snapshot(reps: int = 5) -> float:
    """Per-cell setup seconds with the snapshot cache active.

    Times :func:`repro.experiments.snapshot.warmed_station` on a warm
    template: one deepcopy of the booted tree-V station plus the per-cell
    RNG rebase.  The template boot itself is paid once, outside the timed
    region — exactly the amortisation the campaign runner sees.
    """
    from repro.experiments import snapshot as snap
    from repro.mercury.config import PAPER_CONFIG
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_v

    tree = tree_v()
    shape = snap.station_shape("bench", tree, PAPER_CONFIG)

    def build(boot_seed: int) -> MercuryStation:
        return MercuryStation(tree=tree, config=PAPER_CONFIG, seed=boot_seed)

    snap.warmed_station(shape, build, MercuryStation.boot, 0, snapshot=True)
    best = float("inf")
    for i in range(reps):
        start = time.perf_counter()
        snap.warmed_station(shape, build, MercuryStation.boot, i + 1, snapshot=True)
        best = min(best, time.perf_counter() - start)
    snap.clear_templates()  # no cross-benchmark (or cross-run) state
    return best


#: ``--smoke`` regression gates: metric name -> (reduced-rep measurement,
#: higher-is-better, allowed fractional regression).  Throughputs get the
#: historical 20% budget; the snapshot-restore wall clock is a ~1 ms
#: measurement and CI machines are noisy, so it gets 50% (i.e. current
#: may be up to 2x the baseline before the gate trips).
def _smoke_checks():
    return [
        ("bus_roundtrips_per_sec", lambda: bench_bus_roundtrips(n=500, reps=3), True, 0.20),
        ("bus_mixed_msgs_per_sec", lambda: bench_bus_mixed(n=500, reps=3), True, 0.20),
        ("station_snapshot_restore_seconds", lambda: bench_station_snapshot(reps=3), False, 0.50),
    ]


def _run_smoke(parser, baseline_path: str) -> int:
    """Reduced-rep regression gate for ``make bench-smoke``."""
    try:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        reference = dict(baseline["metrics"])
    except (OSError, ValueError, KeyError) as exc:
        parser.error(f"cannot read smoke baseline {baseline_path!r}: {exc}")

    bench_bus_roundtrips(n=200, reps=1)  # warmup
    failures = []
    for name, measure, higher_is_better, budget in _smoke_checks():
        ref = reference.get(name)
        if ref is None:
            print(f"bench-smoke: {name}: no baseline value, skipped")
            continue
        ref = float(ref)
        current = measure()
        # Normalised so 1.0 is parity and smaller is worse for both
        # orientations; the gate is ratio >= 1 - budget.
        ratio = (current / ref) if higher_is_better else (ref / current)
        verdict = "OK" if ratio >= 1.0 - budget else "FAIL"
        print(
            f"bench-smoke: {name} {current:.6g} vs baseline {ref:.6g}"
            f" ({ratio:.2f}x, budget {budget:.0%}): {verdict}"
        )
        if verdict == "FAIL":
            failures.append(name)
    if not failures:
        print(f"bench-smoke: OK (all metrics within budget, {baseline_path})")
        return 0
    if os.environ.get("REPRO_BENCH_SMOKE_SKIP", "") not in ("", "0"):
        print(
            "bench-smoke: REGRESSION ignored (REPRO_BENCH_SMOKE_SKIP set):"
            f" {', '.join(failures)}"
        )
        return 0
    print(
        f"bench-smoke: FAIL — {', '.join(failures)} regressed past budget"
        " (set REPRO_BENCH_SMOKE_SKIP=1 to ignore on slow machines)"
    )
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="write JSON here (default stdout)")
    parser.add_argument(
        "--baseline", default=None,
        help="embed a previous run's generated/host/metrics as the"
        " 'baseline' key (with --smoke: the artifact to regress against,"
        " default BENCH_4.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced-rep benchmarks; fail on a per-metric regression"
        " budget breach vs the baseline artifact",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _run_smoke(parser, args.baseline or "BENCH_4.json")

    baseline = None
    if args.baseline:
        # Read up front: fail before a minute of measurement, not after.
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline!r}: {exc}")

    # Warmup pass first: interpreter caches and CPU frequency boost settle,
    # otherwise the first metric measured is penalized.
    bench_kernel_events(n=50_000, reps=3)
    metrics = {
        "kernel_events_per_sec": round(bench_kernel_events(reps=10), 1),
        "bus_roundtrips_per_sec": round(bench_bus_roundtrips(), 1),
        "bus_mixed_msgs_per_sec": round(bench_bus_mixed(), 1),
        "station_boot_seconds": round(bench_station_boot(), 6),
        "station_snapshot_restore_seconds": round(bench_station_snapshot(), 6),
    }
    payload = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
        "metrics": metrics,
    }
    if baseline is not None:
        # Carry only the previous run's own results.  Embedding the file
        # verbatim would nest recursively across chained runs (run N
        # holding run N-1 holding run N-2 ...); every artifact stays
        # depth-1 instead.
        payload["baseline"] = {
            key: baseline.get(key) for key in ("generated", "host", "metrics")
        }

    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
