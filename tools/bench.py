"""Standalone perf session: time the simulator's four hot paths.

Mirrors ``benchmarks/test_perf_simulator.py`` without the pytest harness so
CI can produce a machine-readable perf trajectory::

    PYTHONPATH=src python tools/bench.py --output BENCH_2.json
    PYTHONPATH=src python tools/bench.py --baseline BENCH_1.json --output BENCH_2.json

Metrics:

* ``kernel_events_per_sec`` — schedule+dispatch cycles through
  :meth:`Kernel.run` (10k self-rescheduling timers);
* ``bus_roundtrips_per_sec`` — ping round trips through the XML command
  bus (encode → broker envelope-route → templated reply → decode);
* ``bus_mixed_msgs_per_sec`` — a mixed-traffic bus profile shaped like an
  availability run: mostly broker pings, plus client-to-client pings,
  commands with parameters, and telemetry frames (the latter two exercise
  the full-parse fallback, so this metric tracks *both* bus paths);
* ``station_boot_seconds`` — wall-clock to boot the full-fidelity tree-V
  station to all-RUNNING plus settle.

``--baseline`` embeds a previous run (e.g. from the seed commit) so a
single artifact records the before/after pair.

``--smoke`` runs a reduced-rep bus benchmark and compares it against the
checked-in baseline artifact (``--baseline``, default ``BENCH_2.json``):
a ``bus_roundtrips_per_sec`` regression of more than 20% fails loudly
(exit 1).  Set ``REPRO_BENCH_SMOKE_SKIP=1`` to report without failing on
slow or heavily loaded machines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time


def bench_kernel_events(n: int = 10_000, reps: int = 7) -> float:
    from repro.sim.kernel import Kernel

    best = float("inf")
    for _ in range(reps):
        kernel = Kernel(seed=1)
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < n:
                kernel.call_after(0.001, tick)

        kernel.call_after(0.001, tick)
        start = time.perf_counter()
        kernel.run()
        best = min(best, time.perf_counter() - start)
        assert count[0] == n
    return n / best


def bench_bus_roundtrips(n: int = 1_000, reps: int = 5) -> float:
    from repro.bus.broker import BusBroker
    from repro.bus.client import BusClient
    from repro.procmgr.manager import ProcessManager
    from repro.procmgr.process import ProcessSpec, constant_work
    from repro.sim.kernel import Kernel
    from repro.transport.network import Network
    from repro.xmlcmd.commands import PingRequest

    kernel = Kernel(seed=2)
    network = Network(kernel)
    manager = ProcessManager(kernel)
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.1), lambda p: BusBroker(p, network))
    )
    manager.start("mbus")
    kernel.run()
    client = BusClient(kernel, network, "perf")
    client.connect()
    kernel.run(until=kernel.now + 1.0)

    seq = [0]
    best = float("inf")
    for _ in range(reps):
        received = len(client.received)
        start = time.perf_counter()
        for _ in range(n):
            seq[0] += 1
            client.send(PingRequest("perf", "mbus", seq[0]))
        kernel.run(until=kernel.now + 5.0)
        best = min(best, time.perf_counter() - start)
        assert len(client.received) - received == n
    return n / best


def bench_bus_mixed(n: int = 1_000, reps: int = 5) -> float:
    """Messages/s through the broker under an availability-shaped mix.

    Per 10 messages: 7 broker pings (fast path), 1 client-to-client ping
    (fast route, raw forwarded untouched), 1 command with params and 1
    telemetry frame (full-parse fallback at the receiving client; the
    command's children also force the broker's envelope-scan fallback).
    """
    from repro.bus.broker import BusBroker
    from repro.bus.client import BusClient
    from repro.procmgr.manager import ProcessManager
    from repro.procmgr.process import ProcessSpec, constant_work
    from repro.sim.kernel import Kernel
    from repro.transport.network import Network
    from repro.xmlcmd.commands import CommandMessage, PingRequest, TelemetryFrame

    kernel = Kernel(seed=4)
    network = Network(kernel)
    manager = ProcessManager(kernel)
    manager.spawn(
        ProcessSpec("mbus", constant_work(0.1), lambda p: BusBroker(p, network))
    )
    manager.start("mbus")
    kernel.run()
    sender = BusClient(kernel, network, "mix-a")
    receiver = BusClient(kernel, network, "mix-b")
    sender.connect()
    receiver.connect()
    kernel.run(until=kernel.now + 1.0)

    command = CommandMessage(
        "mix-a", "mix-b", "track", {"azimuth": "143.2", "elevation": "67.9"}
    )
    frame = TelemetryFrame("mix-a", "mix-b", "opal", "p42", 4800)
    seq = [0]
    best = float("inf")
    for _ in range(reps):
        before = len(sender.received) + len(receiver.received)
        start = time.perf_counter()
        for i in range(n):
            seq[0] += 1
            slot = i % 10
            if slot < 7:
                sender.send(PingRequest("mix-a", "mbus", seq[0]))
            elif slot < 8:
                sender.send(PingRequest("mix-a", "mix-b", seq[0]))
            elif slot < 9:
                sender.send(command)
            else:
                sender.send(frame)
        kernel.run(until=kernel.now + 5.0)
        best = min(best, time.perf_counter() - start)
        assert len(sender.received) + len(receiver.received) - before == n
    return n / best


def bench_station_boot(reps: int = 5) -> float:
    from repro.mercury.station import MercuryStation
    from repro.mercury.trees import tree_v

    best = float("inf")
    for _ in range(reps):
        station = MercuryStation(tree=tree_v(), seed=3)
        start = time.perf_counter()
        station.boot()
        best = min(best, time.perf_counter() - start)
    return best


def _run_smoke(parser, baseline_path: str) -> int:
    """Reduced-rep regression gate for ``make bench-smoke``."""
    try:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        reference = float(baseline["metrics"]["bus_roundtrips_per_sec"])
    except (OSError, ValueError, KeyError) as exc:
        parser.error(f"cannot read smoke baseline {baseline_path!r}: {exc}")

    bench_bus_roundtrips(n=200, reps=1)  # warmup
    current = bench_bus_roundtrips(n=500, reps=3)
    ratio = current / reference
    print(
        f"bench-smoke: bus_roundtrips_per_sec {current:.1f}"
        f" vs baseline {reference:.1f} ({ratio:.2f}x, {baseline_path})"
    )
    if ratio >= 0.8:
        print("bench-smoke: OK (within the 20% regression budget)")
        return 0
    if os.environ.get("REPRO_BENCH_SMOKE_SKIP", "") not in ("", "0"):
        print("bench-smoke: REGRESSION ignored (REPRO_BENCH_SMOKE_SKIP set)")
        return 0
    print(
        "bench-smoke: FAIL — bus_roundtrips_per_sec regressed more than 20%"
        " (set REPRO_BENCH_SMOKE_SKIP=1 to ignore on slow machines)"
    )
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="write JSON here (default stdout)")
    parser.add_argument(
        "--baseline", default=None,
        help="embed a previous run's JSON as the 'baseline' key"
        " (with --smoke: the artifact to regress against, default BENCH_2.json)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced-rep bus benchmark; fail on a >20%% regression of"
        " bus_roundtrips_per_sec vs the baseline artifact",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return _run_smoke(parser, args.baseline or "BENCH_2.json")

    baseline = None
    if args.baseline:
        # Read up front: fail before a minute of measurement, not after.
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.baseline!r}: {exc}")

    # Warmup pass first: interpreter caches and CPU frequency boost settle,
    # otherwise the first metric measured is penalized.
    bench_kernel_events(reps=3)
    metrics = {
        "kernel_events_per_sec": round(bench_kernel_events(reps=10), 1),
        "bus_roundtrips_per_sec": round(bench_bus_roundtrips(), 1),
        "bus_mixed_msgs_per_sec": round(bench_bus_mixed(), 1),
        "station_boot_seconds": round(bench_station_boot(), 6),
    }
    payload = {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
        },
        "metrics": metrics,
    }
    if baseline is not None:
        payload["baseline"] = baseline

    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
