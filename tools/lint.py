#!/usr/bin/env python
"""Static lint for the repro codebase (``make lint``).

Prefers real linters when the environment has them — ``ruff`` first, then
``pyflakes`` — and otherwise falls back to a small AST-based checker, so
the verify gate works in hermetic containers where neither is installed.

Fallback checks:

* unused imports (a conservative token-presence test, so names used only
  in string annotations or docstrings are not false positives);
* duplicate top-level ``def``/``class`` names in one module;
* comparisons to ``None`` with ``==``/``!=`` instead of ``is``/``is not``;
* bare ``except:`` clauses.

``__init__.py`` files are exempt from the unused-import check (re-export
modules import names precisely so others can use them).

Usage: ``python tools/lint.py [PATH ...]`` (defaults to src/ and tests/).
Exits non-zero when any finding is reported.
"""

from __future__ import annotations

import ast
import os
import re
import subprocess
import sys
from typing import Iterable, List, Tuple

DEFAULT_PATHS = ("src", "tests")

Finding = Tuple[str, int, str]


def iter_python_files(paths: Iterable[str]) -> List[str]:
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path) and path.endswith(".py"):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in ("__pycache__", ".git"))
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return out


# ----------------------------------------------------------------------
# external linters (preferred when available)
# ----------------------------------------------------------------------


def try_external(paths: List[str]) -> int:
    """Run ruff or pyflakes if importable; return exit code, or -1 if absent."""
    for module, argv in (
        ("ruff", [sys.executable, "-m", "ruff", "check", *paths]),
        ("pyflakes", [sys.executable, "-m", "pyflakes", *paths]),
    ):
        try:
            __import__(module)
        except ImportError:
            continue
        print(f"lint: using {module}")
        return subprocess.call(argv)
    return -1


# ----------------------------------------------------------------------
# AST fallback
# ----------------------------------------------------------------------


def _imported_names(tree: ast.AST) -> List[Tuple[str, int]]:
    """(bound name, line) for every import in the module."""
    names: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                names.append((bound, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.append((alias.asname or alias.name, node.lineno))
    return names


def check_file(path: str, source: str) -> List[Finding]:
    findings: List[Finding] = []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [(path, error.lineno or 0, f"syntax error: {error.msg}")]

    # Unused imports: flag names whose identifier never appears in the file
    # outside the import line itself.  Token-level presence (rather than
    # resolved usage) keeps names referenced from string annotations,
    # docstrings, or __all__ from being false positives.
    if os.path.basename(path) != "__init__.py":
        identifiers = re.findall(r"[A-Za-z_][A-Za-z0-9_]*", source)
        counts: dict = {}
        for ident in identifiers:
            counts[ident] = counts.get(ident, 0) + 1
        for name, lineno in _imported_names(tree):
            if counts.get(name, 0) <= 1:
                findings.append((path, lineno, f"unused import: {name}"))

    seen_defs: dict = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name in seen_defs:
                findings.append(
                    (
                        path,
                        node.lineno,
                        f"duplicate top-level definition: {node.name} "
                        f"(first at line {seen_defs[node.name]})",
                    )
                )
            else:
                seen_defs[node.name] = node.lineno

    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    isinstance(comparator, ast.Constant) and comparator.value is None
                ):
                    word = "==" if isinstance(op, ast.Eq) else "!="
                    fix = "is" if isinstance(op, ast.Eq) else "is not"
                    findings.append(
                        (path, node.lineno, f"comparison `{word} None` (use `{fix}`)")
                    )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append((path, node.lineno, "bare `except:` clause"))
    return findings


def main(argv: List[str]) -> int:
    paths = argv or list(DEFAULT_PATHS)
    # A nonexistent path must be a hard error: os.walk on a missing
    # directory silently yields nothing, which used to let a typo'd path
    # "pass" lint without checking anything.
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"lint: no such path: {path}", file=sys.stderr)
        return 2
    files = iter_python_files(paths)
    if not files:
        print(f"lint: no python files under {paths}", file=sys.stderr)
        return 2

    external = try_external(files)
    if external >= 0:
        return external

    print("lint: ruff/pyflakes unavailable, using builtin AST checks")
    findings: List[Finding] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            findings.extend(check_file(path, fh.read()))
    for path, lineno, message in findings:
        print(f"{path}:{lineno}: {message}")
    print(f"lint: {len(files)} files, {len(findings)} findings")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
