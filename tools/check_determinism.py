#!/usr/bin/env python
"""Fast determinism gate (``make check-determinism``).

Every result in this repo is supposed to be a pure function of its seed:
same seed, same bytes.  That property underwrites the campaign result
cache, serial/parallel bit-identity, and "reproduce this failing chaos
seed" debugging — and it silently dies the moment someone reads the wall
clock, iterates an unordered set into an RNG, or keys a schedule off
``id()``.  This gate catches that class of regression in seconds:

* one short chaos campaign (cascade on tree V), run twice with the same
  seed, byte-comparing the full JSONL event traces and the JSON result
  payloads;
* one lossy chaos campaign (the network fault fabric's per-link RNG
  streams plus the adaptive detector), twice, compared the same way;
* one short steady-state availability run (tree V), twice, byte-comparing
  the streamed JSONL traces and the result dataclasses;
* one chaos campaign run with the warmed-station snapshot cache enabled
  vs. disabled (fresh boot per cell), byte-comparing traces, result
  payloads, and the campaign cache keys — the restore-vs-boot bit-identity
  contract that lets the snapshot fast path share the result cache;
* one recovery-strategy cell (microreboot, crash, tree V), run twice with
  the same seed, comparing the JSON payloads — the strategy registry,
  session store, and strategy-enabled supervisor path stay pure functions
  of the seed — plus a bus fast-path leg running the same cell with
  ``REPRO_BUS_FULLPARSE=1`` (scan-based envelope decode vs. the full XML
  parser must be observationally identical);
* one user-traffic workload cell (microreboot, crash, tree III) run four
  ways — same seed twice, fresh boot vs. snapshot restore, and under
  ``REPRO_BUS_FULLPARSE=1`` — byte-comparing the full result payloads
  (user-effects ledger, MTTR samples, per-phase blame), plus the same
  cell through the campaign runner serial vs. two worker processes and
  cache-key invariance across boot modes;
* one store-outage chaos cell (session-store crash/hang windows, torn and
  corrupt writes, strategy fallback) run twice with the same seed,
  byte-comparing the full JSONL event traces and result payloads — the
  store fault model's RNG streams and the crash-only supervision plane
  stay pure functions of the seed — plus campaign cache-key invariance
  for the store-outage cell across the snapshot knob;
* one correlated-wave fleet cell with live user traffic run four ways —
  one shard, three shards, three shards fanned over worker processes,
  and snapshot-off — comparing the full JSON payloads (which embed every
  station's event-stream digest and user-effects ledger), plus fleet
  campaign cache-key invariance across the
  ``REPRO_FLEET_SHARDS``/``REPRO_FLEET_JOBS`` execution knobs.

Exits 0 when all legs are bit-identical, 1 otherwise (with the first
differing line for the trace legs).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.chaos.engine import run_chaos
from repro.experiments.availability import measure_availability
from repro.mercury.trees import TREE_BUILDERS
from repro.obs.sinks import JsonlSink

CHAOS_SEED = 42
AVAILABILITY_SEED = 7
AVAILABILITY_HORIZON_S = 4.0 * 3600.0


def _first_diff(path_a: str, path_b: str) -> str:
    with open(path_a, "r", encoding="utf-8") as fh_a, open(
        path_b, "r", encoding="utf-8"
    ) as fh_b:
        for lineno, (line_a, line_b) in enumerate(zip(fh_a, fh_b), start=1):
            if line_a != line_b:
                return f"line {lineno}:\n  run1: {line_a.rstrip()}\n  run2: {line_b.rstrip()}"
    return "traces differ in length"


def _compare_traces(name: str, path_a: str, path_b: str) -> bool:
    with open(path_a, "rb") as fh:
        bytes_a = fh.read()
    with open(path_b, "rb") as fh:
        bytes_b = fh.read()
    if bytes_a == bytes_b:
        print(f"  {name}: traces identical ({len(bytes_a)} bytes)")
        return True
    print(f"FAIL {name}: traces differ; first divergence at {_first_diff(path_a, path_b)}")
    return False


def check_chaos(workdir: str) -> bool:
    print("determinism: chaos (cascade on tree V, seed %d) ..." % CHAOS_SEED)
    payloads = []
    paths = []
    for run in (1, 2):
        path = os.path.join(workdir, f"chaos-{run}.jsonl")
        sink = JsonlSink(path)
        result = run_chaos(
            TREE_BUILDERS["V"](), "cascade", trials=1, seed=CHAOS_SEED, sinks=[sink]
        )
        paths.append(path)
        payloads.append(json.dumps(result.to_payload(), sort_keys=True))
    ok = _compare_traces("chaos", paths[0], paths[1])
    if payloads[0] != payloads[1]:
        print("FAIL chaos: result payloads differ")
        ok = False
    elif ok:
        print("  chaos: result payloads identical")
    return ok


def check_chaos_lossy(workdir: str) -> bool:
    print("determinism: chaos (lossy on tree V, seed %d) ..." % CHAOS_SEED)
    payloads = []
    paths = []
    for run in (1, 2):
        path = os.path.join(workdir, f"chaos-lossy-{run}.jsonl")
        sink = JsonlSink(path)
        result = run_chaos(
            TREE_BUILDERS["V"](), "lossy", trials=1, seed=CHAOS_SEED, sinks=[sink]
        )
        paths.append(path)
        payloads.append(json.dumps(result.to_payload(), sort_keys=True))
    ok = _compare_traces("chaos-lossy", paths[0], paths[1])
    if payloads[0] != payloads[1]:
        print("FAIL chaos-lossy: result payloads differ")
        ok = False
    elif ok:
        print("  chaos-lossy: result payloads identical")
    return ok


def check_availability(workdir: str) -> bool:
    print(
        "determinism: availability (tree V, %.0f h, seed %d) ..."
        % (AVAILABILITY_HORIZON_S / 3600.0, AVAILABILITY_SEED)
    )
    payloads = []
    paths = []
    for run in (1, 2):
        path = os.path.join(workdir, f"availability-{run}.jsonl")
        sink = JsonlSink(path)
        result = measure_availability(
            TREE_BUILDERS["V"](),
            horizon_s=AVAILABILITY_HORIZON_S,
            seed=AVAILABILITY_SEED,
            sinks=[sink],
        )
        paths.append(path)
        payloads.append(json.dumps(dataclasses.asdict(result), sort_keys=True))
    ok = _compare_traces("availability", paths[0], paths[1])
    if payloads[0] != payloads[1]:
        print("FAIL availability: result payloads differ")
        ok = False
    elif ok:
        print("  availability: result payloads identical")
    return ok


def check_snapshot_fork(workdir: str) -> bool:
    """Snapshot/fork leg: restored cells must equal fresh-boot cells.

    Runs the same storm campaign once through the warmed-station snapshot
    cache (template boot + deepcopy + RNG rebase) and once with
    ``snapshot=False`` (full boot per cell).  The traces and payloads
    must match byte-for-byte, and the campaign cache key must be the same
    under both ``REPRO_STATION_SNAPSHOT`` settings — the cache stores
    results by *meaning*, and snapshot restore is an implementation
    detail of how a cell gets its warmed station.
    """
    from repro.experiments.runner import CampaignCell, cache_key
    from repro.experiments.snapshot import clear_templates
    from repro.mercury.config import PAPER_CONFIG

    print("determinism: snapshot-fork (storm on tree V, seed %d) ..." % CHAOS_SEED)
    payloads = []
    paths = []
    clear_templates()
    for run, snapshot in ((1, True), (2, False)):
        path = os.path.join(workdir, f"snapshot-{run}.jsonl")
        sink = JsonlSink(path)
        result = run_chaos(
            TREE_BUILDERS["V"](),
            "storm",
            trials=1,
            seed=CHAOS_SEED,
            sinks=[sink],
            snapshot=snapshot,
        )
        paths.append(path)
        payloads.append(json.dumps(result.to_payload(), sort_keys=True))
    clear_templates()
    ok = _compare_traces("snapshot-fork", paths[0], paths[1])
    if payloads[0] != payloads[1]:
        print("FAIL snapshot-fork: result payloads differ")
        ok = False
    elif ok:
        print("  snapshot-fork: result payloads identical")

    cell = CampaignCell(kind="chaos", tree="V", seed=CHAOS_SEED, scenario="storm", trials=1)
    keys = []
    for flag in ("1", "0"):
        os.environ["REPRO_STATION_SNAPSHOT"] = flag
        try:
            keys.append(cache_key(cell, PAPER_CONFIG))
        finally:
            os.environ.pop("REPRO_STATION_SNAPSHOT", None)
    if keys[0] != keys[1]:
        print("FAIL snapshot-fork: campaign cache keys differ between modes")
        ok = False
    elif ok:
        print("  snapshot-fork: campaign cache keys identical")
    return ok


def check_strategy(workdir: str) -> bool:
    """Strategy leg: the registry path is a pure function of the seed.

    Runs one microreboot cell twice (JSON payloads must match), then the
    same cell under ``REPRO_BUS_FULLPARSE=1`` — the scan-based envelope
    fast path and the full XML parser must be observationally identical
    even with the session-store message tap and replay machinery live.
    Also pins cache-key invariance: a classic chaos cell's campaign key
    must not change with the strategy machinery present (strategy="" is
    part of the spec, not an accident of the run).
    """
    from repro.experiments.runner import CampaignCell, cache_key
    from repro.experiments.strategy_compare import run_strategy_cell
    from repro.mercury.config import PAPER_CONFIG

    print("determinism: strategy (microreboot, crash, tree V, seed %d) ..." % CHAOS_SEED)
    payloads = []
    for _ in (1, 2):
        result = run_strategy_cell(
            TREE_BUILDERS["V"](), "microreboot", "crash", trials=2, seed=CHAOS_SEED
        )
        payloads.append(json.dumps(result.to_payload(), sort_keys=True))
    ok = True
    if payloads[0] != payloads[1]:
        print("FAIL strategy: result payloads differ between same-seed runs")
        ok = False
    else:
        print("  strategy: result payloads identical")

    os.environ["REPRO_BUS_FULLPARSE"] = "1"
    try:
        result = run_strategy_cell(
            TREE_BUILDERS["V"](), "microreboot", "crash", trials=2, seed=CHAOS_SEED
        )
    finally:
        os.environ.pop("REPRO_BUS_FULLPARSE", None)
    if json.dumps(result.to_payload(), sort_keys=True) != payloads[0]:
        print("FAIL strategy: full-parse run differs from fast-path run")
        ok = False
    elif ok:
        print("  strategy: bus fast path == full parse")

    cell = CampaignCell(kind="chaos", tree="V", seed=CHAOS_SEED, scenario="storm", trials=1)
    key_a = cache_key(cell, PAPER_CONFIG)
    key_b = cache_key(CampaignCell(**{**dataclasses.asdict(cell)}), PAPER_CONFIG)
    if key_a != key_b:
        print("FAIL strategy: cache key not a pure function of the cell spec")
        ok = False
    elif ok:
        print("  strategy: campaign cache keys stable")
    return ok


def check_workload(workdir: str) -> bool:
    """Workload leg: user-traffic ledgers are pure functions of the seed.

    One microreboot workload cell (crash, tree III) is run four ways —
    twice with the same seed, once through a fresh boot instead of the
    snapshot cache, and once under ``REPRO_BUS_FULLPARSE=1`` — and every
    ledger byte must match: arrivals, retries, failures, latency sums and
    per-phase blame all ride the cell seed, nothing else.  Then the same
    cell goes through the campaign runner serial vs. two worker
    processes, and the campaign cache key is pinned invariant to the
    snapshot knob.
    """
    from repro.experiments.runner import CampaignCell, cache_key, campaign_seed
    from repro.experiments.snapshot import clear_templates
    from repro.experiments.workload import run_workload_cell, run_workload_suite
    from repro.mercury.config import PAPER_CONFIG
    from repro.workload.generator import WorkloadSpec

    print("determinism: workload (microreboot, crash, tree III, seed %d) ..." % CHAOS_SEED)
    spec = WorkloadSpec(session_rate=8.0)

    def run(snapshot=None):
        clear_templates()
        result = run_workload_cell(
            TREE_BUILDERS["III"](),
            "microreboot",
            "crash",
            failures=2,
            seed=CHAOS_SEED,
            spec=spec,
            snapshot=snapshot,
        )
        return json.dumps(result.to_payload(), sort_keys=True)

    reference = run()
    ok = True
    if run() != reference:
        print("FAIL workload: result payloads differ between same-seed runs")
        ok = False
    else:
        print("  workload: result payloads identical")
    if run(snapshot=False) != reference:
        print("FAIL workload: fresh-boot cell differs from snapshot cell")
        ok = False
    elif ok:
        print("  workload: snapshot restore == fresh boot")
    os.environ["REPRO_BUS_FULLPARSE"] = "1"
    try:
        fullparse = run()
    finally:
        os.environ.pop("REPRO_BUS_FULLPARSE", None)
    clear_templates()
    if fullparse != reference:
        print("FAIL workload: full-parse run differs from fast-path run")
        ok = False
    elif ok:
        print("  workload: bus fast path == full parse")

    suites = []
    for jobs in (1, 2):
        suite = run_workload_suite(
            ["microreboot"],
            ["crash"],
            ["III"],
            failures=2,
            seed=CHAOS_SEED,
            session_rate=8.0,
            jobs=jobs,
        )
        suites.append(
            json.dumps(
                {key[2]: cell.to_payload() for key, cell in suite.items()},
                sort_keys=True,
            )
        )
    if suites[0] != suites[1]:
        print("FAIL workload: serial campaign differs from 2-process campaign")
        ok = False
    elif ok:
        print("  workload: campaign serial == parallel")

    cell = CampaignCell(
        kind="workload",
        tree="III",
        seed=campaign_seed(CHAOS_SEED, "workload", "microreboot", "crash", "III"),
        trials=2,
        strategy="microreboot",
        failure_kind="crash",
        request_rate=8.0,
    )
    keys = []
    for flag in ("1", "0"):
        os.environ["REPRO_STATION_SNAPSHOT"] = flag
        try:
            keys.append(cache_key(cell, PAPER_CONFIG))
        finally:
            os.environ.pop("REPRO_STATION_SNAPSHOT", None)
    if keys[0] != keys[1]:
        print("FAIL workload: campaign cache keys differ between boot modes")
        ok = False
    elif ok:
        print("  workload: campaign cache keys invariant to boot mode")
    return ok


def check_store(workdir: str) -> bool:
    """Store leg: the crash-only recovery plane rides the seed, not the clock.

    Runs one store-outage chaos cell twice with the same seed — store
    crash/hang windows, torn/corrupt write lotteries, quarantine recovery
    and strategy fallback all draw from named kernel RNG streams, so the
    full event traces and result payloads must match byte-for-byte.  Also
    pins the store-outage campaign cache key invariant to the snapshot
    knob, like every other cell kind.
    """
    from repro.experiments.runner import CampaignCell, cache_key
    from repro.mercury.config import PAPER_CONFIG

    print("determinism: store (store-outage on tree V, seed %d) ..." % CHAOS_SEED)
    payloads = []
    paths = []
    for run in (1, 2):
        path = os.path.join(workdir, f"store-{run}.jsonl")
        sink = JsonlSink(path)
        result = run_chaos(
            TREE_BUILDERS["V"](), "store-outage", trials=1, seed=CHAOS_SEED,
            sinks=[sink],
        )
        paths.append(path)
        payloads.append(json.dumps(result.to_payload(), sort_keys=True))
    ok = _compare_traces("store", paths[0], paths[1])
    if payloads[0] != payloads[1]:
        print("FAIL store: result payloads differ")
        ok = False
    elif ok:
        print("  store: result payloads identical")

    cell = CampaignCell(
        kind="chaos", tree="V", seed=CHAOS_SEED, scenario="store-outage", trials=1,
    )
    keys = []
    for flag in ("1", "0"):
        os.environ["REPRO_STATION_SNAPSHOT"] = flag
        try:
            keys.append(cache_key(cell, PAPER_CONFIG))
        finally:
            os.environ.pop("REPRO_STATION_SNAPSHOT", None)
    if keys[0] != keys[1]:
        print("FAIL store: campaign cache keys differ between boot modes")
        ok = False
    elif ok:
        print("  store: campaign cache keys invariant to boot mode")
    return ok


def check_fleet(workdir: str) -> bool:
    """Fleet leg: shard count, process fan-out, and snapshot mode are all
    invisible in the results — and in the campaign cache keys."""
    from repro.experiments.fleet import FleetSpec, run_fleet_cell
    from repro.experiments.runner import CampaignCell, cache_key
    from repro.experiments.snapshot import clear_templates
    from repro.experiments.template_store import STORE
    from repro.mercury.config import PAPER_CONFIG

    print("determinism: fleet (8 stations, waves, user traffic, seed %d) ..." % CHAOS_SEED)
    spec = FleetSpec(
        tree="V",
        size=8,
        horizon_s=120.0,
        seed=CHAOS_SEED,
        wave_interval_s=60.0,
        wave_drop=0.3,
        # Live user traffic on every station: the workload plane's events
        # feed the per-station digests, so shard-layout independence of
        # the user-effects ledger is part of this leg's bit-identity.
        request_rate=4.0,
    )
    runs = [
        ("1 shard", dict(shards=1)),
        ("3 shards", dict(shards=3)),
        ("3 shards x 3 jobs", dict(shards=3, jobs=3)),
        ("snapshot off", dict(shards=1, snapshot=False)),
    ]
    payloads = []
    for label, kwargs in runs:
        clear_templates()
        STORE.clear()
        result = run_fleet_cell(spec, **kwargs)
        payloads.append((label, json.dumps(result.to_payload(), sort_keys=True)))
    clear_templates()
    STORE.clear()
    ok = True
    reference_label, reference = payloads[0]
    for label, payload in payloads[1:]:
        if payload != reference:
            print(f"FAIL fleet: {label} differs from {reference_label}")
            ok = False
    if ok:
        print("  fleet: payloads identical across shard counts, fan-out, and snapshot mode")

    cell = CampaignCell(
        kind="fleet", tree="V", seed=CHAOS_SEED, horizon_s=120.0,
        fleet_size=8, wave_interval_s=60.0, wave_drop=0.3,
    )
    keys = []
    for env in ({}, {"REPRO_FLEET_SHARDS": "4", "REPRO_FLEET_JOBS": "4"}):
        os.environ.update(env)
        try:
            keys.append(cache_key(cell, PAPER_CONFIG))
        finally:
            for name in env:
                os.environ.pop(name, None)
    if keys[0] != keys[1]:
        print("FAIL fleet: campaign cache keys vary with shard/job knobs")
        ok = False
    elif ok:
        print("  fleet: campaign cache keys invariant to shard/job knobs")
    return ok


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-determinism-") as workdir:
        ok = check_chaos(workdir)
        ok = check_chaos_lossy(workdir) and ok
        ok = check_availability(workdir) and ok
        ok = check_snapshot_fork(workdir) and ok
        ok = check_strategy(workdir) and ok
        ok = check_workload(workdir) and ok
        ok = check_store(workdir) and ok
        ok = check_fleet(workdir) and ok
    if ok:
        print("determinism: PASS")
        return 0
    print("determinism: FAIL", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
